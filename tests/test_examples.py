"""Smoke tests: every example script runs to completion.

The examples are documentation; a release where they crash is broken.
They are executed in-process (imported as modules and ``main()`` called)
with reduced sizes patched in where possible, and their stdout is sanity
checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "capacity gain" in out
    assert "search(12345)" in out
    assert "range_scan" in out


@pytest.mark.slow
def test_tpch_date_index(capsys):
    out = _run("tpch_date_index.py", capsys)
    assert "hit rate" in out
    assert "partitioned commitdate index" in out
    assert "intersection" in out


@pytest.mark.slow
def test_smart_home_monitoring(capsys):
    out = _run("smart_home_monitoring.py", capsys)
    assert "cold vs warm caches" in out
    assert "effective fpp" in out


@pytest.mark.slow
def test_capacity_tuning(capsys):
    out = _run("capacity_tuning.py", capsys)
    assert "break-even" in out
    assert "analytical model" in out
