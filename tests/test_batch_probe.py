"""The vectorized batch-probe engine and the delete-path regressions.

The engine's contract: ``search_many(keys)`` produces exactly what N
sequential ``search`` calls produce — the same per-key ``SearchResult``
(found / matches / tids / page counts), the same ``IOStats`` counters and
the same simulated clock charges (equal up to float summation order).
The property tests here drive that contract over random relations,
probe mixes and tombstones; the regression tests pin the two delete-path
bugs the batch path must not inherit (tombstone-then-split and
delete-then-reinsert through the bulk-load path).
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig, BloomFilter
from repro.harness import run_probes
from repro.storage import Relation, build_stack
from repro.workloads import point_probes

sorted_keys = st.lists(
    st.integers(min_value=0, max_value=10**5), min_size=1, max_size=300
).map(sorted)


def _relation_from(keys):
    return Relation({"k": np.asarray(keys, dtype=np.int64)}, tuple_size=256)


def _replay(tree, keys, batch):
    """Probe ``keys`` on a fresh stack; return (results, io, clock)."""
    stack = build_stack("MEM/SSD")
    tree.bind(stack)
    try:
        if batch:
            results = tree.search_many(keys)
        else:
            results = [tree.search(key) for key in keys]
    finally:
        tree.unbind()
    return results, stack.stats.snapshot(), stack.clock.now()


def _assert_batch_equals_scalar(tree, probe_keys):
    scalar, io_scalar, clock_scalar = _replay(tree, probe_keys, batch=False)
    batch, io_batch, clock_batch = _replay(tree, probe_keys, batch=True)
    assert batch == scalar            # SearchResult dataclass equality:
    assert io_batch == io_scalar      # found, matches, pages, tids ...
    assert math.isclose(clock_batch, clock_scalar, rel_tol=1e-9)


# ----------------------------------------------------------------------
# Bloom filter / BF-leaf layers
# ----------------------------------------------------------------------
class TestBatchFilterLayers:
    @given(
        keys=st.lists(st.integers(min_value=-(2**62), max_value=2**62),
                      min_size=1, max_size=80, unique=True),
        probes=st.lists(st.integers(min_value=-(2**62), max_value=2**62),
                        min_size=1, max_size=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_might_contain_many_equals_scalar(self, keys, probes):
        bf = BloomFilter(512, 5, seed=11)
        for key in keys:
            bf.add(key)
        batch = bf.might_contain_many(np.asarray(probes, dtype=np.int64))
        assert batch.tolist() == [bf.might_contain(p) for p in probes]

    def test_might_contain_many_mixed_width_keys(self):
        """A python list mixing signs and >int64 magnitudes must not be
        coerced to float64 (which would hash rounded values and produce
        false negatives the scalar path never produces)."""
        bf = BloomFilter(512, 5, seed=3)
        keys = [2**63 + 1, -1, 2**64 + 17, 0, "abc"]
        for key in keys:
            bf.add(key)
        assert bf.might_contain_many(keys).all()
        assert (bf.might_contain_many([2**63 + 2, -2]).tolist()
                == [bf.might_contain(2**63 + 2), bf.might_contain(-2)])

    def test_variant_filters_batch_equals_scalar(self):
        from repro.core import CountingBloomFilter, ScalableBloomFilter

        probes = list(range(200))
        counting = CountingBloomFilter(512, 5, seed=7)
        scalable = ScalableBloomFilter(initial_capacity=16, max_fpp=0.05)
        for key in range(0, 120, 3):
            counting.add(key)
            scalable.add(key)
        counting.remove(30)
        for f in (counting, scalable):
            assert (f.might_contain_many(probes).tolist()
                    == [f.might_contain(p) for p in probes])

    @given(keys=sorted_keys)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_leaf_batch_probing_equals_scalar(self, keys):
        rel = _relation_from(keys)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.05))
        probes = sorted(set(keys))[:30] + [max(keys) + 1, min(keys) + 1]
        for leaf in tree.leaves_in_order():
            groups = leaf.matching_groups_many(probes)
            runs = leaf.matching_page_runs_many(probes)
            for j, probe in enumerate(probes):
                assert groups[j] == leaf.matching_groups(probe)
                assert runs[j] == leaf.matching_page_runs(probe)


# ----------------------------------------------------------------------
# BF-Tree / harness layers
# ----------------------------------------------------------------------
class TestSearchManyEqualsSearch:
    @given(keys=sorted_keys, fpp=st.sampled_from([0.2, 0.01, 1e-4]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_results_io_and_clock(self, keys, fpp):
        rel = _relation_from(keys)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=fpp))
        probes = (sorted(set(keys))[:40]
                  + [min(keys) - 1, max(keys) + 1, max(keys) + 1000])
        _assert_batch_equals_scalar(tree, probes)

    @given(keys=sorted_keys)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_with_tombstones(self, keys):
        rel = _relation_from(keys)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.01))
        distinct = sorted(set(keys))
        for key in distinct[::2]:
            tree.delete(key)
        _assert_batch_equals_scalar(tree, distinct + [max(keys) + 1])

    def test_unique_index_with_misses(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=2e-3), unique=True
        )
        probes = point_probes(pk_relation, "pk", 400, hit_rate=0.7)
        _assert_batch_equals_scalar(tree, [k.item() for k in probes.keys])

    def test_partitioned_data(self, tpch_relation):
        tree = BFTree.bulk_load(
            tpch_relation, "commitdate", BFTreeConfig(fpp=0.01), ordered=False
        )
        probes = point_probes(tpch_relation, "commitdate", 200, hit_rate=0.5)
        _assert_batch_equals_scalar(tree, [k.item() for k in probes.keys])

    def test_counting_filter_kind(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk",
            BFTreeConfig(fpp=0.01, filter_kind="counting"), unique=True,
        )
        _assert_batch_equals_scalar(tree, list(range(0, 1000, 7)))

    def test_bptree_search_many_parity(self, dup_relation):
        tree = BPlusTree.bulk_load(dup_relation, "att1")
        probes = point_probes(dup_relation, "att1", 150, hit_rate=0.8)
        _assert_batch_equals_scalar(tree, [k.item() for k in probes.keys])

    def test_run_probes_batch_mode_matches(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=2e-3), unique=True
        )
        probes = point_probes(pk_relation, "pk", 300, hit_rate=0.9)
        scalar = run_probes(tree, probes, "MEM/SSD")
        batch = run_probes(tree, probes, "MEM/SSD", batch=True)
        assert batch.n_probes == scalar.n_probes
        assert batch.hits == scalar.hits
        assert batch.total_matches == scalar.total_matches
        assert batch.io == scalar.io
        assert batch.avg_latency == pytest.approx(scalar.avg_latency,
                                                  rel=1e-9)


# ----------------------------------------------------------------------
# Delete-path regressions
# ----------------------------------------------------------------------
class TestDeletePathRegressions:
    def _tree(self, n=4096, fpp=0.01):
        rel = Relation(
            {"pk": np.arange(n, dtype=np.int64)}, tuple_size=256
        )
        return rel, BFTree.bulk_load(
            rel, "pk", BFTreeConfig(fpp=fpp), unique=True
        )

    @pytest.mark.parametrize("dead_side", ["lower", "upper"])
    def test_tombstone_then_split_then_insert(self, dead_side):
        """Splitting a half-tombstoned leaf must not create an
        unroutable empty-side leaf (the min_key=None crash: routing a
        subsequent insert against it raised TypeError, or ValueError
        once the add landed below the surviving leaf's page range)."""
        rel, tree = self._tree()
        leaf = tree.leaves_in_order()[0]
        lo, hi = leaf.min_key, leaf.max_key
        mid = (lo + hi) // 2
        dead = range(lo, mid) if dead_side == "lower" else range(mid, hi + 1)
        for key in dead:                    # tombstone one whole side
            tree.delete(key)
        left, right = tree._split_leaf(leaf)
        assert left.min_key is not None and right.min_key is not None
        # Re-insert a tombstoned key at its original data page: the
        # insert must route to a leaf whose page range covers it.
        victim = lo + 1 if dead_side == "lower" else hi - 1
        tree.insert(victim, rel.page_of(victim))
        target = next(l for l in tree.leaves_in_order()
                      if l.covers_key(victim))
        assert target.covers_pid(rel.page_of(victim))
        assert tree.search(victim).found

    def test_split_point_ignores_tombstones(self):
        """The split separator is the median of the *live* keys."""
        rel, tree = self._tree()
        leaf = tree.leaves_in_order()[0]
        lo, hi = leaf.min_key, leaf.max_key
        mid = (lo + hi) // 2
        for key in range(lo, mid):
            tree.delete(key)
        left, right = tree._split_leaf(leaf)
        # Both sides hold live keys from the surviving (upper) half.
        assert mid <= left.min_key <= left.max_key < right.min_key
        assert right.max_key == hi

    def test_split_with_fewer_than_two_live_keys_raises(self):
        rel, tree = self._tree()
        leaf = tree.leaves_in_order()[0]
        for key in range(leaf.min_key + 1, leaf.max_key + 1):
            tree.delete(key)                # one live key left
        with pytest.raises(ValueError):
            tree._split_leaf(leaf)

    def test_add_page_keys_clears_tombstone(self):
        """Bulk re-insertion must un-tombstone keys, like scalar add."""
        rel, tree = self._tree()
        leaf = tree.leaves_in_order()[0]
        key = leaf.min_key + 3
        leaf.mark_deleted(key)
        assert leaf.matching_groups(key) == []
        leaf.add_page_keys(
            np.asarray([key], dtype=np.int64), rel.page_of(key)
        )
        assert key not in leaf.deleted_keys
        assert leaf.matching_groups(key)
        assert tree.search(key).found

    def test_delete_then_reinsert_via_insert(self):
        rel, tree = self._tree()
        assert tree.delete(77)
        assert not tree.search(77).found
        tree.insert(77, rel.page_of(77))
        assert tree.search(77).found


# ----------------------------------------------------------------------
# Fetch accounting (Eq. 13)
# ----------------------------------------------------------------------
class TestFetchRunAccounting:
    def test_disjoint_runs_pay_one_seek_each(self, pk_relation):
        """Every fetched run starts with a random positioning; only
        pages within a run ride sequentially (Device.read_run)."""
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=0.2), unique=False
        )
        stack = build_stack("MEM/SSD")
        tree.bind(stack)
        try:
            for key in range(0, 2048, 41):
                before = stack.stats.snapshot()
                tree.search(key)
                io = stack.stats.diff(before)
                leaf = next(l for l in tree.leaves_in_order()
                            if l.covers_key(key))
                runs = leaf.matching_page_runs(key)
                # search() fetches the sorted runs until the ordered-data
                # early stop; each *started* run costs one random read.
                assert io.data_random_reads <= len(runs)
                assert io.data_random_reads >= 1
                expected_pages = io.data_random_reads + io.data_seq_reads
                assert expected_pages == io.data_reads
        finally:
            tree.unbind()
