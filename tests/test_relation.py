"""Unit tests for the page-based relation."""

import numpy as np
import pytest

from repro.storage import IOStats, PAGE_SIZE, Relation, SimulatedClock
from repro.storage.device import SSD_PROFILE, Device


def _relation(n=100, tuple_size=256):
    return Relation({"k": np.arange(n, dtype=np.int64)}, tuple_size=tuple_size)


def _device():
    return Device(SSD_PROFILE, SimulatedClock(), IOStats())


class TestGeometry:
    def test_tuples_per_page(self):
        assert _relation().tuples_per_page == PAGE_SIZE // 256

    def test_npages_ceil(self):
        rel = _relation(n=17, tuple_size=256)  # 16 tuples/page -> 2 pages
        assert rel.npages == 2

    def test_page_of(self):
        rel = _relation(n=100)
        assert rel.page_of(0) == 0
        assert rel.page_of(16) == 1

    def test_page_of_out_of_range(self):
        with pytest.raises(IndexError):
            _relation(10).page_of(10)

    def test_page_bounds_last_partial(self):
        rel = _relation(n=20)
        first, last = rel.page_bounds(1)
        assert (first, last) == (16, 20)

    def test_page_bounds_invalid(self):
        with pytest.raises(IndexError):
            _relation(10).page_bounds(5)

    def test_size_bytes(self):
        rel = _relation(n=32)
        assert rel.size_bytes == rel.npages * PAGE_SIZE

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation({}, tuple_size=100)

    def test_mismatched_column_lengths(self):
        with pytest.raises(ValueError):
            Relation(
                {"a": np.arange(5), "b": np.arange(6)}, tuple_size=100
            )

    def test_oversized_tuple(self):
        with pytest.raises(ValueError):
            Relation({"a": np.arange(5)}, tuple_size=PAGE_SIZE + 1)


class TestAccess:
    def test_view_page_contents(self):
        rel = _relation(n=40)
        view = rel.view_page(1)
        assert list(view.column("k")) == list(range(16, 32))
        assert view.first_tid == 16
        assert len(view) == 16

    def test_fetch_page_charges_device(self):
        rel = _relation()
        device = _device()
        rel.fetch_page(3, device)
        assert device.stats.data_random_reads == 1

    def test_scan_pages_sequential(self):
        rel = _relation(n=64)  # 4 pages
        device = _device()
        pages = list(rel.scan_pages(device))
        assert len(pages) == 4
        assert device.stats.data_random_reads == 1
        assert device.stats.data_seq_reads == 3

    def test_scan_page_for_key_counts(self):
        rel = Relation(
            {"k": np.asarray([1, 2, 2, 2, 3], dtype=np.int64)}, tuple_size=512
        )
        device = _device()
        view = rel.view_page(0)
        assert rel.scan_page_for_key(view, "k", 2, device) == 3

    def test_scan_stop_early(self):
        rel = _relation(n=16)
        device = _device()
        rel.scan_page_for_key(rel.view_page(0), "k", 2, device, stop_early=True)
        # keys 0,1,2 then stop at 3 -> 4 tuples examined
        assert device.stats.tuples_scanned == 4

    def test_scan_full_when_not_stopping(self):
        rel = _relation(n=16)
        device = _device()
        rel.scan_page_for_key(rel.view_page(0), "k", 2, device, stop_early=False)
        assert device.stats.tuples_scanned == 16

    def test_multi_column_views(self):
        rel = Relation(
            {"a": np.arange(10), "b": np.arange(10) * 2}, tuple_size=512
        )
        view = rel.view_page(0)
        assert list(view.column("b")) == [0, 2, 4, 6, 8, 10, 12, 14]
