"""Suppression-directive and baseline-file behavior."""

from collections import Counter

from repro.analysis.lint import (
    Violation,
    apply_baseline,
    lint_files,
    lint_source,
    load_baseline,
    write_baseline,
)

PERSIST = "src/repro/persist/durable.py"

BAD_LINE = "        return self.inner.insert(key, tid)"

BAD = (
    "class DurableIndex:\n"
    "    def insert(self, key, tid):\n"
    + BAD_LINE + "{directive}\n"
)


def with_directive(directive):
    return BAD.format(directive=directive)


def ids_of(violations):
    return sorted(v.rule for v in violations)


class TestSuppressions:
    def test_directive_with_reason_suppresses(self):
        src = with_directive(
            "  # reprolint: disable=D1 -- replay path, already framed")
        assert lint_source(src, PERSIST) == []

    def test_directive_without_reason_does_not_suppress(self):
        src = with_directive("  # reprolint: disable=D1")
        assert ids_of(lint_source(src, PERSIST)) == ["D1", "U2"]

    def test_unused_directive_reported(self):
        src = (
            "def helper():\n"
            "    return 1  # reprolint: disable=D1 -- does not apply here\n"
        )
        vs = lint_source(src, PERSIST)
        assert ids_of(vs) == ["U1"]
        assert "matched no finding" in vs[0].message

    def test_unknown_rule_id_reported(self):
        src = (
            "def helper():\n"
            "    return 1  # reprolint: disable=Z9 -- whatever\n"
        )
        vs = lint_source(src, PERSIST)
        assert ids_of(vs) == ["U3"]
        assert "Z9" in vs[0].message

    def test_unknown_directive_verb_reported(self):
        src = (
            "def helper():\n"
            "    return 1  # reprolint: ignore=D1 -- wrong verb\n"
        )
        vs = lint_source(src, PERSIST)
        assert ids_of(vs) == ["U3"]

    def test_multiple_ids_one_directive(self):
        src = with_directive(
            "  # reprolint: disable=D1,D2 -- covers both")
        # D1 is suppressed; the D2 half matched nothing and is stale.
        vs = lint_source(src, PERSIST)
        assert ids_of(vs) == ["U1"]
        assert "D2" in vs[0].message

    def test_directive_must_be_on_the_flagged_line(self):
        src = (
            "class DurableIndex:\n"
            "    def insert(self, key, tid):\n"
            "        # reprolint: disable=D1 -- wrong line\n"
            + BAD_LINE + "\n"
        )
        vs = lint_source(src, PERSIST)
        assert "D1" in ids_of(vs) and "U1" in ids_of(vs)

    def test_directive_inside_string_literal_is_inert(self):
        src = (
            "def helper():\n"
            "    return '# reprolint: disable=D1 -- not a directive'\n"
        )
        assert lint_source(src, PERSIST) == []


def v(rule, path, line, message):
    return Violation(rule, "durability-ordering", path, line, message)


class TestBaseline:
    def test_roundtrip_suppresses_recorded_findings(self, tmp_path):
        finding = v("D1", "src/a.py", 10, "boom")
        path = tmp_path / "baseline.json"
        write_baseline([finding], path)
        baseline = load_baseline(path)
        assert apply_baseline([finding], baseline) == []

    def test_line_numbers_do_not_matter(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([v("D1", "src/a.py", 10, "boom")], path)
        moved = v("D1", "src/a.py", 99, "boom")
        assert apply_baseline([moved], load_baseline(path)) == []

    def test_multiset_counts_only_absorb_recorded_copies(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([v("D1", "src/a.py", 10, "boom")], path)
        two = [v("D1", "src/a.py", 10, "boom"),
               v("D1", "src/a.py", 50, "boom")]
        kept = apply_baseline(two, load_baseline(path))
        assert len(kept) == 1

    def test_new_findings_pass_through(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([v("D1", "src/a.py", 10, "boom")], path)
        fresh = v("D2", "src/b.py", 3, "new bug")
        assert apply_baseline([fresh], load_baseline(path)) == [fresh]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == Counter()

    def test_engine_level_integration(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "persist" / "durable.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(BAD.format(directive=""))
        assert ids_of(lint_files([bad], tmp_path)) == ["D1"]

        baseline = tmp_path / "reprolint-baseline.json"
        write_baseline(lint_files([bad], tmp_path), baseline)
        assert lint_files([bad], tmp_path, baseline_path=baseline) == []
