"""Ported pattern rules (C/P/S/L/F/X): semantics preserved from the flat
linter, now with stable short ids, plus the protocol-surface regression
tests the first lint run forced onto the books.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import Violation, lint_files, lint_repo, lint_source
from repro.analysis.lint.rules_ast import PROTOCOL_SURFACE
from repro.api import Index, as_scalar, make_index, registered_backends

ROOT = Path(__file__).resolve().parents[2]


def ids_of(violations):
    return sorted({v.rule for v in violations})


# ======================================================================
# charge-discipline (C1/C2)
# ======================================================================
class TestChargeDiscipline:
    def test_read_page_without_sequential_flagged(self):
        vs = lint_source(
            "def fetch(dev, pids):\n"
            "    for pid in pids:\n"
            "        dev.read_page(pid)\n"
        )
        assert ids_of(vs) == ["C1"]
        assert vs[0].line == 3
        assert "sequential" in vs[0].message

    def test_literal_sequential_true_flagged(self):
        vs = lint_source("def f(dev, pid):\n"
                         "    dev.read_page(pid, sequential=True)\n")
        assert ids_of(vs) == ["C2"]
        assert "random positioning" in vs[0].message

    def test_run_pattern_is_clean(self):
        assert lint_source(
            "def fetch(dev, pids):\n"
            "    for i, pid in enumerate(pids):\n"
            "        dev.read_page(pid, sequential=i > 0)\n"
        ) == []

    def test_storage_layer_is_exempt(self):
        src = "def f(dev, pid):\n    dev.read_page(pid)\n"
        assert lint_source(src, "src/repro/storage/buffer_pool.py") == []
        assert lint_source(src, "src/repro/core/bf_tree.py") != []

    def test_tests_are_exempt(self):
        src = "def f(dev, pid):\n    dev.read_page(pid)\n"
        assert lint_source(src, "tests/test_device.py") == []


# ======================================================================
# protocol-discipline (P1/P2/P3)
# ======================================================================
class TestProtocolDiscipline:
    @pytest.mark.parametrize("probe", [
        'getattr(ix, "supports_sharding", False)',
        'getattr(ix, "size_pages", 0)',
        'hasattr(ix, "search_many")',
        'hasattr(ix, "range_scan")',
    ])
    def test_duck_typing_protocol_surface_flagged(self, probe):
        assert ids_of(lint_source(f"def f(ix):\n    return {probe}\n")) == \
            ["P1"]

    def test_non_protocol_attribute_is_clean(self):
        assert lint_source(
            'def f(obj):\n    return getattr(obj, "spill_hint", 0)\n'
        ) == []

    def test_scalar_op_without_batch_counterpart_flagged(self):
        vs = lint_source(
            "class Bad:\n"
            "    def capabilities(self):\n"
            "        return None\n"
            "    def search(self, key):\n"
            "        return None\n"
        )
        assert ids_of(vs) == ["P2"]
        assert "search_many" in vs[0].message

    def test_batch_counterpart_inherited_from_mixin_is_clean(self):
        assert lint_source(
            "from repro.api.protocol import IndexBackend\n"
            "class Ok(IndexBackend):\n"
            "    def capabilities(self):\n"
            "        return None\n"
            "    def search(self, key):\n"
            "        return None\n"
        ) == []

    def test_non_index_class_with_search_is_clean(self):
        assert lint_source(
            "class TextFinder:\n"
            "    def search(self, needle):\n"
            "        return None\n"
        ) == []

    def test_registered_backend_missing_from_conformance(self, tmp_path):
        api = tmp_path / "src" / "repro" / "api"
        api.mkdir(parents=True)
        (api / "backends.py").write_text(
            'register("bf", build_bf)\nregister("ghost", build_ghost)\n'
        )
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_api_conformance.py").write_text(
            'EXPECTED_CAPS = {"bf": dict(ordered=True)}\n'
        )
        vs = lint_repo(tmp_path)
        assert ids_of(vs) == ["P3"]
        [v] = vs
        assert '"ghost"' in v.message and "EXPECTED_CAPS" in v.message


# ======================================================================
# topology-discipline (P4)
# ======================================================================
class TestShardCaching:
    SVC = "src/repro/service/rebalance.py"

    @pytest.mark.parametrize("body", [
        "self.hot = service.shards[0]",
        "self.view = service.shards",
        "self.first = self.service.shards[i]",
        "self.pair: tuple = (service.shards[0], service.shards[1])",
    ])
    def test_caching_shards_in_self_flagged(self, body):
        src = (
            "class Controller:\n"
            "    def observe(self, service, i):\n"
            f"        {body}\n"
        )
        vs = lint_source(src, self.SVC)
        assert ids_of(vs) == ["P4"]
        assert "epoch" in vs[0].message

    def test_transient_local_read_is_clean(self):
        src = (
            "class Controller:\n"
            "    def observe(self, service):\n"
            "        for shard in service.shards:\n"
            "            shard.index.n_leaves\n"
            "        hot = service.shards[0]\n"
            "        return hot.shard_id\n"
        )
        assert lint_source(src, self.SVC) == []

    def test_topology_owners_are_exempt(self):
        src = (
            "class ShardedIndex:\n"
            "    def _admit(self, shard):\n"
            "        self.shards = self.shards + [shard]\n"
        )
        assert lint_source(src, "src/repro/service/sharded.py") == []
        assert lint_source(src, "src/repro/service/routing.py") == []
        assert ids_of(lint_source(src, self.SVC)) == ["P4"]


# ======================================================================
# seed-discipline (S1/S2/S3)
# ======================================================================
class TestSeedDiscipline:
    @pytest.mark.parametrize("snippet,rule", [
        ("import numpy as np\nrng = np.random.default_rng()\n", "S1"),
        ("from numpy.random import default_rng\nrng = default_rng()\n",
         "S1"),
        ("import random\nr = random.Random()\n", "S2"),
        ("import random\nx = random.random()\n", "S3"),
        ("import random\nrandom.seed(42)\n", "S3"),
        ("import numpy as np\nx = np.random.rand(8)\n", "S3"),
    ])
    def test_unseeded_rng_flagged(self, snippet, rule):
        assert ids_of(lint_source(snippet)) == [rule]

    @pytest.mark.parametrize("snippet", [
        "import numpy as np\nrng = np.random.default_rng(42)\n",
        "import numpy as np\nrng = np.random.default_rng(seed=7)\n",
        "import random\nr = random.Random(17)\n",
        "import numpy as np\ndef f(rng):\n    return rng.random()\n",
    ])
    def test_seeded_rng_clean(self, snippet):
        assert lint_source(snippet) == []

    def test_seed_rule_applies_to_tests_too(self):
        vs = lint_source("import random\nx = random.random()\n",
                         "tests/test_something.py")
        assert ids_of(vs) == ["S3"]


# ======================================================================
# scalar-leak (L1)
# ======================================================================
class TestScalarLeak:
    def test_hasattr_item_flagged(self):
        vs = lint_source(
            'def unwrap(k):\n'
            '    return k.item() if hasattr(k, "item") else k\n'
        )
        assert ids_of(vs) == ["L1"]
        assert "as_scalar" in vs[0].message

    def test_helper_home_module_is_exempt(self):
        src = 'def unwrap(k):\n    return hasattr(k, "item")\n'
        assert lint_source(src, "src/repro/api/results.py") == []

    def test_as_scalar_normalizes_numpy(self):
        import numpy as np

        assert as_scalar(np.int64(7)) == 7
        assert type(as_scalar(np.int64(7))) is int
        assert type(as_scalar(np.float32(1.5))) is float
        assert as_scalar(np.array(3)) == 3
        assert as_scalar("plain") == "plain"
        assert as_scalar(11) == 11


# ======================================================================
# format-discipline (F1/F2)
# ======================================================================
class TestFormatDiscipline:
    @pytest.mark.parametrize("snippet", [
        "import pickle\ndef load(path):\n"
        "    with open(path, 'rb') as f:\n"
        "        return pickle.load(f)\n",
        "import pickle\ndef load(blob):\n    return pickle.loads(blob)\n",
        "from pickle import loads\ndef load(blob):\n    return loads(blob)\n",
    ])
    def test_pickle_deserialization_flagged(self, snippet):
        vs = lint_source(snippet)
        assert ids_of(vs) == ["F1"]
        assert "persist" in vs[0].message

    @pytest.mark.parametrize("mode", ["wb", "ab", "xb", "rb+", "wb+", "bw"])
    def test_binary_write_open_flagged(self, mode):
        vs = lint_source(
            f"def dump(path, blob):\n"
            f"    with open(path, {mode!r}) as f:\n"
            f"        f.write(blob)\n"
        )
        assert ids_of(vs) == ["F2"]

    @pytest.mark.parametrize("snippet", [
        "def read(path):\n    return open(path, 'rb').read()\n",
        "def dump(path, text):\n"
        "    with open(path, 'w') as f:\n"
        "        f.write(text)\n",
        "def read(path):\n    return open(path).read()\n",
    ])
    def test_reads_and_text_writes_clean(self, snippet):
        assert lint_source(snippet) == []

    def test_persist_package_is_exempt(self):
        src = ("def dump(path, blob):\n"
               "    with open(path, 'wb') as f:\n"
               "        f.write(blob)\n")
        assert lint_source(src, "src/repro/persist/wal.py") == []
        assert lint_source(src, "src/repro/core/bf_tree.py") != []

    def test_tests_and_benchmarks_are_exempt(self):
        src = "import pickle\ndef f(b):\n    return pickle.loads(b)\n"
        assert lint_source(src, "tests/test_fixture.py") == []
        assert lint_source(src, "benchmarks/bench_x.py") == []


# ======================================================================
# executor-confinement (X1)
# ======================================================================
class TestExecutorConfinement:
    EXECUTOR = "src/repro/service/executor.py"

    @pytest.mark.parametrize("snippet", [
        "from concurrent.futures import ThreadPoolExecutor\n",
        "import concurrent.futures\n",
        "from concurrent import futures\n",
        "import multiprocessing\n",
        "import multiprocessing.shared_memory\n",
        "from multiprocessing import shared_memory\n",
        "from multiprocessing.connection import Connection\n",
    ])
    def test_parallel_imports_flagged_in_library_code(self, snippet):
        assert ids_of(lint_source(snippet)) == ["X1"]
        assert ids_of(
            lint_source(snippet, "src/repro/service/router.py")) == ["X1"]

    @pytest.mark.parametrize("snippet", [
        "from concurrent.futures import ThreadPoolExecutor\n",
        "import multiprocessing\n",
        "from multiprocessing import shared_memory\n",
    ])
    def test_executor_module_is_the_sanctioned_home(self, snippet):
        assert lint_source(snippet, self.EXECUTOR) == []

    def test_tests_and_benchmarks_are_exempt(self):
        src = "import multiprocessing\n"
        assert lint_source(src, "tests/test_service.py") == []
        assert lint_source(src, "benchmarks/bench_service_scaling.py") == []

    @pytest.mark.parametrize("snippet", [
        "import threading\n",
        "import concurrency_helpers\n",
        "from concurrent_utils import pool\n",
        "import os\nimport sys\n",
    ])
    def test_unrelated_imports_clean(self, snippet):
        assert lint_source(snippet) == []


# ======================================================================
# plumbing
# ======================================================================
def test_violation_format_is_precise():
    v = Violation("S3", "seed-discipline", "src/x.py", 12, "boom")
    assert v.format() == "src/x.py:12: [S3 seed-discipline] boom"


def test_lint_files_orders_output(tmp_path):
    a = tmp_path / "src" / "a.py"
    a.parent.mkdir()
    a.write_text("import random\nx = random.random()\ny = random.random()\n")
    vs = lint_files([a], tmp_path)
    assert [v.line for v in vs] == [2, 3]


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("def broken(:\n")
    vs = lint_files([bad], tmp_path)
    assert ids_of(vs) == ["PE"]


# ======================================================================
# regression: the protocol-surface violations the first lint run fixed
# ======================================================================
def test_every_backend_declares_supports_sharding(pk_relation):
    for name in registered_backends():
        index = make_index(name, pk_relation, "pk", unique=True, fpp=1e-3)
        assert isinstance(index.supports_sharding, bool)
        assert index.supports_sharding == (name in ("bf", "bplus"))


def test_every_backend_declares_size_pages(pk_relation):
    for name in registered_backends():
        index = make_index(name, pk_relation, "pk", unique=True, fpp=1e-3)
        assert isinstance(index.size_pages, int)
        assert index.size_pages >= 0


def test_protocol_surface_covers_sharding_and_size():
    assert "supports_sharding" in PROTOCOL_SURFACE
    assert "size_pages" in PROTOCOL_SURFACE
    assert "supports_sharding" in Index.__annotations__
    assert isinstance(Index.size_pages, property)


def test_protocol_surface_covers_checkpoint_hooks():
    assert "snapshot_state" in PROTOCOL_SURFACE
    assert "restore_state" in PROTOCOL_SURFACE
    vs = lint_source('def f(ix):\n    return hasattr(ix, "snapshot_state")\n')
    assert ids_of(vs) == ["P1"]
