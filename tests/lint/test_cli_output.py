"""Renderers, CLI exit codes, and the repo-wide clean gate."""

import json
import time
from pathlib import Path

import repro.analysis.lint as lint_pkg
from repro.analysis.lint import (
    RULES,
    Violation,
    lint_files,
    lint_repo,
    render_json,
    render_sarif,
    render_text,
)
from repro.cli import main

ROOT = Path(__file__).resolve().parents[2]

D1_BAD = (
    "class DurableIndex:\n"
    "    def insert(self, key, tid):\n"
    "        return self.inner.insert(key, tid)\n"
)


def make_repo(tmp_path):
    bad = tmp_path / "src" / "repro" / "persist" / "durable.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(D1_BAD)
    return tmp_path


def sample():
    return [
        Violation("D1", "durability-ordering", "src/a.py", 3, "boom"),
        Violation("U1", "suppression", "src/b.py", 9, "stale"),
    ]


class TestRenderers:
    def test_text_lines_and_count(self):
        out = render_text(sample())
        assert "src/a.py:3: [D1 durability-ordering] boom" in out
        assert out.rstrip().endswith("reprolint: 2 findings")

    def test_text_singular_count(self):
        assert render_text(sample()[:1]).rstrip().endswith("1 finding")

    def test_json_payload(self):
        doc = json.loads(render_json(sample()))
        assert [f["rule"] for f in doc["findings"]] == ["D1", "U1"]
        assert doc["findings"][0] == {
            "rule": "D1", "category": "durability-ordering",
            "path": "src/a.py", "line": 3, "message": "boom",
        }

    def test_sarif_structure(self):
        doc = json.loads(render_sarif(sample()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert {r["id"] for r in driver["rules"]} == set(RULES)
        d1, u1 = run["results"]
        assert d1["level"] == "error"
        assert u1["level"] == "warning"  # hygiene findings are advisory
        loc = d1["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/a.py"
        assert loc["region"]["startLine"] == 3


class TestOrdering:
    def test_findings_sorted_by_path_line_rule(self, tmp_path):
        root = make_repo(tmp_path)
        other = root / "src" / "repro" / "persist" / "apply.py"
        other.write_text(D1_BAD)
        vs = lint_files(
            [root / "src/repro/persist/durable.py", other], root)
        keys = [(v.path, v.line, v.rule) for v in vs]
        assert keys == sorted(keys)
        assert vs[0].path.endswith("apply.py")  # path order, not arg order


class TestRepoGate:
    def test_repository_lints_clean(self):
        assert lint_repo(ROOT) == []

    def test_whole_repo_lint_under_ten_seconds(self):
        start = time.monotonic()
        lint_repo(ROOT)
        assert time.monotonic() - start < 10.0


class TestCliExitCodes:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["lint", "--root", str(ROOT)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = make_repo(tmp_path)
        assert main(["lint", "--root", str(root)]) == 1
        assert "[D1 durability-ordering]" in capsys.readouterr().out

    def test_engine_error_exits_two(self, tmp_path, capsys, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("engine bug")

        monkeypatch.setattr(lint_pkg, "lint_repo", explode)
        assert main(["lint", "--root", str(tmp_path)]) == 2
        assert "engine bug" in capsys.readouterr().err

    def test_out_writes_file(self, tmp_path, capsys):
        root = make_repo(tmp_path)
        out = tmp_path / "findings.sarif"
        code = main(["lint", "--root", str(root),
                     "--format", "sarif", "--out", str(out)])
        assert code == 1  # findings still gate even when written to a file
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "D1"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_repo(tmp_path)
        assert main(["lint", "--root", str(root), "--write-baseline"]) == 0
        assert (root / "reprolint-baseline.json").is_file()
        assert main(["lint", "--root", str(root)]) == 0

    def test_changed_without_git_falls_back_to_full_run(self, tmp_path,
                                                        capsys):
        root = make_repo(tmp_path)
        assert main(["lint", "--root", str(root), "--changed"]) == 1
        captured = capsys.readouterr()
        assert "running the full tree instead" in captured.err
        assert "[D1 durability-ordering]" in captured.out

    def test_changed_in_this_repo_runs(self, capsys):
        # The checkout is a git repo with a main ref, so --changed takes
        # the fast path; the tree is clean either way.
        assert main(["lint", "--root", str(ROOT), "--changed"]) == 0


def test_committed_baseline_is_empty():
    doc = json.loads((ROOT / "reprolint-baseline.json").read_text())
    assert doc == {"version": 1, "findings": []}
