"""CFG/dataflow rules (D1–D3, E1–E2, R1): every rule proven on a
known-bad/known-good pair, and every known-bad snippet shown to be
invisible to the ported pattern rules (``only=PORTED_IDS``) — the flat
linter could not express these orderings.
"""

import numpy as np
import pytest

from repro.analysis.lint import PORTED_IDS, lint_source


def ids_of(violations):
    return sorted({v.rule for v in violations})


PERSIST = "src/repro/persist/durable.py"
EXECUTOR = "src/repro/service/executor.py"
SERVICE = "src/repro/service/rebalance.py"


# ======================================================================
# D1 — log-before-apply
# ======================================================================
D1_BAD = (
    "class DurableIndex:\n"
    "    def insert(self, key, tid):\n"
    "        if self._fast_path:\n"
    "            return self.inner.insert(key, tid)\n"
    "        self._wal.append({'op': 'insert'})\n"
    "        return self.inner.insert(key, tid)\n"
)

D1_GOOD = (
    "class DurableIndex:\n"
    "    def insert(self, key, tid):\n"
    "        self._wal.append({'op': 'insert'})\n"
    "        return self.inner.insert(key, tid)\n"
)


class TestD1LogBeforeApply:
    def test_branch_skipping_append_flagged(self):
        vs = lint_source(D1_BAD, PERSIST)
        assert ids_of(vs) == ["D1"]
        [v] = vs
        assert v.line == 4  # the un-logged arm, not the logged one
        assert "log-before-apply" in v.message

    def test_append_dominating_apply_is_clean(self):
        assert lint_source(D1_GOOD, PERSIST) == []

    def test_apply_param_call_flagged_without_append(self):
        src = (
            "class DurableIndex:\n"
            "    def _log_apply(self, record, apply):\n"
            "        return apply()\n"
        )
        vs = lint_source(src, PERSIST)
        assert ids_of(vs) == ["D1"]

    def test_append_only_on_one_branch_flagged(self):
        src = (
            "class DurableIndex:\n"
            "    def delete(self, key):\n"
            "        if self._wal is not None:\n"
            "            self._wal.append({'op': 'delete'})\n"
            "        return self.inner.delete(key)\n"
        )
        vs = lint_source(src, PERSIST)
        assert ids_of(vs) == ["D1"]
        assert vs[0].line == 5

    def test_mutation_inside_lambda_is_an_argument_not_a_site(self):
        src = (
            "class DurableIndex:\n"
            "    def insert(self, key, tid):\n"
            "        return self._log_apply(\n"
            "            {'op': 'insert'},\n"
            "            lambda: self.inner.insert(key, tid))\n"
        )
        assert lint_source(src, PERSIST) == []

    def test_other_classes_are_exempt(self):
        src = D1_BAD.replace("DurableIndex", "CacheIndex")
        assert lint_source(src, PERSIST) == []


# ======================================================================
# D2 — commit-point-last
# ======================================================================
D2_BAD = (
    "import shutil\n"
    "def retire(dirpath, manifest):\n"
    "    shutil.rmtree(dirpath / 'gen-0')\n"
    "    write_manifest(dirpath, manifest)\n"
)

D2_GOOD = (
    "import shutil\n"
    "def retire(dirpath, manifest):\n"
    "    write_manifest(dirpath, manifest)\n"
    "    shutil.rmtree(dirpath / 'gen-0')\n"
)


class TestD2CommitPointLast:
    def test_removal_before_commit_flagged(self):
        vs = lint_source(D2_BAD, PERSIST)
        assert ids_of(vs) == ["D2"]
        assert vs[0].line == 3
        assert "commit-point-last" in vs[0].message

    def test_commit_dominating_removal_is_clean(self):
        assert lint_source(D2_GOOD, PERSIST) == []

    def test_removal_on_branch_around_commit_flagged(self):
        src = (
            "def checkpoint(dirpath, manifest, old):\n"
            "    if manifest is not None:\n"
            "        write_manifest(dirpath, manifest)\n"
            "    old.unlink()\n"
        )
        vs = lint_source(src, PERSIST)
        assert ids_of(vs) == ["D2"]

    def test_pure_teardown_function_is_exempt(self):
        src = (
            "import shutil\n"
            "def destroy(dirpath):\n"
            "    shutil.rmtree(dirpath)\n"
        )
        assert lint_source(src, PERSIST) == []

    def test_rule_scoped_to_persist(self):
        assert lint_source(D2_BAD, "src/repro/core/sweeper.py") == []


# ======================================================================
# D3 — fsync-before-ack
# ======================================================================
D3_BAD = (
    "def _worker_main(conn, service):\n"
    "    while True:\n"
    "        out = work(service)\n"
    "        conn.send(('ok', out))\n"
    "        service.index.sync()\n"
)

D3_GOOD = (
    "def _worker_main(conn, service):\n"
    "    while True:\n"
    "        out = work(service)\n"
    "        service.index.sync()\n"
    "        conn.send(('ok', out))\n"
)


class TestD3FsyncBeforeAck:
    def test_ack_before_sync_flagged(self):
        vs = lint_source(D3_BAD, EXECUTOR)
        assert ids_of(vs) == ["D3"]
        assert vs[0].line == 4
        assert "fsync-before-ack" in vs[0].message

    def test_sync_dominating_ack_is_clean(self):
        assert lint_source(D3_GOOD, EXECUTOR) == []

    def test_transitive_sync_helper_is_recognized(self):
        src = (
            "def _sync_index(index):\n"
            "    index.sync()\n"
            "def _worker_main(conn, shard):\n"
            "    out = work(shard)\n"
            "    _sync_index(shard.index)\n"
            "    conn.send(('ok', out))\n"
        )
        assert lint_source(src, EXECUTOR) == []

    def test_bye_handshake_needs_sync_too(self):
        src = (
            "def _worker_main(conn, service):\n"
            "    conn.send(('bye',))\n"
        )
        assert ids_of(lint_source(src, EXECUTOR)) == ["D3"]

    def test_error_and_stop_sends_are_not_acks(self):
        src = (
            "def _worker_main(conn, exc):\n"
            "    conn.send(('err', exc))\n"
            "    conn.send(('stop',))\n"
        )
        assert lint_source(src, EXECUTOR) == []

    def test_rule_scoped_to_executor_module(self):
        assert lint_source(D3_BAD, "src/repro/service/router.py") == []


# ======================================================================
# E1 — epoch discipline (dataflow generalization of P4)
# ======================================================================
E1_BAD = (
    "def grow(service, table, key):\n"
    "    pos = table.route(key)\n"
    "    service.split_shard(pos)\n"
    "    return service.shards[pos]\n"
)

E1_GOOD = (
    "def grow(service, table, key):\n"
    "    pos = table.route(key)\n"
    "    service.split_shard(pos)\n"
    "    pos = table.route(key)\n"
    "    return service.shards[pos]\n"
)


class TestE1EpochDiscipline:
    def test_ordinal_reused_across_bump_flagged(self):
        vs = lint_source(E1_BAD, SERVICE)
        assert ids_of(vs) == ["E1"]
        assert vs[0].line == 4
        assert "epoch" in vs[0].message

    def test_rederived_ordinal_is_clean(self):
        assert lint_source(E1_GOOD, SERVICE) == []

    def test_passing_ordinal_into_the_bumper_itself_is_clean(self):
        src = (
            "def shrink(service, table, key):\n"
            "    pos = table.ordinal_of(key)\n"
            "    service.merge_shards(pos, pos + 1)\n"
        )
        assert lint_source(src, SERVICE) == []

    def test_taint_propagates_through_derived_values(self):
        src = (
            "def grow(service, table, key):\n"
            "    pos = table.route(key)\n"
            "    hint = pos + 1\n"
            "    service.split_shard(pos)\n"
            "    return use(hint)\n"
        )
        vs = lint_source(src, SERVICE)
        assert ids_of(vs) == ["E1"]
        assert vs[0].line == 5

    def test_transitive_bumper_is_recognized(self):
        src = (
            "def _grow(service, pos):\n"
            "    service.split_shard(pos)\n"
            "def control(service, table, key):\n"
            "    pos = table.route(key)\n"
            "    _grow(service, pos)\n"
            "    return use(pos)\n"
        )
        vs = lint_source(src, SERVICE)
        assert ids_of(vs) == ["E1"]
        assert vs[0].line == 6

    def test_stable_shard_ids_are_not_tainted(self):
        src = (
            "def grow(service, table, key):\n"
            "    sid = table.id_at(table.route(key))\n"
            "    service.split_shard(sid)\n"
            "    return service.shard_by_id(sid)\n"
        )
        assert lint_source(src, SERVICE) == []

    def test_loop_carried_staleness_flagged(self):
        # The epoch bump happens on iteration N; the reuse is the same
        # statement on iteration N+1.  Only flow analysis sees this.
        src = (
            "def storm(service, table, keys):\n"
            "    pos = table.route(keys[0])\n"
            "    for key in keys:\n"
            "        service.split_shard(pos)\n"
        )
        vs = lint_source(src, SERVICE)
        assert ids_of(vs) == ["E1"]
        assert vs[0].line == 4

    def test_rule_scoped_like_p4(self):
        assert lint_source(E1_BAD, "src/repro/service/sharded.py") == []
        assert lint_source(E1_BAD, "src/repro/core/bf_tree.py") == []


# ======================================================================
# E2 — suspended-context discipline
# ======================================================================
E2_BAD = (
    "class Exec:\n"
    "    def flush(self, core, sid):\n"
    "        batches = self._journal.get(sid)\n"
    "        for batch in batches:\n"
    "            core.replay_shard(sid, batch)\n"
)

E2_GOOD = (
    "class Exec:\n"
    "    def flush(self, service, core, sid):\n"
    "        batches = self._journal.get(sid)\n"
    "        with service.suspended_charges(sid):\n"
    "            for batch in batches:\n"
    "                core.replay_shard(sid, batch)\n"
)


class TestE2SuspendedContext:
    def test_unsuspended_journal_replay_flagged(self):
        vs = lint_source(E2_BAD, EXECUTOR)
        assert ids_of(vs) == ["E2"]
        assert vs[0].line == 5
        assert "suspended" in vs[0].message

    def test_suspended_replay_is_clean(self):
        assert lint_source(E2_GOOD, EXECUTOR) == []

    def test_transitive_suspending_context_manager_is_recognized(self):
        src = (
            "from contextlib import contextmanager\n"
            "@contextmanager\n"
            "def _quiet(index):\n"
            "    with index.suspended_logging():\n"
            "        yield\n"
            "class Exec:\n"
            "    def flush(self, core, sid):\n"
            "        batches = self._journal.get(sid)\n"
            "        with _quiet(core.index):\n"
            "            for batch in batches:\n"
            "                core.replay_shard(sid, batch)\n"
        )
        assert lint_source(src, EXECUTOR) == []

    def test_replay_of_non_journal_batches_is_clean(self):
        src = (
            "class Exec:\n"
            "    def recover(self, core, sid, remaining):\n"
            "        if self._journal:\n"
            "            pass\n"
            "        for batch in remaining:\n"
            "            core.replay_shard(sid, batch)\n"
        )
        assert lint_source(src, EXECUTOR) == []

    def test_rule_scoped_to_service(self):
        assert lint_source(E2_BAD, "src/repro/core/bf_tree.py") == []


# ======================================================================
# R1 — SharedMemory lifecycle
# ======================================================================
R1_BAD_EXC = (
    "def ship(arr):\n"
    "    shm = SharedMemory(create=True, size=arr.nbytes)\n"
    "    fill(shm.buf, arr)\n"
    "    publish(shm.name)\n"
    "    shm.close()\n"
    "    shm.unlink()\n"
)

R1_GOOD_EXC = (
    "def ship(arr):\n"
    "    shm = SharedMemory(create=True, size=arr.nbytes)\n"
    "    try:\n"
    "        fill(shm.buf, arr)\n"
    "        publish(shm.name)\n"
    "    finally:\n"
    "        shm.close()\n"
    "        shm.unlink()\n"
)


class TestR1SharedMemoryLifecycle:
    def test_leak_on_exception_path_flagged(self):
        vs = lint_source(R1_BAD_EXC, EXECUTOR)
        assert ids_of(vs) == ["R1"]
        [v] = vs
        assert v.line == 2  # reported at the creation site
        assert "exception path" in v.message

    def test_try_finally_cleanup_is_clean(self):
        assert lint_source(R1_GOOD_EXC, EXECUTOR) == []

    def test_missing_unlink_on_return_path_flagged(self):
        src = (
            "def ship(arr):\n"
            "    shm = SharedMemory(create=True, size=8)\n"
            "    shm.close()\n"
            "    return None\n"
        )
        vs = lint_source(src, EXECUTOR)
        assert ids_of(vs) == ["R1"]
        assert "unlink()" in vs[0].message

    def test_cleanup_in_reraising_handler_is_clean(self):
        src = (
            "def ship(conn, arr):\n"
            "    shm = SharedMemory(create=True, size=8)\n"
            "    try:\n"
            "        conn.send(shm.name)\n"
            "    except BaseException:\n"
            "        shm.close()\n"
            "        shm.unlink()\n"
            "        raise\n"
            "    return shm\n"
        )
        assert lint_source(src, EXECUTOR) == []

    def test_escape_transfers_ownership(self):
        src = (
            "def ship(queue, arr):\n"
            "    shm = SharedMemory(create=True, size=8)\n"
            "    queue.append(shm)\n"
        )
        assert lint_source(src, EXECUTOR) == []

    def test_attach_by_name_is_not_tracked(self):
        src = (
            "def read(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    data = bytes(shm.buf)\n"
            "    shm.close()\n"
            "    return data\n"
        )
        assert lint_source(src, EXECUTOR) == []

    def test_creation_failure_itself_is_not_a_leak(self):
        src = (
            "def ship(arr):\n"
            "    shm = SharedMemory(create=True, size=8)\n"
            "    shm.close()\n"
            "    shm.unlink()\n"
        )
        assert lint_source(src, EXECUTOR) == []


# ======================================================================
# the flat rule set cannot express any of these orderings
# ======================================================================
@pytest.mark.parametrize("snippet,relpath", [
    (D1_BAD, PERSIST),
    (D2_BAD, PERSIST),
    (D3_BAD, EXECUTOR),
    (E1_BAD, SERVICE),
    (E2_BAD, EXECUTOR),
    (R1_BAD_EXC, EXECUTOR),
], ids=["D1", "D2", "D3", "E1", "E2", "R1"])
def test_ported_rules_alone_cannot_flag_flow_bugs(snippet, relpath):
    assert lint_source(snippet, relpath, only=PORTED_IDS) == []


# ======================================================================
# regression: the _dispatch segment leak R1 caught in this repo
# ======================================================================
def test_dispatch_releases_segment_when_send_fails(monkeypatch):
    from types import SimpleNamespace

    from repro.service import executor as ex

    created = []
    real_shm_cls = ex.shared_memory.SharedMemory

    def recording_shm(*args, **kwargs):
        seg = real_shm_cls(*args, **kwargs)
        created.append(seg.name)
        return seg

    monkeypatch.setattr(ex.shared_memory, "SharedMemory", recording_shm)
    monkeypatch.setattr(
        ex, "_encode_subops",
        lambda subops: np.array([[1, 2, 3, 4, 5, 6]], dtype=np.int64))

    class ExplodingConn:
        def send(self, msg):
            raise RuntimeError("serialization blew up")

    executor = object.__new__(ex.ProcessExecutor)
    executor._core = SimpleNamespace(service=None)
    executor._pin = {7: ex._WorkerHandle(process=None, conn=ExplodingConn())}
    executor._dirty = set()
    executor._journal = {}

    subop = ex.SubOp(op_index=0, code=0, key=1)
    with pytest.raises(RuntimeError, match="serialization blew up"):
        executor._dispatch([(0, 7, [subop])], {})

    assert len(created) == 1
    # The segment must be gone: re-attaching by name has to fail.  (On
    # the leaking code this attach succeeds and the test cleans up.)
    try:
        leaked = real_shm_cls(name=created[0])
    except FileNotFoundError:
        return
    leaked.close()
    leaked.unlink()
    raise AssertionError("dispatch leaked shared-memory segment")
