"""CFG construction, dominance, and dataflow-framework unit tests."""

import ast

from repro.analysis.lint.cfg import (
    EXC,
    NORMAL,
    build_cfg,
    iter_functions,
    walk_no_nested,
)
from repro.analysis.lint.dataflow import forward


def cfg_of(source):
    tree = ast.parse(source)
    _cls, func = next(iter_functions(tree))
    return build_cfg(func)


def node_at(cfg, line):
    [node] = [n for n in cfg.nodes if n.kind == "stmt" and n.line == line]
    return node


class TestConstruction:
    def test_straight_line_chain(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
        n2, n3, n4 = node_at(cfg, 2), node_at(cfg, 3), node_at(cfg, 4)
        assert cfg.succs[n2.idx] == {n3.idx: NORMAL}
        assert cfg.succs[n3.idx] == {n4.idx: NORMAL}
        assert cfg.succs[n4.idx] == {cfg.exit: NORMAL}

    def test_branch_and_join(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        head, join = node_at(cfg, 2), node_at(cfg, 6)
        assert set(cfg.succs[head.idx]) == {node_at(cfg, 3).idx,
                                            node_at(cfg, 5).idx}
        assert cfg.preds[join.idx] == {node_at(cfg, 3).idx,
                                       node_at(cfg, 5).idx}

    def test_loop_back_edge(self):
        cfg = cfg_of("def f(xs):\n    for x in xs:\n        use(x)\n")
        head, body = node_at(cfg, 2), node_at(cfg, 3)
        assert head.idx in cfg.succs[body.idx]
        assert cfg.exit in cfg.succs[head.idx]

    def test_call_gets_exception_edge_to_raise_exit(self):
        cfg = cfg_of("def f(x):\n    y = risky(x)\n    return y\n")
        node = node_at(cfg, 2)
        assert cfg.succs[node.idx].get(cfg.raise_exit) == EXC

    def test_plain_assignment_has_no_exception_edge(self):
        cfg = cfg_of("def f(x):\n    y = x\n    return y\n")
        node = node_at(cfg, 2)
        assert cfg.raise_exit not in cfg.succs[node.idx]

    def test_catch_all_handler_intercepts_raise(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    try:\n"
            "        y = risky(x)\n"
            "    except Exception:\n"
            "        y = 0\n"
            "    return y\n"
        )
        body = node_at(cfg, 3)
        assert cfg.raise_exit not in cfg.succs[body.idx]
        heads = [n for n in cfg.nodes if n.kind == "except"]
        assert len(heads) == 1
        assert cfg.succs[body.idx].get(heads[0].idx) == EXC

    def test_narrow_handler_still_reaches_raise_exit(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    try:\n"
            "        y = risky(x)\n"
            "    except ValueError:\n"
            "        y = 0\n"
            "    return y\n"
        )
        body = node_at(cfg, 3)
        heads = [n for n in cfg.nodes if n.kind == "except"]
        assert cfg.succs[body.idx].get(heads[0].idx) == EXC
        assert cfg.succs[body.idx].get(cfg.raise_exit) == EXC

    def test_with_scopes_recorded(self):
        cfg = cfg_of(
            "def f(svc, sid):\n"
            "    with svc.suspended_charges(sid):\n"
            "        with quiet(svc):\n"
            "            replay(sid)\n"
            "    after(sid)\n"
        )
        inner = node_at(cfg, 4)
        assert inner.with_scopes == ("svc.suspended_charges", "quiet")
        assert node_at(cfg, 5).with_scopes == ()

    def test_lambda_bodies_not_walked(self):
        tree = ast.parse("x = run(lambda: inner.insert(1))\n")
        names = [n.func.attr for n in walk_no_nested(tree)
                 if isinstance(n, ast.Call)
                 and isinstance(n.func, ast.Attribute)]
        assert names == []  # inner.insert is inside the lambda body


class TestDominance:
    def test_straight_line(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
        dom = cfg.dominators()
        assert node_at(cfg, 2).idx in dom[node_at(cfg, 4).idx]

    def test_neither_branch_arm_dominates_the_join(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        dom = cfg.dominators()
        join = node_at(cfg, 6).idx
        assert node_at(cfg, 3).idx not in dom[join]
        assert node_at(cfg, 5).idx not in dom[join]
        assert node_at(cfg, 2).idx in dom[join]

    def test_statement_guarded_by_if_does_not_dominate_after(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        prepare()\n"
            "    commit()\n"
        )
        dom = cfg.dominators()
        assert node_at(cfg, 3).idx not in dom[node_at(cfg, 4).idx]

    def test_unreachable_code_is_vacuously_dominated(self):
        cfg = cfg_of(
            "def f():\n"
            "    return 1\n"
            "    apply()\n"
        )
        dom = cfg.dominators()
        dead = node_at(cfg, 3).idx
        # Dead code keeps the full universe, so "must be dominated by X"
        # rules skip it rather than flagging it.
        assert len(dom[dead]) == len(cfg.nodes)


class TestDataflowFramework:
    def test_facts_generated_at_unchanged_in_state_still_propagate(self):
        # Regression: the worklist must process every node at least
        # once.  A transfer that *generates* a fact at a node whose
        # in-state never changes from bottom must still reach its
        # successors.
        cfg = cfg_of("def f():\n    x = make()\n    use(x)\n    return x\n")
        gen = node_at(cfg, 2).idx

        def transfer(node, state, kind):
            new = dict(state)
            if node.idx == gen:
                new["x"] = 1
            return new

        ins = forward(cfg, transfer)
        assert ins[node_at(cfg, 3).idx] == {"x": 1}
        assert ins[cfg.exit] == {"x": 1}

    def test_join_takes_pointwise_max(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        lo, hi = node_at(cfg, 3).idx, node_at(cfg, 5).idx

        def transfer(node, state, kind):
            new = dict(state)
            if node.idx == lo:
                new["v"] = 1
            elif node.idx == hi:
                new["v"] = 2
            return new

        ins = forward(cfg, transfer)
        assert ins[node_at(cfg, 6).idx]["v"] == 2

    def test_edge_kind_sensitive_transfer(self):
        cfg = cfg_of("def f():\n    x = make()\n    return x\n")
        gen = node_at(cfg, 2).idx

        def transfer(node, state, kind):
            new = dict(state)
            if node.idx == gen and kind != EXC:
                new["x"] = 1
            return new

        ins = forward(cfg, transfer)
        assert ins[cfg.exit] == {"x": 1}
        assert ins[cfg.raise_exit] == {}

    def test_loop_fixpoint_terminates_and_converges(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        touch(x)\n"
            "    return 0\n"
        )
        body = node_at(cfg, 3).idx

        def transfer(node, state, kind):
            new = dict(state)
            if node.idx == body:
                new["n"] = min(new.get("n", 0) + 1, 5)
            return new

        ins = forward(cfg, transfer)
        assert ins[body]["n"] == 5  # saturated, not diverging
