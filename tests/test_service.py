"""Sharded index service: equivalence, routing, latency accounting.

The headline property: a ShardedIndex over *any* shard count returns
bit-identical ``SearchResult``s and summed per-shard IOStats equal to a
single unsharded index replaying the same trace — across uniform and
Zipfian key popularity, for both index kinds, and under interleaved
inserts (leaf splits included, thanks to structural filter seeding).
"""

import numpy as np
import pytest

from repro.baselines import BPlusTree
from repro.baselines.bptree import BPlusTreeConfig
from repro.core import BFTree, BFTreeConfig
from repro.harness import run_service
from repro.service import Router, ShardedIndex
from repro.storage import Relation, build_stack
from repro.workloads import (
    OP_INSERT,
    OP_READ,
    OP_SCAN,
    generate_trace,
    point_probes,
    synthetic,
)

FPP = 1e-3
CONFIG = "MEM/SSD"


@pytest.fixture(scope="module")
def relation():
    return synthetic.generate(16384, seed=21)


def _unsharded(relation, column, kind, unique):
    if kind == "bf":
        return BFTree.bulk_load(relation, column, BFTreeConfig(fpp=FPP),
                                unique=unique)
    return BPlusTree.bulk_load(relation, column, unique=unique)


def _replay_unsharded(tree, trace, relation):
    """Trace-order scalar replay on one stack; returns (results, io)."""
    stack = build_stack(CONFIG)
    tree.bind(stack)
    try:
        results = []
        for i in range(len(trace)):
            key = trace.keys[i].item()
            op = int(trace.ops[i])
            if op == OP_READ:
                results.append(tree.search(key))
            elif op == OP_INSERT:
                tid = int(trace.tids[i])
                if isinstance(tree, BFTree):
                    tree.insert(key, relation.page_of(tid))
                else:
                    tree.insert(key, tid)
                results.append(None)
            else:
                hi = key + int(trace.scan_widths[i]) - 1
                results.append(tree.range_scan(key, hi))
    finally:
        tree.unbind()
    return results, stack.stats.snapshot()


class TestShardedEquivalence:
    """Sharded == unsharded, bit for bit, for point operations."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("skew", ["uniform", "zipfian"])
    def test_probe_equivalence_bf(self, relation, n_shards, skew):
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=300,
                               skew=skew, seed=5, hit_rate=0.85)
        tree = _unsharded(relation, "pk", "bf", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                     kind="bf", config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG)
        assert service.uniform_height
        assert report.results == ref_results
        assert report.io == ref_io

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_probe_equivalence_bplus(self, relation, n_shards):
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=200,
                               skew="zipfian", seed=6, hit_rate=0.9)
        tree = _unsharded(relation, "pk", "bplus", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                     kind="bplus", unique=True)
        report = run_service(service, trace, CONFIG)
        assert report.results == ref_results
        assert report.io == ref_io

    def test_probe_equivalence_nonunique_column(self, relation):
        """The duplicate-heavy att1 column: spanning keys must not be cut."""
        trace = generate_trace(relation, "att1", mix="read_only", n_ops=200,
                               skew="zipfian", seed=8, hit_rate=0.8)
        tree = _unsharded(relation, "att1", "bf", unique=False)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "att1", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP))
        report = run_service(service, trace, CONFIG)
        assert report.results == ref_results
        assert report.io == ref_io

    @pytest.mark.parametrize("mix", ["balanced", "insert_heavy"])
    def test_mixed_trace_with_splits(self, relation, mix):
        """Insert-heavy replay — leaf splits happen on both sides and the
        rebuilt filters still match bit for bit (structural seeds)."""
        trace = generate_trace(relation, "pk", mix=mix, n_ops=400,
                               skew="zipfian", seed=13)
        tree = _unsharded(relation, "pk", "bf", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG)
        assert report.results == ref_results
        assert report.io == ref_io

    def test_range_scan_counts(self, relation):
        """Scatter-gather scans: identical matches/pages/leaves."""
        tree = _unsharded(relation, "pk", "bf", unique=True)
        stack = build_stack(CONFIG)
        tree.bind(stack)
        ref = tree.range_scan(3000, 9000)
        tree.unbind()

        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        service.bind(CONFIG)
        result = service.range_scan(3000, 9000)
        service.unbind()
        assert result.matches == ref.matches
        assert result.pages_read == ref.pages_read
        assert result.leaves_visited == ref.leaves_visited


class TestRouting:
    def test_route_matches_directory(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        keys = np.asarray(relation.columns["pk"])[::97]
        assign = service.route(keys)
        for key, s in zip(keys, assign):
            shard = service.shards[s]
            assert shard.lo_key is None or key >= shard.lo_key
            if s + 1 < service.n_shards:
                assert key < service.shards[s + 1].lo_key

    def test_shards_partition_leaves(self, relation):
        tree = _unsharded(relation, "pk", "bf", unique=True)
        n_leaves = tree.n_leaves
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        assert service.n_leaves == n_leaves
        assert all(s.index.n_leaves >= 2 for s in service.shards)

    def test_excess_shards_clamped(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=10_000,
                                     kind="bf", config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        assert 1 <= service.n_shards <= service.n_leaves // 2 + 1

    def test_scan_plan_covers_range(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        legs = service.scan_plan(100, 16000)
        assert legs[0][1] == 100
        assert legs[-1][2] == 16000
        for (s, _, hi_a), (_, lo_b, _) in zip(legs, legs[1:]):
            # Middle legs reach the routing boundary (the next shard's
            # lo_key, which the left shard can never hold), leaving no
            # key-space gap between consecutive legs.
            assert hi_a == lo_b == service.shards[s + 1].lo_key

    def test_scan_plan_covers_keys_inserted_past_hi_key(self):
        """Regression: middle legs used to clamp sub_hi to the shard's
        *build-time* hi_key, so a key inserted between hi_key and the
        next shard's routing boundary was silently dropped from
        cross-shard scans."""
        rel = Relation({"pk": np.arange(2048, dtype=np.int64) * 10},
                       tuple_size=256)
        service = ShardedIndex.build(
            rel, "pk", n_shards=4, kind="bplus",
            config=BPlusTreeConfig(clustered=False), unique=True,
        )
        assert service.n_shards >= 3
        shard = service.shards[0]
        boundary = service.shards[1].lo_key
        inserted = shard.hi_key + 5          # past hi_key, below boundary
        assert inserted < boundary
        assert service.route_key(inserted) == 0
        service.insert(inserted, 0)

        lo, hi = shard.hi_key - 40, boundary + 40   # spans the cut
        legs = service.scan_plan(lo, hi)
        assert len(legs) >= 2
        assert any(sub_lo <= inserted <= sub_hi for _, sub_lo, sub_hi in legs)

        service.bind(CONFIG)
        result = service.range_scan(lo, hi)
        service.unbind()
        values = np.asarray(rel.columns["pk"])
        expected = int(np.count_nonzero((values >= lo) & (values <= hi)))
        assert result.matches == expected + 1   # the inserted key counts


class TestWriteBatching:
    """The Router's write-batched replay is bit-identical to per-op
    dispatch and to the scalar unsharded loop."""

    @pytest.mark.parametrize("mix", ["balanced", "insert_heavy"])
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_write_batched_replay_equals_unsharded(self, relation, mix,
                                                   n_shards):
        trace = generate_trace(relation, "pk", mix=mix, n_ops=400,
                               skew="zipfian", seed=23)
        tree = _unsharded(relation, "pk", "bf", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                     kind="bf", config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG, write_batch=True)
        assert report.write_batch
        assert report.results == ref_results
        assert report.io == ref_io

    def test_write_batched_replay_equals_unsharded_bplus(self, relation):
        trace = generate_trace(relation, "pk", mix="insert_heavy",
                               n_ops=300, skew="zipfian", seed=29)
        tree = _unsharded(relation, "pk", "bplus", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=4,
                                     kind="bplus", unique=True)
        report = run_service(service, trace, CONFIG, write_batch=True)
        assert report.results == ref_results
        assert report.io == ref_io

    def test_write_batch_latencies_match_scalar(self, relation):
        """insert_many's latency sink == per-op clock brackets."""
        trace = generate_trace(relation, "pk", mix="insert_heavy",
                               n_ops=300, skew="zipfian", seed=31)
        service = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        batched = run_service(service, trace, CONFIG, write_batch=True)

        service2 = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                      config=BFTreeConfig(fpp=FPP),
                                      unique=True)
        scalar = run_service(service2, trace, CONFIG, batch=True,
                             write_batch=False)
        assert not scalar.write_batch
        assert np.allclose(batched.stats.op_latencies,
                           scalar.stats.op_latencies, rtol=1e-9)
        assert batched.results == scalar.results
        assert batched.io == scalar.io

    def test_sharded_insert_many_equals_unsharded_loop(self, relation):
        """ShardedIndex.insert_many routes vectorized but performs the
        exact scalar work: merged IOStats and post-insert probes match
        an unsharded tree inserting the same batch in order."""
        rng = np.random.default_rng(41)
        keys = rng.integers(0, 16384, size=500).tolist()
        values = np.asarray(relation.columns["pk"])
        tids = [int(np.searchsorted(values, k)) for k in keys]

        tree = _unsharded(relation, "pk", "bf", unique=True)
        stack = build_stack(CONFIG)
        tree.bind(stack)
        for k, t in zip(keys, tids):
            tree.insert(k, relation.page_of(t))
        ref_insert_io = stack.stats.snapshot()
        probes = point_probes(relation, "pk", 100, seed=6)
        ref_results = [tree.search(k.item()) for k in probes.keys]
        tree.unbind()

        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        service.bind(CONFIG)
        sink: list[float] = []
        service.insert_many(keys, tids, latency_sink=sink)
        insert_io = service.merged_io()
        results = service.search_many(probes.keys)
        service.unbind()
        assert len(sink) == len(keys)
        assert insert_io == ref_insert_io
        assert results == ref_results


class TestLatencyAccounting:
    def test_batch_latencies_match_scalar(self, relation):
        """latency_sink under search_many == per-op clock brackets."""
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=150,
                               skew="zipfian", seed=3, hit_rate=0.9)
        service = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        batched = run_service(service, trace, CONFIG, batch=True)

        service2 = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                      config=BFTreeConfig(fpp=FPP),
                                      unique=True)
        scalar = run_service(service2, trace, CONFIG, batch=False)
        assert np.allclose(batched.stats.op_latencies,
                           scalar.stats.op_latencies, rtol=1e-9)
        assert batched.results == scalar.results

    def test_percentiles_monotone(self, relation):
        trace = generate_trace(relation, "pk", mix="scan_mix", n_ops=300,
                               skew="zipfian", seed=4)
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG)
        summary = report.latency()
        assert 0 < summary.p50 <= summary.p95 <= summary.p99 <= summary.max
        reads = report.latency("read")
        assert reads.count == trace.count(OP_READ)
        scans = report.latency("scan")
        assert scans.count == trace.count(OP_SCAN)

    def test_threaded_replay_deterministic(self, relation):
        trace = generate_trace(relation, "pk", mix="balanced", n_ops=300,
                               skew="zipfian", seed=11)
        reports = []
        for threads in (None, 4):
            service = ShardedIndex.build(relation, "pk", n_shards=4,
                                         kind="bf",
                                         config=BFTreeConfig(fpp=FPP),
                                         unique=True)
            reports.append(
                run_service(service, trace, CONFIG, threads=threads)
            )
        serial, threaded = reports
        assert serial.results == threaded.results
        assert serial.io == threaded.io
        assert np.allclose(serial.stats.op_latencies,
                           threaded.stats.op_latencies)

    def test_makespan_shrinks_with_shards(self, relation):
        """More shards => smaller simulated makespan (higher throughput)."""
        trace = generate_trace(relation, "pk", mix="read_heavy", n_ops=400,
                               skew="uniform", seed=17)
        spans = []
        for n_shards in (1, 4):
            service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                         kind="bf",
                                         config=BFTreeConfig(fpp=FPP),
                                         unique=True)
            spans.append(run_service(service, trace, CONFIG).stats.makespan)
        assert spans[1] < spans[0] / 2  # >= 2x scaling at 4 shards


class TestRouterValidation:
    def test_replay_requires_bind(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=2, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        trace = generate_trace(relation, "pk", n_ops=10, seed=1)
        with pytest.raises(RuntimeError, match="not bound"):
            Router(service).replay(trace)

    def test_bad_kind_rejected(self, relation):
        """Unregistered backends are rejected with the registry listing."""
        with pytest.raises(ValueError, match="registered backends"):
            ShardedIndex.build(relation, "pk", kind="lsm")

    def test_unshardable_backend_degenerates_to_one_shard(self, relation):
        """Backends without sliceable leaves serve as one shard."""
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="hash",
                                     unique=True)
        assert service.n_shards == 1
        service.bind(CONFIG)
        results = service.search_many([5, 17, 10**9])
        service.unbind()
        assert [r.found for r in results] == [True, True, False]

    def test_search_many_unbound_runs_free(self, relation):
        """Unbound service still answers (no I/O charged), like the trees."""
        service = ShardedIndex.build(relation, "pk", n_shards=2, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        probes = point_probes(relation, "pk", 20, seed=2)
        results = service.search_many(probes.keys)
        assert len(results) == 20
        assert all(r.found for r in results)


# ---------------------------------------------------------------------------
# dynamic topology: routing table, live split/merge, rebalancing
# ---------------------------------------------------------------------------

from repro.service import (          # noqa: E402  (grouped with their tests)
    LoadWindow,
    Rebalancer,
    RebalancerConfig,
    RoutingTable,
    queued_response_times,
    run_elastic_service,
)


@pytest.fixture(scope="module")
def wide_relation():
    """32768 sorted int64 pks: a 16-leaf donor, so 4 shards of 4 leaves
    each — every shard is live-splittable (>= 4 leaves)."""
    return Relation({"pk": np.arange(32768, dtype=np.int64)},
                    tuple_size=256, name="pk-wide")


def _wide_service(wide_relation, n_shards=4):
    return ShardedIndex.build(wide_relation, "pk", n_shards=n_shards,
                              kind="bf", fpp=FPP)


class TestRoutingTable:
    def test_route_and_stable_ids(self):
        t = RoutingTable([(None, 10), (100, 20), (200, 30)])
        assert t.epoch == 0
        assert t.shard_ids == [10, 20, 30]
        assert list(t.route([5, 99, 100, 150, 200, 999])) \
            == [0, 0, 1, 1, 2, 2]
        assert list(t.route_ids([5, 100, 999])) == [10, 20, 30]
        assert t.route_key(99) == 0
        assert t.span_of(20) == (100, 200)
        assert t.span_of(30) == (200, None)
        assert t.ordinal_of(30) == 2
        with pytest.raises(KeyError):
            t.ordinal_of(999)

    def test_split_and_merge_bump_epoch(self):
        t = RoutingTable([(None, 0), (100, 1)])
        t.split(1, 150, 2, 3)
        assert t.epoch == 1
        assert t.shard_ids == [0, 2, 3]
        assert t.route_key(120) == 1 and t.route_key(150) == 2
        t.merge(2, 3, 4)
        assert t.epoch == 2
        assert t.shard_ids == [0, 4]
        assert t.span_of(4) == (100, None)

    def test_split_validations(self):
        t = RoutingTable([(None, 0), (100, 1)])
        with pytest.raises(ValueError, match="not above"):
            t.split(1, 100, 2, 3)          # boundary == range lo
        with pytest.raises(ValueError, match="not below"):
            t.split(0, 150, 2, 3)          # boundary past the upper fence
        with pytest.raises(ValueError, match="already routed"):
            t.split(1, 150, 0, 3)          # child id collides with a live one
        with pytest.raises(ValueError, match="must differ"):
            t.split(1, 150, 3, 3)
        assert t.epoch == 0                # failed ops never bump the epoch

    def test_merge_requires_adjacency(self):
        t = RoutingTable([(None, 0), (100, 1), (200, 2)])
        with pytest.raises(ValueError, match="not adjacent"):
            t.merge(0, 2, 9)
        with pytest.raises(ValueError, match="not adjacent"):
            t.merge(1, 0, 9)               # wrong order is not adjacency
        assert t.epoch == 0

    def test_leftmost_entry_must_be_open(self):
        with pytest.raises(ValueError, match="lo_key None"):
            RoutingTable([(5, 0), (100, 1)])
        with pytest.raises(ValueError, match="strictly increasing"):
            RoutingTable([(None, 0), (100, 1), (100, 2)])


class TestDynamicTopology:
    def test_split_mints_fresh_ids_and_bumps_epoch(self, wide_relation):
        svc = _wide_service(wide_relation)
        ids0 = list(svc.table.shard_ids)
        victim = ids0[1]
        lo, hi = svc.table.span_of(victim)
        left, right = svc.split_shard(victim)
        assert svc.topology_epoch == 1
        assert svc.n_shards == 5
        assert victim not in svc.table.shard_ids
        assert left not in ids0 and right not in ids0
        # The children cover exactly the parent's old range.
        llo, lhi = svc.table.span_of(left)
        rlo, rhi = svc.table.span_of(right)
        assert llo == lo and rhi == hi and lhi == rlo

    def test_split_preserves_reads_and_io_continuity(self, wide_relation):
        svc = _wide_service(wide_relation)
        svc.bind(CONFIG)
        try:
            keys = list(range(0, 32768, 97))
            before = svc.search_many(keys)
            io0 = svc.merged_io().snapshot().__dict__
            victim = max(svc.shards,
                         key=lambda s: s.index.n_leaves).shard_id
            svc.split_shard(victim)
            # Splitting charges no I/O and loses none already charged.
            assert svc.merged_io().snapshot().__dict__ == io0
            after = svc.search_many(keys)
            assert after == before
        finally:
            svc.unbind()

    def test_merge_restores_single_range(self, wide_relation):
        svc = _wide_service(wide_relation)
        victim = max(svc.shards, key=lambda s: s.index.n_leaves).shard_id
        lo, hi = svc.table.span_of(victim)
        left, right = svc.split_shard(victim)
        merged = svc.merge_shards(right, left)   # order-insensitive
        assert svc.topology_epoch == 2
        assert svc.n_shards == 4
        assert svc.table.span_of(merged) == (lo, hi)
        results = svc.search_many(list(range(0, 32768, 131)))
        assert all(r.found for r in results)

    def test_split_validations(self, wide_relation):
        svc = _wide_service(wide_relation)
        with pytest.raises(KeyError, match="not in the service"):
            svc.split_shard(999)
        ids = svc.table.shard_ids
        with pytest.raises(ValueError, match="not adjacent"):
            svc.merge_shards(ids[0], ids[2])

    def test_split_needs_four_leaves(self):
        rel = Relation({"pk": np.arange(8192, dtype=np.int64)},
                       tuple_size=256, name="pk-narrow")
        svc = ShardedIndex.build(rel, "pk", n_shards=2, kind="bf", fpp=FPP)
        sid = svc.table.shard_ids[0]
        assert svc.shard_by_id(sid).index.n_leaves == 2
        with pytest.raises(ValueError, match="at least 4"):
            svc.split_shard(sid)

    @pytest.mark.parametrize("mix,skew", [
        ("balanced", "hotspot"),
        ("scan_mix", "zipfian"),
    ])
    def test_mid_trace_topology_changes_preserve_results(
        self, wide_relation, mix, skew
    ):
        """The acceptance property: a trace replayed through a service
        undergoing forced mid-trace splits and merges returns per-op
        results bit-identical to a static-topology replay."""
        trace = generate_trace(wide_relation, "pk", mix=mix, n_ops=1800,
                               skew=skew, seed=77)
        static = _wide_service(wide_relation)
        report = run_service(static, trace, CONFIG)
        want = report.results

        dyn = _wide_service(wide_relation)
        dyn.bind(CONFIG)
        router = Router(dyn)
        got = []
        try:
            cuts = [0, 600, 1200, len(trace)]
            children = None
            for j, (lo, hi) in enumerate(zip(cuts, cuts[1:])):
                got.extend(router.replay(trace.slice(lo, hi))[0])
                if j == 0:
                    victim = max(
                        dyn.shards, key=lambda s: s.index.n_leaves
                    ).shard_id
                    children = dyn.split_shard(victim)
                elif j == 1:
                    dyn.merge_shards(*children)
            dyn_io = dyn.merged_io().snapshot().__dict__
        finally:
            router.close()
            dyn.unbind()
        assert dyn.topology_epoch == 2
        assert len(got) == len(want)
        assert got == want
        if mix == "balanced":
            # No scans cross the transient boundary, so even the summed
            # I/O counters match the static topology exactly.
            assert dyn_io == report.stats.io.snapshot().__dict__


def _load(svc, index, clock):
    """A LoadWindow over the service's live shards with given clocks."""
    return LoadWindow(index=index, epoch=svc.topology_epoch,
                      ops={sid: 1 for sid in svc.table.shard_ids},
                      clock=clock)


def _skewed(svc, index, hot_sid, share=0.9):
    ids = svc.table.shard_ids
    others = [s for s in ids if s != hot_sid]
    clock = {s: (1.0 - share) / len(others) for s in others}
    clock[hot_sid] = share
    return _load(svc, index, clock)


class TestRebalancer:
    def test_sustained_hot_shard_splits_with_hysteresis(self, wide_relation):
        svc = _wide_service(wide_relation)
        reb = Rebalancer(svc, RebalancerConfig(sustain=2, cooldown=1))
        sid = svc.table.shard_ids[0]
        assert reb.observe(_skewed(svc, 0, sid)) == []        # streak 1
        decisions = reb.observe(_skewed(svc, 1, sid))         # streak 2
        assert [d.action for d in decisions] == ["split"]
        assert decisions[0].source == (sid,)
        assert svc.n_shards == 5
        assert svc.topology_epoch == 1
        # Cooldown window: even a hot signal does nothing.
        hot2 = svc.table.shard_ids[-1]
        assert reb.observe(_skewed(svc, 2, hot2)) == []
        # Streaks were reset by the cooldown: sustain counts from zero.
        assert reb.observe(_skewed(svc, 3, hot2)) == []
        follow = reb.observe(_skewed(svc, 4, hot2))
        assert [d.action for d in follow] == ["split"]
        assert len(reb.log) == 2 and reb.log.n_splits == 2

    def test_sustained_cold_pair_merges(self, wide_relation):
        svc = _wide_service(wide_relation)
        ids = svc.table.shard_ids
        cfg = RebalancerConfig(sustain=2, cooldown=0, max_shards=4)
        reb = Rebalancer(svc, cfg)
        clock = {ids[0]: 0.05, ids[1]: 0.05, ids[2]: 0.45, ids[3]: 0.45}
        assert reb.observe(_load(svc, 0, clock)) == []        # streak 1
        decisions = reb.observe(_load(svc, 1, clock))         # streak 2
        assert [d.action for d in decisions] == ["merge"]
        assert decisions[0].source == (ids[0], ids[1])
        assert svc.n_shards == 3
        assert reb.log.n_merges == 1

    def test_min_shards_floor_blocks_merge(self, wide_relation):
        svc = _wide_service(wide_relation, n_shards=2)
        ids = svc.table.shard_ids
        reb = Rebalancer(svc, RebalancerConfig(sustain=1, cooldown=0,
                                               min_shards=2))
        cold = _load(svc, 0, {ids[0]: 0.01, ids[1]: 0.01})
        assert reb.observe(cold) == []
        assert svc.n_shards == 2

    def test_zero_clock_window_is_ignored(self, wide_relation):
        svc = _wide_service(wide_relation)
        reb = Rebalancer(svc, RebalancerConfig(sustain=1, cooldown=0))
        idle = _load(svc, 0, {sid: 0.0 for sid in svc.table.shard_ids})
        assert reb.observe(idle) == []
        assert len(reb.log) == 0

    def test_elastic_run_splits_under_moving_hotspot(self, wide_relation):
        trace = generate_trace(wide_relation, "pk", mix="read_heavy",
                               n_ops=4096, skew="hotspot", seed=5,
                               phases=2, hotspot_width=0.2)
        svc = _wide_service(wide_relation)
        reb = Rebalancer(svc, RebalancerConfig(sustain=1, cooldown=0,
                                               max_shards=12))
        report = run_elastic_service(svc, trace, CONFIG, rebalancer=reb,
                                     window_ops=512)
        assert report.n_ops == len(trace)
        assert len(report.results) == len(trace)
        assert report.final_epoch > 0 and len(report.log) > 0
        assert report.final_shards == svc.n_shards
        assert report.owners.size == len(trace)
        # Every owner is a stable id that existed at dispatch time; the
        # windows account every op exactly once.
        assert sum(w.total_ops for w in report.windows.windows) \
            == len(trace)

    def test_elastic_static_replay_matches_run_service(self, wide_relation):
        """With no rebalancer the windowed loop is just a chunked replay:
        per-op results equal the one-shot service harness."""
        trace = generate_trace(wide_relation, "pk", mix="balanced",
                               n_ops=1500, seed=11)
        a = _wide_service(wide_relation)
        want = run_service(a, trace, CONFIG).results
        b = _wide_service(wide_relation)
        report = run_elastic_service(b, trace, CONFIG, window_ops=256)
        assert report.results == want
        assert report.final_epoch == 0


class TestQueueingModel:
    def test_fifo_backlog_on_one_shard(self):
        owners = np.zeros(3, dtype=np.int64)
        svc = np.array([1.0, 1.0, 1.0])
        resp = queued_response_times(owners, svc, arrival_rate=1e9)
        assert np.allclose(resp, [1.0, 2.0, 3.0])

    def test_independent_shards_do_not_queue_each_other(self):
        owners = np.array([0, 1, 0, 1], dtype=np.int64)
        resp = queued_response_times(owners, np.full(4, 1.0),
                                     arrival_rate=1e9)
        assert np.allclose(resp, [1.0, 1.0, 2.0, 2.0])

    def test_low_rate_means_no_queueing(self):
        owners = np.zeros(4, dtype=np.int64)
        resp = queued_response_times(owners, np.full(4, 0.5),
                                     arrival_rate=1.0)
        assert np.allclose(resp, 0.5)

    def test_load_window_hottest_and_balance(self):
        w = LoadWindow(index=0, epoch=0, ops={1: 5, 2: 5},
                       clock={1: 3.0, 2: 1.0})
        assert w.hottest() == (1, 0.75)
        assert w.load_balance == pytest.approx(1.5)   # max 3 over mean 2
        tie = LoadWindow(index=0, epoch=0, ops={1: 1, 2: 1},
                         clock={2: 1.0, 1: 1.0})
        assert tie.hottest()[0] == 1                  # smallest id wins ties


# ---------------------------------------------------------------------------
# pluggable shard execution: serial / thread / process equivalence
# ---------------------------------------------------------------------------

import os                            # noqa: E402  (grouped with their tests)
import signal                        # noqa: E402

from repro.persist import (          # noqa: E402
    make_durable_service,
    recover_service,
)
from repro.service import ExecutorError  # noqa: E402

EXECUTOR_PARAMS = [
    ("serial", {}),
    ("thread", {"threads": 4}),
    ("process", {"workers": 4}),
]


def _serial_reference(wide_relation, trace):
    return run_service(_wide_service(wide_relation), trace, CONFIG)


class TestExecutorEquivalence:
    """The tentpole contract: every executor — including one forked
    worker process per shard — is bit-identical to serial dispatch in
    results, merged IOStats and per-op simulated latencies."""

    @pytest.mark.parametrize("executor,kwargs", EXECUTOR_PARAMS)
    @pytest.mark.parametrize("mix,skew", [
        ("balanced", "uniform"),
        ("scan_mix", "zipfian"),
    ])
    def test_bit_identical_to_serial(self, wide_relation, executor,
                                     kwargs, mix, skew):
        trace = generate_trace(wide_relation, "pk", mix=mix, n_ops=600,
                               skew=skew, seed=13)
        ref = _serial_reference(wide_relation, trace)
        svc = _wide_service(wide_relation)
        report = run_service(svc, trace, CONFIG, executor=executor,
                             **kwargs)
        assert report.executor == executor
        assert report.results == ref.results
        assert report.io == ref.io
        assert np.array_equal(report.stats.op_latencies,
                              ref.stats.op_latencies)

    def test_read_your_writes_through_workers(self, wide_relation):
        """Inserts acknowledged by a worker must be visible to reads the
        parent routes later — the balanced mix interleaves both, and the
        serial reference proves the worker-owned shard images stay the
        authoritative ones."""
        trace = generate_trace(wide_relation, "pk", mix="insert_heavy",
                               n_ops=600, skew="uniform", seed=29)
        assert (np.asarray(trace.ops) == OP_INSERT).any()
        ref = _serial_reference(wide_relation, trace)
        report = run_service(_wide_service(wide_relation), trace, CONFIG,
                             executor="process", workers=4)
        assert report.results == ref.results
        assert report.io == ref.io

    @pytest.mark.parametrize("executor,kwargs", EXECUTOR_PARAMS)
    def test_mid_trace_split_and_merge(self, wide_relation, executor,
                                       kwargs):
        """Live split + merge mid-trace (epoch bumps force the process
        executor through its teardown/respawn sync points) preserves
        bit-identity with a static serial replay."""
        trace = generate_trace(wide_relation, "pk", mix="balanced",
                               n_ops=1800, skew="hotspot", seed=77)
        ref = _serial_reference(wide_relation, trace)

        dyn = _wide_service(wide_relation)
        dyn.bind(CONFIG)
        router = Router(dyn, executor=executor, **kwargs)
        got = []
        try:
            cuts = [0, 600, 1200, len(trace)]
            children = None
            for j, (lo, hi) in enumerate(zip(cuts, cuts[1:])):
                got.extend(router.replay(trace.slice(lo, hi))[0])
                if j == 0:
                    victim = max(
                        dyn.shards, key=lambda s: s.index.n_leaves
                    ).shard_id
                    children = dyn.split_shard(victim)
                elif j == 1:
                    dyn.merge_shards(*children)
            dyn_io = dyn.merged_io().snapshot()
        finally:
            router.close()
            dyn.unbind()
        assert dyn.topology_epoch == 2
        assert got == ref.results
        assert dyn_io == ref.io

    def test_worker_death_degrades_gracefully(self, wide_relation):
        """SIGKILL-ing a pinned worker between batches: the orphaned
        batch is replayed serially (no acknowledged op lost), replay
        completes bit-identically, and a precise ExecutorError naming
        the shard and trace-op offset lands in ``failures``."""
        trace = generate_trace(wide_relation, "pk", mix="balanced",
                               n_ops=600, skew="uniform", seed=11)
        ref = _serial_reference(wide_relation, trace)

        svc = _wide_service(wide_relation)
        svc.bind(CONFIG)
        router = Router(svc, executor="process", workers=4)
        got = []
        try:
            got.extend(router.replay(trace.slice(0, 200))[0])
            victim = router.executor._handles[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            got.extend(router.replay(trace.slice(200, len(trace)))[0])
            io = svc.merged_io().snapshot()
        finally:
            failures = list(router.executor.failures)
            router.close()
            svc.unbind()
        assert failures, "worker death must be recorded, not swallowed"
        err = failures[0]
        assert isinstance(err, ExecutorError)
        assert isinstance(err.shard_id, int)
        assert isinstance(err.op_offset, int)
        assert str(err.shard_id) in str(err)
        assert got == ref.results
        assert io == ref.io

    def test_durable_service_survives_process_replay(self, wide_relation,
                                                     tmp_path):
        """Durable WAL appends serialize through the owning worker: a
        process-executor replay over durable shards matches serial, and
        recovery sees every acknowledged insert."""
        trace = generate_trace(wide_relation, "pk", mix="balanced",
                               n_ops=400, skew="uniform", seed=5)
        ref_svc = make_durable_service(
            wide_relation, "pk", tmp_path / "serial", n_shards=4,
            kind="bf", fpp=FPP,
        )
        ref = run_service(ref_svc, trace, CONFIG)

        svc = make_durable_service(
            wide_relation, "pk", tmp_path / "process", n_shards=4,
            kind="bf", fpp=FPP,
        )
        report = run_service(svc, trace, CONFIG, executor="process",
                             workers=4)
        assert report.results == ref.results
        assert report.io == ref.io
        assert np.array_equal(report.stats.op_latencies,
                              ref.stats.op_latencies)

        inserted = [int(k) for k, op in zip(trace.keys, trace.ops)
                    if int(op) == OP_INSERT]
        assert inserted
        recovered = recover_service(tmp_path / "process", wide_relation)
        recovered.bind(CONFIG)
        try:
            results = recovered.search_many(inserted)
        finally:
            recovered.unbind()
        assert all(r.found for r in results)

    def test_sanitizer_propagates_into_workers(self, wide_relation,
                                               monkeypatch):
        """REPRO_SANITIZE=1 set in the parent is honored inside forked
        workers (the spawn path re-applies the forced setting), and the
        sanitized replay stays bit-identical."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        trace = generate_trace(wide_relation, "pk", mix="balanced",
                               n_ops=400, skew="uniform", seed=3)
        ref = _serial_reference(wide_relation, trace)
        report = run_service(_wide_service(wide_relation), trace, CONFIG,
                             executor="process", workers=4)
        assert report.results == ref.results
        assert report.io == ref.io
