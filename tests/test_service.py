"""Sharded index service: equivalence, routing, latency accounting.

The headline property: a ShardedIndex over *any* shard count returns
bit-identical ``SearchResult``s and summed per-shard IOStats equal to a
single unsharded index replaying the same trace — across uniform and
Zipfian key popularity, for both index kinds, and under interleaved
inserts (leaf splits included, thanks to structural filter seeding).
"""

import numpy as np
import pytest

from repro.baselines import BPlusTree
from repro.baselines.bptree import BPlusTreeConfig
from repro.core import BFTree, BFTreeConfig
from repro.harness import run_service
from repro.service import Router, ShardedIndex
from repro.storage import Relation, build_stack
from repro.workloads import (
    OP_INSERT,
    OP_READ,
    OP_SCAN,
    generate_trace,
    point_probes,
    synthetic,
)

FPP = 1e-3
CONFIG = "MEM/SSD"


@pytest.fixture(scope="module")
def relation():
    return synthetic.generate(16384, seed=21)


def _unsharded(relation, column, kind, unique):
    if kind == "bf":
        return BFTree.bulk_load(relation, column, BFTreeConfig(fpp=FPP),
                                unique=unique)
    return BPlusTree.bulk_load(relation, column, unique=unique)


def _replay_unsharded(tree, trace, relation):
    """Trace-order scalar replay on one stack; returns (results, io)."""
    stack = build_stack(CONFIG)
    tree.bind(stack)
    try:
        results = []
        for i in range(len(trace)):
            key = trace.keys[i].item()
            op = int(trace.ops[i])
            if op == OP_READ:
                results.append(tree.search(key))
            elif op == OP_INSERT:
                tid = int(trace.tids[i])
                if isinstance(tree, BFTree):
                    tree.insert(key, relation.page_of(tid))
                else:
                    tree.insert(key, tid)
                results.append(None)
            else:
                hi = key + int(trace.scan_widths[i]) - 1
                results.append(tree.range_scan(key, hi))
    finally:
        tree.unbind()
    return results, stack.stats.snapshot()


class TestShardedEquivalence:
    """Sharded == unsharded, bit for bit, for point operations."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("skew", ["uniform", "zipfian"])
    def test_probe_equivalence_bf(self, relation, n_shards, skew):
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=300,
                               skew=skew, seed=5, hit_rate=0.85)
        tree = _unsharded(relation, "pk", "bf", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                     kind="bf", config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG)
        assert service.uniform_height
        assert report.results == ref_results
        assert report.io == ref_io

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_probe_equivalence_bplus(self, relation, n_shards):
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=200,
                               skew="zipfian", seed=6, hit_rate=0.9)
        tree = _unsharded(relation, "pk", "bplus", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                     kind="bplus", unique=True)
        report = run_service(service, trace, CONFIG)
        assert report.results == ref_results
        assert report.io == ref_io

    def test_probe_equivalence_nonunique_column(self, relation):
        """The duplicate-heavy att1 column: spanning keys must not be cut."""
        trace = generate_trace(relation, "att1", mix="read_only", n_ops=200,
                               skew="zipfian", seed=8, hit_rate=0.8)
        tree = _unsharded(relation, "att1", "bf", unique=False)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "att1", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP))
        report = run_service(service, trace, CONFIG)
        assert report.results == ref_results
        assert report.io == ref_io

    @pytest.mark.parametrize("mix", ["balanced", "insert_heavy"])
    def test_mixed_trace_with_splits(self, relation, mix):
        """Insert-heavy replay — leaf splits happen on both sides and the
        rebuilt filters still match bit for bit (structural seeds)."""
        trace = generate_trace(relation, "pk", mix=mix, n_ops=400,
                               skew="zipfian", seed=13)
        tree = _unsharded(relation, "pk", "bf", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG)
        assert report.results == ref_results
        assert report.io == ref_io

    def test_range_scan_counts(self, relation):
        """Scatter-gather scans: identical matches/pages/leaves."""
        tree = _unsharded(relation, "pk", "bf", unique=True)
        stack = build_stack(CONFIG)
        tree.bind(stack)
        ref = tree.range_scan(3000, 9000)
        tree.unbind()

        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        service.bind(CONFIG)
        result = service.range_scan(3000, 9000)
        service.unbind()
        assert result.matches == ref.matches
        assert result.pages_read == ref.pages_read
        assert result.leaves_visited == ref.leaves_visited


class TestRouting:
    def test_route_matches_directory(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        keys = np.asarray(relation.columns["pk"])[::97]
        assign = service.route(keys)
        for key, s in zip(keys, assign):
            shard = service.shards[s]
            assert shard.lo_key is None or key >= shard.lo_key
            if s + 1 < service.n_shards:
                assert key < service.shards[s + 1].lo_key

    def test_shards_partition_leaves(self, relation):
        tree = _unsharded(relation, "pk", "bf", unique=True)
        n_leaves = tree.n_leaves
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        assert service.n_leaves == n_leaves
        assert all(s.index.n_leaves >= 2 for s in service.shards)

    def test_excess_shards_clamped(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=10_000,
                                     kind="bf", config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        assert 1 <= service.n_shards <= service.n_leaves // 2 + 1

    def test_scan_plan_covers_range(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        legs = service.scan_plan(100, 16000)
        assert legs[0][1] == 100
        assert legs[-1][2] == 16000
        for (s, _, hi_a), (_, lo_b, _) in zip(legs, legs[1:]):
            # Middle legs reach the routing boundary (the next shard's
            # lo_key, which the left shard can never hold), leaving no
            # key-space gap between consecutive legs.
            assert hi_a == lo_b == service.shards[s + 1].lo_key

    def test_scan_plan_covers_keys_inserted_past_hi_key(self):
        """Regression: middle legs used to clamp sub_hi to the shard's
        *build-time* hi_key, so a key inserted between hi_key and the
        next shard's routing boundary was silently dropped from
        cross-shard scans."""
        rel = Relation({"pk": np.arange(2048, dtype=np.int64) * 10},
                       tuple_size=256)
        service = ShardedIndex.build(
            rel, "pk", n_shards=4, kind="bplus",
            config=BPlusTreeConfig(clustered=False), unique=True,
        )
        assert service.n_shards >= 3
        shard = service.shards[0]
        boundary = service.shards[1].lo_key
        inserted = shard.hi_key + 5          # past hi_key, below boundary
        assert inserted < boundary
        assert service.route_key(inserted) == 0
        service.insert(inserted, 0)

        lo, hi = shard.hi_key - 40, boundary + 40   # spans the cut
        legs = service.scan_plan(lo, hi)
        assert len(legs) >= 2
        assert any(sub_lo <= inserted <= sub_hi for _, sub_lo, sub_hi in legs)

        service.bind(CONFIG)
        result = service.range_scan(lo, hi)
        service.unbind()
        values = np.asarray(rel.columns["pk"])
        expected = int(np.count_nonzero((values >= lo) & (values <= hi)))
        assert result.matches == expected + 1   # the inserted key counts


class TestWriteBatching:
    """The Router's write-batched replay is bit-identical to per-op
    dispatch and to the scalar unsharded loop."""

    @pytest.mark.parametrize("mix", ["balanced", "insert_heavy"])
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_write_batched_replay_equals_unsharded(self, relation, mix,
                                                   n_shards):
        trace = generate_trace(relation, "pk", mix=mix, n_ops=400,
                               skew="zipfian", seed=23)
        tree = _unsharded(relation, "pk", "bf", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                     kind="bf", config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG, write_batch=True)
        assert report.write_batch
        assert report.results == ref_results
        assert report.io == ref_io

    def test_write_batched_replay_equals_unsharded_bplus(self, relation):
        trace = generate_trace(relation, "pk", mix="insert_heavy",
                               n_ops=300, skew="zipfian", seed=29)
        tree = _unsharded(relation, "pk", "bplus", unique=True)
        ref_results, ref_io = _replay_unsharded(tree, trace, relation)

        service = ShardedIndex.build(relation, "pk", n_shards=4,
                                     kind="bplus", unique=True)
        report = run_service(service, trace, CONFIG, write_batch=True)
        assert report.results == ref_results
        assert report.io == ref_io

    def test_write_batch_latencies_match_scalar(self, relation):
        """insert_many's latency sink == per-op clock brackets."""
        trace = generate_trace(relation, "pk", mix="insert_heavy",
                               n_ops=300, skew="zipfian", seed=31)
        service = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        batched = run_service(service, trace, CONFIG, write_batch=True)

        service2 = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                      config=BFTreeConfig(fpp=FPP),
                                      unique=True)
        scalar = run_service(service2, trace, CONFIG, batch=True,
                             write_batch=False)
        assert not scalar.write_batch
        assert np.allclose(batched.stats.op_latencies,
                           scalar.stats.op_latencies, rtol=1e-9)
        assert batched.results == scalar.results
        assert batched.io == scalar.io

    def test_sharded_insert_many_equals_unsharded_loop(self, relation):
        """ShardedIndex.insert_many routes vectorized but performs the
        exact scalar work: merged IOStats and post-insert probes match
        an unsharded tree inserting the same batch in order."""
        rng = np.random.default_rng(41)
        keys = rng.integers(0, 16384, size=500).tolist()
        values = np.asarray(relation.columns["pk"])
        tids = [int(np.searchsorted(values, k)) for k in keys]

        tree = _unsharded(relation, "pk", "bf", unique=True)
        stack = build_stack(CONFIG)
        tree.bind(stack)
        for k, t in zip(keys, tids):
            tree.insert(k, relation.page_of(t))
        ref_insert_io = stack.stats.snapshot()
        probes = point_probes(relation, "pk", 100, seed=6)
        ref_results = [tree.search(k.item()) for k in probes.keys]
        tree.unbind()

        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        service.bind(CONFIG)
        sink: list[float] = []
        service.insert_many(keys, tids, latency_sink=sink)
        insert_io = service.merged_io()
        results = service.search_many(probes.keys)
        service.unbind()
        assert len(sink) == len(keys)
        assert insert_io == ref_insert_io
        assert results == ref_results


class TestLatencyAccounting:
    def test_batch_latencies_match_scalar(self, relation):
        """latency_sink under search_many == per-op clock brackets."""
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=150,
                               skew="zipfian", seed=3, hit_rate=0.9)
        service = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        batched = run_service(service, trace, CONFIG, batch=True)

        service2 = ShardedIndex.build(relation, "pk", n_shards=3, kind="bf",
                                      config=BFTreeConfig(fpp=FPP),
                                      unique=True)
        scalar = run_service(service2, trace, CONFIG, batch=False)
        assert np.allclose(batched.stats.op_latencies,
                           scalar.stats.op_latencies, rtol=1e-9)
        assert batched.results == scalar.results

    def test_percentiles_monotone(self, relation):
        trace = generate_trace(relation, "pk", mix="scan_mix", n_ops=300,
                               skew="zipfian", seed=4)
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG)
        summary = report.latency()
        assert 0 < summary.p50 <= summary.p95 <= summary.p99 <= summary.max
        reads = report.latency("read")
        assert reads.count == trace.count(OP_READ)
        scans = report.latency("scan")
        assert scans.count == trace.count(OP_SCAN)

    def test_threaded_replay_deterministic(self, relation):
        trace = generate_trace(relation, "pk", mix="balanced", n_ops=300,
                               skew="zipfian", seed=11)
        reports = []
        for threads in (None, 4):
            service = ShardedIndex.build(relation, "pk", n_shards=4,
                                         kind="bf",
                                         config=BFTreeConfig(fpp=FPP),
                                         unique=True)
            reports.append(
                run_service(service, trace, CONFIG, threads=threads)
            )
        serial, threaded = reports
        assert serial.results == threaded.results
        assert serial.io == threaded.io
        assert np.allclose(serial.stats.op_latencies,
                           threaded.stats.op_latencies)

    def test_makespan_shrinks_with_shards(self, relation):
        """More shards => smaller simulated makespan (higher throughput)."""
        trace = generate_trace(relation, "pk", mix="read_heavy", n_ops=400,
                               skew="uniform", seed=17)
        spans = []
        for n_shards in (1, 4):
            service = ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                         kind="bf",
                                         config=BFTreeConfig(fpp=FPP),
                                         unique=True)
            spans.append(run_service(service, trace, CONFIG).stats.makespan)
        assert spans[1] < spans[0] / 2  # >= 2x scaling at 4 shards


class TestRouterValidation:
    def test_replay_requires_bind(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=2, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        trace = generate_trace(relation, "pk", n_ops=10, seed=1)
        with pytest.raises(RuntimeError, match="not bound"):
            Router(service).replay(trace)

    def test_bad_kind_rejected(self, relation):
        """Unregistered backends are rejected with the registry listing."""
        with pytest.raises(ValueError, match="registered backends"):
            ShardedIndex.build(relation, "pk", kind="lsm")

    def test_unshardable_backend_degenerates_to_one_shard(self, relation):
        """Backends without sliceable leaves serve as one shard."""
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="hash",
                                     unique=True)
        assert service.n_shards == 1
        service.bind(CONFIG)
        results = service.search_many([5, 17, 10**9])
        service.unbind()
        assert [r.found for r in results] == [True, True, False]

    def test_search_many_unbound_runs_free(self, relation):
        """Unbound service still answers (no I/O charged), like the trees."""
        service = ShardedIndex.build(relation, "pk", n_shards=2, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        probes = point_probes(relation, "pk", 20, seed=2)
        results = service.search_many(probes.keys)
        assert len(results) == 20
        assert all(r.found for r in results)
