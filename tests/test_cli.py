"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_sizes_command(capsys):
    assert main(["sizes", "--tuples", "4096", "--fpp", "0.1", "1e-4"]) == 0
    out = capsys.readouterr().out
    assert "B+-Tree" in out and "BF-Tree" in out
    assert "capacity gain" in out


def test_probe_command_single_config(capsys):
    assert main([
        "probe", "--tuples", "4096", "--index", "bf", "--fpp", "1e-3",
        "--config", "MEM/SSD", "--probes", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "MEM/SSD" in out
    assert "latency" in out


def test_probe_all_indexes(capsys):
    for index in ("bplus", "hash", "fd", "silt", "binsearch"):
        assert main([
            "probe", "--tuples", "4096", "--index", index,
            "--config", "MEM/SSD", "--probes", "10",
        ]) == 0
        assert "latency" in capsys.readouterr().out


def test_probe_warm_flag(capsys):
    assert main([
        "probe", "--tuples", "4096", "--config", "SSD/SSD",
        "--probes", "10", "--warm",
    ]) == 0
    assert "warm=True" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main([
        "sweep", "--tuples", "4096", "--fpp", "0.1", "1e-4",
        "--probes", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "break-even" in out
    assert "MEM/SSD" in out


def test_model_command(capsys):
    assert main(["model", "--fpp", "1e-3"]) == 0
    out = capsys.readouterr().out
    assert "BFcost" in out
    assert "Figure 4" in out


def test_workloads_command(capsys):
    assert main(["workloads", "--tuples", "4096"]) == 0
    out = capsys.readouterr().out
    for name in ("synthetic", "tpch", "shd"):
        assert name in out


def test_tpch_workload_selection(capsys):
    assert main([
        "sizes", "--workload", "tpch", "--tuples", "4096", "--fpp", "1e-3",
    ]) == 0
    assert "shipdate" in capsys.readouterr().out


def test_unknown_column_rejected():
    with pytest.raises(SystemExit):
        main(["sizes", "--tuples", "1024", "--column", "nonexistent"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
