"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_sizes_command(capsys):
    assert main(["sizes", "--tuples", "4096", "--fpp", "0.1", "1e-4"]) == 0
    out = capsys.readouterr().out
    assert "B+-Tree" in out and "BF-Tree" in out
    assert "capacity gain" in out


def test_probe_command_single_config(capsys):
    assert main([
        "probe", "--tuples", "4096", "--index", "bf", "--fpp", "1e-3",
        "--config", "MEM/SSD", "--probes", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "MEM/SSD" in out
    assert "latency" in out


def test_probe_all_indexes(capsys):
    for index in ("bplus", "hash", "fd", "silt", "binsearch"):
        assert main([
            "probe", "--tuples", "4096", "--index", index,
            "--config", "MEM/SSD", "--probes", "10",
        ]) == 0
        assert "latency" in capsys.readouterr().out


def test_probe_warm_flag(capsys):
    assert main([
        "probe", "--tuples", "4096", "--config", "SSD/SSD",
        "--probes", "10", "--warm",
    ]) == 0
    assert "warm=True" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main([
        "sweep", "--tuples", "4096", "--fpp", "0.1", "1e-4",
        "--probes", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "break-even" in out
    assert "MEM/SSD" in out


def test_model_command(capsys):
    assert main(["model", "--fpp", "1e-3"]) == 0
    out = capsys.readouterr().out
    assert "BFcost" in out
    assert "Figure 4" in out


def test_workloads_command(capsys):
    assert main(["workloads", "--tuples", "4096"]) == 0
    out = capsys.readouterr().out
    for name in ("synthetic", "tpch", "shd"):
        assert name in out


def test_tpch_workload_selection(capsys):
    assert main([
        "sizes", "--workload", "tpch", "--tuples", "4096", "--fpp", "1e-3",
    ]) == 0
    assert "shipdate" in capsys.readouterr().out


def test_unknown_column_rejected():
    with pytest.raises(SystemExit):
        main(["sizes", "--tuples", "1024", "--column", "nonexistent"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_serve_bench_command(capsys):
    assert main([
        "serve-bench", "--tuples", "8192", "--ops", "150",
        "--shards", "1", "2", "--mix", "read_heavy", "--seed", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "serve-bench" in out
    assert "p99" in out and "ops/sim-sec" in out


def test_serve_bench_json_and_threads(capsys):
    import json

    assert main([
        "serve-bench", "--tuples", "8192", "--ops", "100",
        "--shards", "2", "--mix", "scan_mix", "--threads", "2", "--json",
    ]) == 0
    out = capsys.readouterr().out
    payload = out[out.index("["):]
    reports = json.loads(payload)
    assert reports[0]["latency"]["read"]["p99"] > 0
    assert reports[0]["throughput_ops_per_sim_sec"] > 0


def test_probe_batch_all_backends(capsys):
    """--batch works on every registered backend (protocol fallback
    where no vectorized engine exists) instead of silently degrading."""
    from repro.api import registered_backends

    for index in registered_backends():
        assert main([
            "probe", "--tuples", "4096", "--index", index, "--batch",
            "--config", "MEM/SSD", "--probes", "10",
        ]) == 0
        assert "batch=True" in capsys.readouterr().out


def test_probe_out_writes_json(tmp_path, capsys):
    out = tmp_path / "probe.json"
    assert main([
        "probe", "--tuples", "4096", "--index", "fd", "--batch",
        "--config", "MEM/SSD", "--probes", "10", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    import json

    payload = json.loads(out.read_text())
    assert payload[0]["index"] == "fd"
    assert payload[0]["batch"] is True
    assert payload[0]["avg_latency_us"] > 0


def test_serve_bench_nontree_backend(capsys, tmp_path):
    """serve-bench accepts any registered backend; unshardable ones run
    as a single-shard degenerate service."""
    out = tmp_path / "serve.json"
    assert main([
        "serve-bench", "--tuples", "4096", "--ops", "100",
        "--index", "hash", "--shards", "4", "--mix", "read_heavy",
        "--seed", "3", "--out", str(out),
    ]) == 0
    assert "hash" in capsys.readouterr().out
    import json

    reports = json.loads(out.read_text())
    assert reports[0]["n_shards"] == 1  # degenerate single shard
    assert reports[0]["throughput_ops_per_sim_sec"] > 0


def test_serve_bench_help_lists_all_backends(capsys):
    from repro.api import registered_backends

    with pytest.raises(SystemExit):
        main(["serve-bench", "--help"])
    out = capsys.readouterr().out
    for name in registered_backends():
        assert name in out


def test_unknown_backend_lists_registry_names(capsys):
    from repro.api import registered_backends

    # argparse rejects unknown --index values with the registry choices.
    with pytest.raises(SystemExit):
        main(["probe", "--tuples", "1024", "--index", "lsm"])
    err = capsys.readouterr().err
    for name in registered_backends():
        assert name in err


def test_seed_flag_reproducible(capsys):
    """One --seed knob makes whole runs reproducible; changing it changes
    the sampled probes (and thus, in general, the measured output)."""
    runs = []
    for seed in ("11", "11", "12"):
        assert main([
            "probe", "--tuples", "4096", "--config", "MEM/SSD",
            "--probes", "30", "--fpp", "1e-3", "--hit-rate", "0.5",
            "--seed", seed,
        ]) == 0
        runs.append(capsys.readouterr().out)
    assert runs[0] == runs[1]
    assert runs[0] != runs[2]


def test_serve_bench_rebalance(capsys, tmp_path):
    out = tmp_path / "elastic.json"
    assert main([
        "serve-bench", "--rebalance", "--tuples", "32768", "--ops", "1024",
        "--shards", "4", "--mix", "read_heavy", "--skew", "hotspot",
        "--window-ops", "128", "--seed", "5", "--out", str(out),
    ]) == 0
    text = capsys.readouterr().out
    assert "serve-bench --rebalance" in text
    assert "splits/merges" in text and "load bal" in text
    import json

    reports = json.loads(out.read_text())
    assert reports[0]["initial_shards"] == 4
    assert reports[0]["final_epoch"] >= 0
    assert reports[0]["load"]["n_windows"] == 8


def test_serve_bench_rebalance_rejects_durable(capsys):
    with pytest.raises(SystemExit, match="durable"):
        main([
            "serve-bench", "--rebalance", "--durable",
            "--tuples", "8192", "--ops", "100", "--shards", "4",
        ])
