"""Integration tests: all access methods agree, and the paper's headline
qualitative claims hold end-to-end on the simulated storage stack."""

import numpy as np
import pytest

from repro.baselines import (
    BPlusTree,
    FDTree,
    HashIndex,
    SiltStore,
    SortedFileSearch,
)
from repro.core import BFTree, BFTreeConfig
from repro.harness import run_probes
from repro.storage import FIVE_CONFIGS, build_stack
from repro.workloads import point_probes


@pytest.fixture(scope="module")
def all_indexes(dup_relation):
    """Every access method over the same non-unique column."""
    return {
        "bf": BFTree.bulk_load(dup_relation, "att1", BFTreeConfig(fpp=1e-4)),
        "bp": BPlusTree.bulk_load(dup_relation, "att1"),
        "hash": HashIndex.build(dup_relation, "att1"),
        "fd": FDTree.bulk_load(dup_relation, "att1"),
        "sorted": SortedFileSearch(dup_relation, "att1"),
    }


class TestCrossIndexAgreement:
    def test_match_counts_agree(self, dup_relation, all_indexes):
        att1 = np.asarray(dup_relation.columns["att1"])
        rng = np.random.default_rng(0)
        for key in rng.choice(np.unique(att1), size=25, replace=False):
            key = int(key)
            expected = int(np.count_nonzero(att1 == key))
            for name, index in all_indexes.items():
                assert index.search(key).matches == expected, (name, key)

    def test_misses_agree(self, all_indexes, dup_relation):
        att1 = np.asarray(dup_relation.columns["att1"])
        absent = int(att1.max()) + 10
        for name, index in all_indexes.items():
            assert not index.search(absent).found, name

    def test_silt_agrees_on_unique_column(self, pk_relation):
        silt = SiltStore.build(pk_relation, "pk")
        bp = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        for key in (0, 1234, 8191):
            assert silt.search(key).found == bp.search(key).found


class TestPaperHeadlines:
    """The claims every reviewer would check, on small-scale data."""

    def test_table2_size_band(self, pk_relation):
        """BF-Tree is 2.2x-48x smaller than the B+-Tree across the fpp
        sweep (paper abstract / Table 2)."""
        bp = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        loose = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=0.2),
                                 unique=True)
        tight = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-15),
                                 unique=True)
        assert bp.size_pages / loose.size_pages > 10
        assert 1.5 < bp.size_pages / tight.size_pages < 10

    def test_bf_matches_bp_low_fpp_data_hdd(self, pk_relation):
        """Index in memory, data on HDD: BF-Tree latency within 5% of the
        B+-Tree at low fpp (paper §6.2)."""
        probes = point_probes(pk_relation, "pk", 40, hit_rate=1.0)
        bf = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-6),
                              unique=True)
        bp = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        bf_lat = run_probes(bf, probes, "MEM/HDD").avg_latency
        bp_lat = run_probes(bp, probes, "MEM/HDD").avg_latency
        assert bf_lat == pytest.approx(bp_lat, rel=0.05)

    def test_false_reads_decrease_with_fpp(self, pk_relation):
        """Table 3's trend: false reads/search fall steeply with fpp."""
        probes = point_probes(pk_relation, "pk", 60, hit_rate=1.0)
        rates = []
        for fpp in (0.2, 0.01, 1e-6):
            tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=fpp),
                                    unique=True)
            rates.append(
                run_probes(tree, probes, "MEM/SSD").false_reads_per_search
            )
        assert rates[0] > rates[1] > rates[2]
        assert rates[2] < 0.05

    def test_miss_probes_cheap_for_bf(self, tpch_relation):
        """Figure 11 at 0% hit rate: with the index on a device, the
        shorter BF-Tree wins on misses (at an fpp low enough that in-range
        misses rarely trigger false-positive page reads)."""
        probes = point_probes(tpch_relation, "shipdate", 40, hit_rate=0.0)
        bf = BFTree.bulk_load(tpch_relation, "shipdate", BFTreeConfig(fpp=1e-6))
        bp = BPlusTree.bulk_load(tpch_relation, "shipdate")
        assert bf.height <= bp.height
        bf_lat = run_probes(bf, probes, "SSD/SSD").avg_latency
        bp_lat = run_probes(bp, probes, "SSD/SSD").avg_latency
        assert bf_lat <= bp_lat * 1.02

    def test_warm_cache_helps_bp_more(self, pk_relation):
        """§6.2: the taller B+-Tree benefits more from warm caches."""
        probes = point_probes(pk_relation, "pk", 30, hit_rate=1.0)
        bf = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-4),
                              unique=True)
        bp = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        bp_gain = (
            run_probes(bp, probes, "SSD/SSD").avg_latency
            / run_probes(bp, probes, "SSD/SSD", warm=True).avg_latency
        )
        bf_gain = (
            run_probes(bf, probes, "SSD/SSD").avg_latency
            / run_probes(bf, probes, "SSD/SSD", warm=True).avg_latency
        )
        assert bp_gain >= bf_gain

    def test_range_scan_overhead_bounded(self, pk_relation):
        """Figure 13: at low fpp the BF-Tree range scan reads barely more
        pages than the exact B+-Tree scan."""
        bf = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-8),
                              unique=True)
        bp = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        # The range must span several BF-leaf partitions for the boundary
        # overhead to amortize (the paper's relation is 32x larger, so its
        # 5-20% scans already do; here we scan half the table).
        lo, hi = 1000, 1000 + 4095
        ratio = bf.range_scan(lo, hi).pages_read / bp.range_scan(lo, hi).pages_read
        assert ratio < 1.35

    def test_all_configs_run(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=0.01),
                                unique=True)
        probes = point_probes(pk_relation, "pk", 10, hit_rate=1.0)
        latencies = {
            cfg.name: run_probes(tree, probes, cfg).avg_latency
            for cfg in FIVE_CONFIGS
        }
        # Slower storage, slower probes.
        assert latencies["MEM/SSD"] < latencies["MEM/HDD"]
        assert latencies["MEM/HDD"] < latencies["HDD/HDD"]

    def test_intersection_fpp_is_product(self, dup_relation):
        """§8: intersecting two indexes multiplies their fpps — probing
        both never returns more pages than either alone."""
        t1 = BFTree.bulk_load(dup_relation, "att1", BFTreeConfig(fpp=0.05))
        t2 = BFTree.bulk_load(dup_relation, "pk", BFTreeConfig(fpp=0.05),
                              unique=True)
        stack = build_stack("MEM/SSD")
        t1.bind(stack)
        t2.bind(stack)
        pk = 321
        att1 = int(np.asarray(dup_relation.columns["att1"])[pk])
        both = t1.intersect_probe(t2, att1, pk)
        t1_only = t1.search(att1)
        assert both.pages_read <= t1_only.pages_read
        assert both.matches == 1
