"""Unit tests for the storage substrate: clock, devices, stats, configs."""

import pytest

from repro.storage import (
    FIVE_CONFIGS,
    HDD_PROFILE,
    MEMORY_PROFILE,
    SSD_PROFILE,
    Device,
    IOStats,
    Medium,
    SimulatedClock,
    build_stack,
)
from repro.storage.clock import ClockSpan


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(3)
        clock.reset()
        assert clock.now() == 0.0

    def test_measure_span(self):
        clock = SimulatedClock()
        span = clock.measure()
        with span:
            clock.advance(0.25)
        assert span.elapsed == pytest.approx(0.25)

    def test_span_type(self):
        assert isinstance(SimulatedClock().measure(), ClockSpan)


class TestProfiles:
    def test_hdd_random_much_slower_than_seq(self):
        assert HDD_PROFILE.random_read > 50 * HDD_PROFILE.seq_read

    def test_ssd_nearly_symmetric(self):
        """The paper's premise: SSD random ~ sequential reads."""
        assert SSD_PROFILE.random_read < 5 * SSD_PROFILE.seq_read

    def test_ordering_memory_ssd_hdd(self):
        assert (
            MEMORY_PROFILE.random_read
            < SSD_PROFILE.random_read
            < HDD_PROFILE.random_read
        )

    def test_read_latency_selector(self):
        assert HDD_PROFILE.read_latency(True) == HDD_PROFILE.seq_read
        assert HDD_PROFILE.read_latency(False) == HDD_PROFILE.random_read


class TestDevice:
    def _device(self, profile=SSD_PROFILE, role="data"):
        clock = SimulatedClock()
        stats = IOStats()
        return Device(profile, clock, stats, role=role), clock, stats

    def test_random_read_charges_clock(self):
        device, clock, stats = self._device()
        device.read_page(10)
        assert clock.now() == pytest.approx(SSD_PROFILE.random_read)
        assert stats.data_random_reads == 1

    def test_adjacent_read_is_sequential(self):
        device, clock, stats = self._device()
        device.read_page(10)
        device.read_page(11)
        assert stats.data_seq_reads == 1
        assert clock.now() == pytest.approx(
            SSD_PROFILE.random_read + SSD_PROFILE.seq_read
        )

    def test_non_adjacent_read_is_random(self):
        device, _, stats = self._device()
        device.read_page(10)
        device.read_page(20)
        assert stats.data_random_reads == 2

    def test_explicit_sequential_override(self):
        device, _, stats = self._device()
        device.read_page(100, sequential=True)
        assert stats.data_seq_reads == 1

    def test_read_run(self):
        device, clock, stats = self._device()
        device.read_run(5, 4)
        assert stats.data_random_reads == 1
        assert stats.data_seq_reads == 3

    def test_read_run_empty(self):
        device, clock, _ = self._device()
        device.read_run(5, 0)
        assert clock.now() == 0.0

    def test_index_role_counters(self):
        device, _, stats = self._device(role="index")
        device.read_page(0)
        assert stats.index_random_reads == 1
        assert stats.data_random_reads == 0

    def test_invalid_role(self):
        with pytest.raises(ValueError):
            Device(SSD_PROFILE, SimulatedClock(), IOStats(), role="cache")

    def test_write_counted(self):
        device, clock, stats = self._device()
        device.write_page(3)
        assert stats.data_writes == 1
        assert clock.now() > 0

    def test_reset_head_forces_random(self):
        device, _, stats = self._device()
        device.read_page(10)
        device.reset_head()
        device.read_page(11)
        assert stats.data_random_reads == 2


class TestIOStats:
    def test_reset(self):
        stats = IOStats(data_random_reads=5, false_reads=2)
        stats.reset()
        assert stats.data_random_reads == 0 and stats.false_reads == 0

    def test_snapshot_diff(self):
        stats = IOStats()
        stats.data_random_reads = 3
        snap = stats.snapshot()
        stats.data_random_reads = 10
        assert stats.diff(snap).data_random_reads == 7
        assert snap.data_random_reads == 3

    def test_totals(self):
        stats = IOStats(
            index_random_reads=1, index_seq_reads=2,
            data_random_reads=3, data_seq_reads=4,
        )
        assert stats.total_reads == 10
        assert stats.index_reads == 3
        assert stats.data_reads == 7

    def test_add(self):
        a = IOStats(false_reads=1)
        b = IOStats(false_reads=2, data_seq_reads=5)
        c = a + b
        assert c.false_reads == 3 and c.data_seq_reads == 5


class TestConfigs:
    def test_five_configs(self):
        names = [c.name for c in FIVE_CONFIGS]
        assert names == ["MEM/SSD", "SSD/SSD", "MEM/HDD", "SSD/HDD", "HDD/HDD"]

    def test_build_stack_by_name(self):
        stack = build_stack("SSD/HDD")
        assert stack.index_device.medium is Medium.SSD
        assert stack.data_device.medium is Medium.HDD

    def test_build_stack_unknown(self):
        with pytest.raises(ValueError):
            build_stack("TAPE/TAPE")

    def test_devices_share_clock_and_stats(self):
        stack = build_stack("SSD/SSD")
        stack.index_device.read_page(0)
        stack.data_device.read_page(0)
        assert stack.stats.index_random_reads == 1
        assert stack.stats.data_random_reads == 1
        assert stack.clock.now() == pytest.approx(2 * SSD_PROFILE.random_read)

    def test_reset(self):
        stack = build_stack("MEM/SSD")
        stack.data_device.read_page(0)
        stack.reset()
        assert stack.clock.now() == 0.0
        assert stack.stats.total_reads == 0

    def test_index_in_memory_flag(self):
        assert build_stack("MEM/HDD").config.index_in_memory
        assert not build_stack("SSD/SSD").config.index_in_memory
