"""Mixed-workload traces: determinism, mixes, skew, and seed plumbing."""

import numpy as np
import pytest

from repro.workloads import (
    MIXES,
    OP_INSERT,
    OP_READ,
    OP_SCAN,
    OperationMix,
    ZipfianGenerator,
    derive_seed,
    generate_trace,
    synthetic,
)
from repro.storage import Relation
from repro.workloads.seeds import DEFAULT_SEEDS


@pytest.fixture(scope="module")
def relation():
    return synthetic.generate(8192, seed=31)


class TestTraceDeterminism:
    def test_same_seed_same_trace(self, relation):
        a = generate_trace(relation, "pk", mix="balanced", n_ops=400, seed=9)
        b = generate_trace(relation, "pk", mix="balanced", n_ops=400, seed=9)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.tids, b.tids)
        assert np.array_equal(a.scan_widths, b.scan_widths)

    def test_different_seed_different_trace(self, relation):
        a = generate_trace(relation, "pk", n_ops=400, seed=9)
        b = generate_trace(relation, "pk", n_ops=400, seed=10)
        assert not np.array_equal(a.keys, b.keys)


class TestMixes:
    def test_known_mixes_sum_to_one(self):
        for mix in MIXES.values():
            assert pytest.approx(1.0) == mix.read + mix.insert + mix.scan

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            OperationMix("broken", read=0.5, insert=0.1)

    def test_unknown_mix_name_rejected(self, relation):
        with pytest.raises(ValueError, match="unknown mix"):
            generate_trace(relation, "pk", mix="nope")

    def test_proportions_approximate(self, relation):
        trace = generate_trace(relation, "pk", mix="read_heavy", n_ops=4000,
                               seed=3)
        counts = trace.op_counts
        assert counts["read"] / len(trace) == pytest.approx(0.95, abs=0.03)
        assert counts["insert"] / len(trace) == pytest.approx(0.05, abs=0.03)
        assert counts["scan"] == 0

    def test_scan_mix_has_all_ops(self, relation):
        trace = generate_trace(relation, "pk", mix="scan_mix", n_ops=2000,
                               seed=3)
        assert trace.count(OP_READ) > 0
        assert trace.count(OP_INSERT) > 0
        assert trace.count(OP_SCAN) > 0
        widths = trace.scan_widths[trace.ops == OP_SCAN]
        assert widths.min() >= 1 and widths.max() <= 100


class TestZipfian:
    def test_ranks_in_range(self):
        gen = ZipfianGenerator(1000, theta=0.99)
        rng = np.random.default_rng(0)
        ranks = gen.ranks(rng.random(10_000))
        assert ranks.min() >= 0 and ranks.max() < 1000

    def test_skew_concentrates_mass(self):
        """Top 1% of ranks draw far more than 1% of accesses."""
        gen = ZipfianGenerator(10_000, theta=0.99)
        rng = np.random.default_rng(1)
        ranks = gen.ranks(rng.random(50_000))
        top_share = np.mean(ranks < 100)
        assert top_share > 0.3

    def test_zipfian_trace_hotter_than_uniform(self, relation):
        zipf = generate_trace(relation, "pk", mix="read_only", n_ops=5000,
                              skew="zipfian", seed=4)
        unif = generate_trace(relation, "pk", mix="read_only", n_ops=5000,
                              skew="uniform", seed=4)
        # Hottest single key's share of traffic.
        _, zc = np.unique(zipf.keys, return_counts=True)
        _, uc = np.unique(unif.keys, return_counts=True)
        assert zc.max() > 10 * uc.max()

    def test_theta_bounds(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=0.0)


class TestTraceContents:
    def test_insert_tids_hold_key(self, relation):
        trace = generate_trace(relation, "pk", mix="insert_heavy",
                               n_ops=500, seed=5)
        values = np.asarray(relation.columns["pk"])
        idx = np.nonzero(trace.ops == OP_INSERT)[0]
        assert len(idx) > 0
        assert np.array_equal(values[trace.tids[idx]], trace.keys[idx])

    def test_hit_rate_marks_misses(self, relation):
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=1000,
                               seed=6, hit_rate=0.7)
        values = set(np.asarray(relation.columns["pk"]).tolist())
        reads = trace.ops == OP_READ
        hits = np.asarray(
            [int(k) in values for k in trace.keys[reads]]
        )
        assert hits.mean() == pytest.approx(0.7, abs=0.02)
        assert np.array_equal(hits, trace.expected_hits[reads])

    def test_miss_keys_do_not_wrap_narrow_dtype(self):
        """Regression: miss keys were computed as ``hi + 1 + draw`` then
        cast to the key dtype, so an int32 column near the dtype max
        wrapped them around to in-domain values — guaranteed "misses"
        that actually hit while expected_hits still said miss."""
        top = np.iinfo(np.int32).max - 10
        values = (np.arange(4096, dtype=np.int64)
                  + top - 5000).astype(np.int32)
        rel = Relation({"k": values}, tuple_size=256)
        trace = generate_trace(rel, "k", mix="read_only", n_ops=500,
                               seed=6, hit_rate=0.5)
        misses = ~trace.expected_hits
        assert misses.any()
        # Every marked miss is strictly beyond the key domain — no
        # wraparound back into it.
        domain_max = int(values.max())
        assert np.all(trace.keys[misses].astype(np.int64) > domain_max)
        assert trace.keys.dtype == np.int32

    def test_miss_keys_do_not_wrap_int64_near_max(self):
        """The widest dtype overflows too: near the int64 max,
        ``hi + 1 + draw`` used to wrap to below-domain values (and with
        hi at the max, to raise numpy's error instead of ours)."""
        top = np.iinfo(np.int64).max - 11
        values = np.arange(4096, dtype=np.int64) + top - 5000
        rel = Relation({"k": values}, tuple_size=256)
        trace = generate_trace(rel, "k", mix="read_only", n_ops=500,
                               seed=6, hit_rate=0.5)
        misses = ~trace.expected_hits
        assert misses.any()
        assert np.all(trace.keys[misses] > int(values.max()))

    def test_miss_keys_unrepresentable_raises(self):
        """A column that reaches its dtype max leaves no room for an
        out-of-domain miss key; asking for misses must fail loudly
        instead of silently aliasing hits."""
        values = (np.iinfo(np.int32).max
                  - np.arange(2048, dtype=np.int64)[::-1]).astype(np.int32)
        rel = Relation({"k": values}, tuple_size=256)
        with pytest.raises(ValueError, match="dtype max"):
            generate_trace(rel, "k", mix="read_only", n_ops=200,
                           seed=6, hit_rate=0.5)

    def test_int64_misses_still_beyond_domain(self, relation):
        """The overflow fix leaves wide-dtype miss keys where they were:
        strictly beyond the domain (the int64 clamp is a no-op)."""
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=300,
                               seed=6, hit_rate=0.8)
        misses = ~trace.expected_hits
        hi = int(np.asarray(relation.columns["pk"]).max())
        assert misses.any()
        assert np.all(trace.keys[misses] > hi)


class TestSeedPlumbing:
    def test_defaults_without_master(self):
        assert derive_seed(None, "relation") == DEFAULT_SEEDS["relation"]
        assert derive_seed(None, "probes") == 1234
        assert derive_seed(None, "ranges") == 77

    def test_streams_are_separated(self):
        seeds = {derive_seed(123, stream) for stream in DEFAULT_SEEDS}
        assert len(seeds) == len(DEFAULT_SEEDS)

    def test_deterministic(self):
        assert derive_seed(7, "trace") == derive_seed(7, "trace")
        assert derive_seed(7, "trace") != derive_seed(8, "trace")

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            derive_seed(1, "nope")


class TestMovingHotspot:
    """The drifting-hotspot skew shape feeding the rebalance benchmark."""

    def test_same_seed_same_trace(self, relation):
        a = generate_trace(relation, "pk", mix="read_heavy", n_ops=2000,
                           skew="hotspot", seed=13, phases=4,
                           hotspot_width=0.2)
        b = generate_trace(relation, "pk", mix="read_heavy", n_ops=2000,
                           skew="hotspot", seed=13, phases=4,
                           hotspot_width=0.2)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.tids, b.tids)
        assert np.array_equal(a.scan_widths, b.scan_widths)

    def test_derived_seed_stream(self, relation):
        """Trace generation seeds through derive_seed(master, "trace"),
        so different masters give different hotspot traces."""
        a = generate_trace(relation, "pk", n_ops=1000, skew="hotspot",
                           seed=1)
        b = generate_trace(relation, "pk", n_ops=1000, skew="hotspot",
                           seed=2)
        assert not np.array_equal(a.keys, b.keys)

    def test_hotspot_center_drifts_across_phases(self, relation):
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=8000,
                               skew="hotspot", seed=3, phases=4,
                               hotspot_width=0.1)
        distinct = np.sort(np.unique(np.asarray(relation.columns["pk"])))
        pos = np.searchsorted(distinct, trace.keys) / len(distinct)
        q = len(trace) // 4
        centers = [float(np.median(pos[i * q:(i + 1) * q]))
                   for i in range(4)]
        # Phase medians march monotonically across the key space near
        # the (p + 0.5) / phases grid.
        assert all(b > a for a, b in zip(centers, centers[1:]))
        for p, c in enumerate(centers):
            assert abs(c - (p + 0.5) / 4) < 0.1, (p, c)

    def test_hotspot_is_spatially_contiguous(self, relation):
        """Unlike zipfian, hotspot ranks are not scrambled: in any one
        phase the hot keys cluster in a narrow slice of the domain."""
        trace = generate_trace(relation, "pk", mix="read_only", n_ops=4000,
                               skew="hotspot", seed=7, phases=1,
                               hotspot_width=0.1)
        distinct = np.sort(np.unique(np.asarray(relation.columns["pk"])))
        pos = np.searchsorted(distinct, trace.keys) / len(distinct)
        lo, hi = np.quantile(pos, [0.05, 0.95])
        assert hi - lo < 0.2       # 90% of traffic inside a narrow band

    def test_parameter_validation(self, relation):
        with pytest.raises(ValueError, match="phases"):
            generate_trace(relation, "pk", skew="hotspot", phases=0)
        with pytest.raises(ValueError, match="hotspot_width"):
            generate_trace(relation, "pk", skew="hotspot",
                           hotspot_width=0.0)
        with pytest.raises(ValueError, match="hotspot_width"):
            generate_trace(relation, "pk", skew="hotspot",
                           hotspot_width=1.5)

    def test_slice_and_windows_partition_the_trace(self, relation):
        trace = generate_trace(relation, "pk", mix="scan_mix", n_ops=1000,
                               skew="hotspot", seed=9)
        head = trace.slice(0, 300)
        assert len(head) == 300
        assert np.array_equal(head.keys, trace.keys[:300])
        assert np.array_equal(head.ops, trace.ops[:300])
        assert np.array_equal(head.tids, trace.tids[:300])
        chunks = list(trace.iter_windows(256))
        assert [len(c) for c in chunks] == [256, 256, 256, 232]
        assert np.array_equal(
            np.concatenate([c.keys for c in chunks]), trace.keys
        )
        assert np.array_equal(
            np.concatenate([c.ops for c in chunks]), trace.ops
        )
        with pytest.raises(ValueError):
            list(trace.iter_windows(0))
