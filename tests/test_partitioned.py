"""Tests for partitioned (non-sorted, implicitly clustered) indexing.

Paper §4.1: "The connection between the page range and the key range does
not imply sorted data ... if the dataset is partitioned using the index
key the same connection is still valid."  The canonical case is TPCH's
commitdate when the table is sorted on shipdate (Figure 1a).
"""

import numpy as np
import pytest

from repro.core import BFTree, BFTreeConfig
from repro.storage import Relation, build_stack
from repro.workloads import tpch


@pytest.fixture(scope="module")
def lineitem():
    return tpch.generate(16384)      # sorted on shipdate


@pytest.fixture(scope="module")
def commit_tree(lineitem):
    return BFTree.bulk_load(
        lineitem, "commitdate", BFTreeConfig(fpp=1e-4), ordered=False
    )


class TestConstruction:
    def test_unsorted_requires_explicit_flag(self, lineitem):
        with pytest.raises(ValueError, match="ordered=False"):
            BFTree.bulk_load(lineitem, "commitdate")

    def test_sorted_with_ordered_false_allowed(self, lineitem):
        tree = BFTree.bulk_load(
            lineitem, "shipdate", BFTreeConfig(fpp=0.01), ordered=False
        )
        assert not tree.ordered

    def test_ordered_true_on_unsorted_rejected(self, lineitem):
        with pytest.raises(ValueError, match="not sorted"):
            BFTree.bulk_load(lineitem, "commitdate", ordered=True)

    def test_flag_recorded(self, commit_tree):
        assert not commit_tree.ordered

    def test_prev_links_complete(self, commit_tree):
        chain = commit_tree.leaves_in_order()
        for prev, nxt in zip(chain, chain[1:]):
            assert nxt.prev_leaf_id == prev.node_id

    def test_directory_separators_monotone(self, commit_tree):
        """The directory's routing fences are non-decreasing even though
        the raw leaf minimums are not."""
        if commit_tree.inner.root_id is None:
            pytest.skip("single-leaf tree")
        for node in commit_tree.inner.nodes.values():
            assert node.keys == sorted(node.keys)


class TestProbes:
    def test_every_key_found_exactly(self, lineitem, commit_tree):
        commit = np.asarray(lineitem.columns["commitdate"])
        rng = np.random.default_rng(9)
        commit_tree.bind(build_stack("MEM/SSD"))
        for key in rng.choice(np.unique(commit), size=60, replace=False):
            key = int(key)
            result = commit_tree.search(key)
            assert result.matches == int(np.count_nonzero(commit == key))
        commit_tree.unbind()

    def test_misses(self, lineitem, commit_tree):
        commit = np.asarray(lineitem.columns["commitdate"])
        assert not commit_tree.search(int(commit.max()) + 7).found
        assert not commit_tree.search(int(commit.min()) - 7).found

    def test_neighbour_leaves_charged(self, lineitem, commit_tree):
        """Overlapping ranges mean a probe may read several leaves."""
        commit = np.asarray(lineitem.columns["commitdate"])
        stack = build_stack("SSD/SSD")
        commit_tree.bind(stack)
        commit_tree.search(int(commit[len(commit) // 2]))
        # At least root + leaf; possibly more for the overlap walk.
        assert stack.stats.index_reads >= commit_tree.height
        commit_tree.unbind()

    def test_range_scan_exact(self, lineitem, commit_tree):
        commit = np.asarray(lineitem.columns["commitdate"])
        lo = int(commit.min()) + 50
        hi = lo + 100
        expected = int(np.count_nonzero((commit >= lo) & (commit <= hi)))
        assert commit_tree.range_scan(lo, hi).matches == expected

    def test_probe_cost_close_to_ordered_index(self, lineitem):
        """Implicit clustering keeps the overlap small: the partitioned
        index reads only slightly more than an ordered one."""
        from repro.harness import run_probes
        from repro.workloads import point_probes

        ship_tree = BFTree.bulk_load(lineitem, "shipdate",
                                     BFTreeConfig(fpp=1e-4))
        commit_tree = BFTree.bulk_load(
            lineitem, "commitdate", BFTreeConfig(fpp=1e-4), ordered=False
        )
        ship_probes = point_probes(lineitem, "shipdate", 60, hit_rate=1.0)
        commit_probes = point_probes(lineitem, "commitdate", 60, hit_rate=1.0)
        ship_stats = run_probes(ship_tree, ship_probes, "SSD/SSD")
        commit_stats = run_probes(commit_tree, commit_probes, "SSD/SSD")
        assert commit_stats.avg_latency < ship_stats.avg_latency * 3


class TestShuffledWithinPartitions:
    def test_locally_shuffled_data(self):
        """Keys shuffled inside small windows: partitioned but unsorted."""
        rng = np.random.default_rng(4)
        keys = np.arange(4096, dtype=np.int64)
        for start in range(0, 4096, 64):
            rng.shuffle(keys[start : start + 64])
        rel = Relation({"k": keys}, tuple_size=256)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=1e-4),
                                ordered=False)
        for key in range(0, 4096, 173):
            assert tree.search(key).matches == 1, key
        assert not tree.search(5000).found
