"""Kill-9 crash-recovery tests: the durability acceptance bar.

A child process builds a durable index (or a durable 4-shard service),
then performs a burst of acknowledged mutations — printing ``ACK i``
only after the op's WAL record is fsynced (``sync_every=1``).  The
parent SIGKILLs the child mid-burst, recovers from the surviving
directory, and asserts:

* **zero lost acknowledged ops** — every acked delete is really gone;
* **bit-identical state** — the recovered tree equals a reference
  index that applied exactly the replayed WAL prefix: same search
  results over the whole key space, same structural footprint;
* the structural sanitizer passes on the recovered tree.

Deletes of resident keys are the acknowledged-visible op of choice:
``search(k).found`` flips from True to False, so durability failures
are observable through the public protocol alone.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.sanitize import check, force
from repro.api import make_index
from repro.persist import recover, recover_service, replay_wal
from repro.persist.wal import apply_record
from repro.storage import Relation

ROOT = Path(__file__).resolve().parents[1]

#: Odd multiplier: i -> (i * MULT) % N is a bijection for power-of-two N,
#: spreading the delete burst over all leaves (and all shards).
MULT = 2741

CHILD_SINGLE = """
import sys
import numpy as np
from repro.api import make_index
from repro.persist import DurableIndex
from repro.storage import Relation

directory, n_keys = sys.argv[1], int(sys.argv[2])
rel = Relation({"pk": np.arange(n_keys, dtype=np.int64)}, tuple_size=256,
               name="crash-rel")
inner = make_index("bf", rel, "pk", unique=True, fpp=1e-3)
index = DurableIndex(inner, directory, sync_every=1, kind="bf",
                     column="pk", unique=True, fpp=1e-3)
print("READY", flush=True)
for i in range(n_keys):
    key = (i * %d) %% n_keys
    index.delete(key)
    print(f"ACK {key}", flush=True)
""" % MULT

CHILD_SERVICE = """
import sys
import numpy as np
from repro.persist import make_durable_service
from repro.storage import Relation

directory, n_keys = sys.argv[1], int(sys.argv[2])
rel = Relation({"pk": np.arange(n_keys, dtype=np.int64)}, tuple_size=256,
               name="crash-rel")
service = make_durable_service(rel, "pk", directory, n_shards=4, kind="bf",
                               unique=True, sync_every=1, fpp=1e-3)
assert service.n_shards == 4, service.n_shards
print("READY", flush=True)
for i in range(n_keys):
    key = (i * %d) %% n_keys
    service.delete_many([key])
    print(f"ACK {key}", flush=True)
""" % MULT

CHILD_SPLIT_SERVICE = """
import sys
import numpy as np
from repro.persist import make_durable_service, split_durable_shard
from repro.storage import Relation

directory, n_keys = sys.argv[1], int(sys.argv[2])
rel = Relation({"pk": np.arange(n_keys, dtype=np.int64)}, tuple_size=256,
               name="crash-rel")
service = make_durable_service(rel, "pk", directory, n_shards=2, kind="bf",
                               unique=True, sync_every=1, fpp=1e-3)
assert service.n_shards == 2, service.n_shards
victim = max(service.shards, key=lambda s: s.index.n_leaves).shard_id
split_durable_shard(service, directory, victim)
assert service.topology_epoch == 1
assert service.n_shards == 3
print("READY", flush=True)
for i in range(n_keys):
    key = (i * %d) %% n_keys
    service.delete_many([key])
    print(f"ACK {key}", flush=True)
""" % MULT


def _run_child_until(script: str, directory: Path, n_keys: int,
                     kill_after: int, tmp_path: Path) -> list[int]:
    """Start the child, SIGKILL it after ``kill_after`` acks, return
    the acknowledged keys."""
    child_py = tmp_path / "child.py"
    child_py.write_text(script)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, str(child_py), str(directory), str(n_keys)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    acked: list[int] = []
    try:
        assert proc.stdout is not None
        ready = proc.stdout.readline().strip()
        if ready != "READY":  # build crashed: surface the stderr
            _, err = proc.communicate(timeout=30)
            pytest.fail(f"child failed before READY: {ready!r}\n{err}")
        while len(acked) < kill_after:
            line = proc.stdout.readline()
            if not line:
                _, err = proc.communicate(timeout=30)
                pytest.fail(f"child exited early after {len(acked)} "
                            f"acks\n{err}")
            acked.append(int(line.split()[1]))
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait(timeout=30)
    return acked


def _relation(n_keys: int) -> Relation:
    return Relation({"pk": np.arange(n_keys, dtype=np.int64)},
                    tuple_size=256, name="crash-rel")


def test_kill9_durable_index_recovers_every_acked_op(tmp_path):
    n_keys, kill_after = 8192, 48
    directory = tmp_path / "idx"
    acked = _run_child_until(CHILD_SINGLE, directory, n_keys, kill_after,
                             tmp_path)
    assert len(acked) == kill_after

    rel = _relation(n_keys)
    recovered = recover(directory, rel)

    # Zero lost acknowledged ops.
    replayed, _ = replay_wal(recovered.wal_path)
    assert len(replayed) >= kill_after
    replayed_keys = [r["key"] for r in replayed]
    assert replayed_keys[:kill_after] == acked
    for key in acked:
        assert not recovered.search(key).found, key

    # Bit-identity: a reference tree that applied exactly the replayed
    # prefix matches the recovered tree everywhere.
    reference = make_index("bf", rel, "pk", unique=True, fpp=1e-3)
    for record in replayed:
        apply_record(reference, record)
    assert recovered.height == reference.height
    assert recovered.n_leaves == reference.n_leaves
    assert recovered.size_pages == reference.size_pages
    probes = list(range(0, n_keys, 61)) + acked + [n_keys, -1]
    got = recovered.search_many(probes)
    want = reference.search_many(probes)
    assert got == want

    # The recovered structure passes the sanitizer.
    force(True)
    try:
        check(recovered)
    finally:
        force(None)
    recovered.close()


def test_kill9_sharded_service_recovers_every_acked_op(tmp_path):
    n_keys, kill_after = 32768, 32
    directory = tmp_path / "svc"
    acked = _run_child_until(CHILD_SERVICE, directory, n_keys, kill_after,
                             tmp_path)
    assert len(acked) == kill_after

    rel = _relation(n_keys)
    service = recover_service(directory, rel)
    assert service.n_shards == 4

    # Zero lost acknowledged ops, across whichever shard owned each key.
    for key in acked:
        assert not service.search(key).found, key
    replayed_total = sum(
        len(replay_wal(shard.index.wal_path)[0]) for shard in service.shards
    )
    assert replayed_total >= kill_after

    # Bit-identity against a reference applying every replayed record
    # (the service's WALs partition the op stream by shard).
    reference = make_index("bf", rel, "pk", unique=True, fpp=1e-3)
    replayed_keys = set()
    for shard in service.shards:
        for record in replay_wal(shard.index.wal_path)[0]:
            apply_record(reference, record)
            replayed_keys.update(record.get("keys", [record.get("key")]))
    assert set(acked) <= replayed_keys
    probes = list(range(0, n_keys, 131)) + acked
    got = service.search_many(probes)
    want = [reference.search(k) for k in probes]
    assert got == want

    force(True)
    try:
        check(service)
    finally:
        force(None)


def test_kill9_post_split_topology_survives_recovery(tmp_path):
    """A durable split commits: kill-9 after it, recover the new layout."""
    n_keys, kill_after = 32768, 24
    directory = tmp_path / "svc"
    acked = _run_child_until(CHILD_SPLIT_SERVICE, directory, n_keys,
                             kill_after, tmp_path)
    assert len(acked) == kill_after

    rel = _relation(n_keys)
    service = recover_service(directory, rel)

    # The post-split topology came back intact: epoch 1, three shards,
    # the two fresh child ids present, exactly one original survivor.
    assert service.topology_epoch == 1
    assert service.n_shards == 3
    ids = set(service.table.shard_ids)
    assert {2, 3} <= ids
    assert len(ids & {0, 1}) == 1
    # Directory tree matches the manifest: one dir per live shard, the
    # split parent's directory is gone.
    on_disk = {p.name for p in directory.iterdir() if p.is_dir()}
    assert on_disk == {f"shard-{sid:03d}" for sid in ids}
    # Routing fences are contiguous: each shard's lo is the previous
    # boundary, and the fresh children abut at the split boundary.
    entries = service.table.entries
    assert entries[0].lo_key is None
    for left, right in zip(entries, entries[1:]):
        left_shard = service.shard_by_id(left.shard_id)
        assert left_shard is not None
        assert right.lo_key > (left.lo_key if left.lo_key is not None
                               else -1)

    # Zero lost acknowledged ops across the rebalanced layout.
    for key in acked:
        assert not service.search(key).found, key

    # Bit-identity against a reference applying every replayed record.
    reference = make_index("bf", rel, "pk", unique=True, fpp=1e-3)
    for shard in service.shards:
        for record in replay_wal(shard.index.wal_path)[0]:
            apply_record(reference, record)
    probes = list(range(0, n_keys, 131)) + acked
    got = service.search_many(probes)
    want = [reference.search(k) for k in probes]
    assert got == want

    force(True)
    try:
        check(service)
    finally:
        force(None)
    for shard in service.shards:
        shard.index.close()
