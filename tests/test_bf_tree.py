"""Unit and integration tests for the BF-Tree index itself."""

import numpy as np
import pytest

from repro.core import BFTree, BFTreeConfig
from repro.storage import Relation, build_stack


def _pk_tree(relation, fpp=0.01):
    return BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=fpp), unique=True)


class TestConfig:
    def test_invalid_fpp(self):
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError):
                BFTreeConfig(fpp=bad)

    def test_invalid_hash_count(self):
        with pytest.raises(ValueError):
            BFTreeConfig(hash_count=0)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            BFTreeConfig(pages_per_bf=0)


class TestBulkLoad:
    def test_rejects_unsorted(self):
        rel = Relation(
            {"k": np.asarray([3, 1, 2], dtype=np.int64)}, tuple_size=256
        )
        with pytest.raises(ValueError, match="not ordered"):
            BFTree.bulk_load(rel, "k")

    def test_rejects_empty(self):
        rel = Relation({"k": np.empty(0, dtype=np.int64)}, tuple_size=256)
        with pytest.raises(ValueError):
            BFTree.bulk_load(rel, "k")

    def test_leaf_chain_covers_all_pages(self, pk_relation):
        tree = _pk_tree(pk_relation)
        chain = tree.leaves_in_order()
        assert chain[0].min_pid == 0
        for prev, nxt in zip(chain, chain[1:]):
            assert nxt.min_pid == prev.min_pid + prev.pages_covered
        last = chain[-1]
        assert last.min_pid + last.pages_covered == pk_relation.npages

    def test_leaf_key_ranges_disjoint(self, pk_relation):
        chain = _pk_tree(pk_relation).leaves_in_order()
        for prev, nxt in zip(chain, chain[1:]):
            assert prev.max_key < nxt.min_key

    def test_size_shrinks_with_fpp(self, pk_relation):
        loose = _pk_tree(pk_relation, fpp=0.2)
        tight = _pk_tree(pk_relation, fpp=1e-8)
        assert loose.size_pages < tight.size_pages

    def test_granularity_auto_for_high_cardinality(self):
        """avgcard >> tuples/page -> one filter per multi-page group."""
        keys = np.repeat(np.arange(16, dtype=np.int64), 512)
        rel = Relation({"k": keys}, tuple_size=256)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.01))
        assert tree.geometry.pages_per_bf > 1

    def test_explicit_granularity(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=0.01, pages_per_bf=4),
            unique=True,
        )
        assert tree.geometry.pages_per_bf == 4


class TestSearch:
    def test_every_key_found(self, pk_relation):
        """No false negatives — the BF-Tree's correctness invariant."""
        tree = _pk_tree(pk_relation)
        stack = build_stack("MEM/SSD")
        tree.bind(stack)
        for key in range(0, 8192, 97):
            result = tree.search(key)
            assert result.found, key
            assert result.matches == 1
            assert result.tids == [key]

    def test_miss_below_and_above(self, pk_relation):
        tree = _pk_tree(pk_relation)
        tree.bind(build_stack("MEM/SSD"))
        assert not tree.search(-1).found
        assert not tree.search(8192).found

    def test_miss_costs_no_data_io(self, pk_relation):
        tree = _pk_tree(pk_relation)
        stack = build_stack("MEM/HDD")
        tree.bind(stack)
        tree.search(999_999)
        assert stack.stats.data_reads == 0

    def test_unbound_search_works(self, pk_relation):
        tree = _pk_tree(pk_relation)
        assert tree.search(100).found

    def test_duplicates_all_returned(self, dup_relation):
        tree = BFTree.bulk_load(dup_relation, "att1", BFTreeConfig(fpp=1e-4))
        tree.bind(build_stack("MEM/SSD"))
        att1 = np.asarray(dup_relation.columns["att1"])
        key = int(att1[len(att1) // 2])
        expected = int(np.count_nonzero(att1 == key))
        result = tree.search(key)
        assert result.matches == expected

    def test_false_reads_counted(self, pk_relation):
        tree = _pk_tree(pk_relation, fpp=0.2)
        stack = build_stack("MEM/SSD")
        tree.bind(stack)
        total_false = 0
        for key in range(0, 8192, 37):
            total_false += tree.search(key).false_pages
        assert total_false > 0
        assert stack.stats.false_reads == total_false

    def test_unique_stops_early(self, pk_relation):
        """With fpp=0.2 a unique probe reads < the full candidate list."""
        tree = _pk_tree(pk_relation, fpp=0.2)
        tree.bind(build_stack("MEM/SSD"))
        leaf = tree.leaves_in_order()[0]
        result = tree.search(1)   # first key: nearly no prior candidates
        assert result.pages_read < leaf.nfilters


class TestInsert:
    def test_insert_then_found(self, pk_relation):
        tree = _pk_tree(pk_relation)
        tree.insert(8192, pk_relation.npages - 1)
        leaf = tree.leaves_in_order()[-1]
        assert leaf.max_key == 8192

    def test_split_on_capacity(self):
        keys = np.arange(4096, dtype=np.int64)
        rel = Relation({"pk": keys}, tuple_size=256)
        tree = BFTree.bulk_load(
            rel, "pk", BFTreeConfig(fpp=1e-3), unique=True
        )
        before = tree.n_leaves
        leaf = tree.leaves_in_order()[-1]
        headroom = leaf.key_capacity - leaf.nkeys
        # Insert *novel* keys (beyond the domain, routed to the last
        # leaf).  Pids stay order-consistent with the keys — the top few
        # pages of the live last leaf — and are spread over several
        # filters so no single one saturates into swallowing the novel
        # keys as false duplicates.
        for i in range(3 * (headroom + 10)):
            cur = tree.leaves_in_order()[-1]
            tree.insert(4096 + i,
                        cur.max_pid - (i % min(16, cur.pages_covered)))
            if tree.n_leaves > before:
                break
        assert tree.n_leaves > before

    def test_duplicate_reinserts_never_split(self):
        """Regression: re-indexing already-present keys used to inflate
        nkeys and trigger premature splits through the capacity
        pre-check, even though the filter bits never changed."""
        keys = np.arange(4096, dtype=np.int64)
        rel = Relation({"pk": keys}, tuple_size=256)
        tree = BFTree.bulk_load(
            rel, "pk", BFTreeConfig(fpp=1e-3), unique=True
        )
        before = tree.n_leaves
        leaf = tree.leaves_in_order()[0]
        nkeys_before = leaf.nkeys
        for _ in range(3):
            for key in range(leaf.min_key, leaf.max_key + 1, 7):
                tree.insert(key, rel.page_of(key))
        assert tree.n_leaves == before
        assert leaf.nkeys == nkeys_before

    def test_insert_overflow_degrades_fpp(self, pk_relation):
        tree = _pk_tree(pk_relation, fpp=0.01)
        leaf = tree.leaves_in_order()[-1]
        assert leaf.effective_fpp() == pytest.approx(0.01)
        # Index novel keys (beyond the domain, landing on the last leaf,
        # spread over its pages) well past its nominal capacity, without
        # splitting: Equation 14 then governs the leaf's effective fpp.
        for i in range(2 * leaf.key_capacity):
            tree.insert_overflow(
                8192 + i, leaf.min_pid + (i % leaf.pages_covered)
            )
        assert leaf.extra_inserts > 0
        assert leaf.effective_fpp() > 0.01
        assert tree.effective_fpp() > 0.01

    def test_insert_into_empty_tree_raises(self, pk_relation):
        tree = BFTree(pk_relation, "pk")
        with pytest.raises(LookupError):
            tree.insert(1, 0)


class TestDelete:
    def test_deleted_key_not_found(self, pk_relation):
        tree = _pk_tree(pk_relation)
        tree.bind(build_stack("MEM/SSD"))
        assert tree.search(55).found
        assert tree.delete(55)
        assert not tree.search(55).found

    def test_delete_out_of_range(self, pk_relation):
        tree = _pk_tree(pk_relation)
        assert not tree.delete(10**9)

    def test_other_keys_unaffected(self, pk_relation):
        tree = _pk_tree(pk_relation)
        tree.delete(55)
        assert tree.search(54).found
        assert tree.search(56).found


class TestSplitLeaf:
    def test_split_preserves_searchability(self, pk_relation):
        tree = _pk_tree(pk_relation, fpp=0.01)
        victim = tree.leaves_in_order()[1]
        lo, hi = victim.min_key, victim.max_key
        tree._split_leaf(victim)
        tree.bind(build_stack("MEM/SSD"))
        for key in range(lo, hi + 1, 53):
            assert tree.search(key).found, key

    def test_split_increases_leaf_count(self, pk_relation):
        tree = _pk_tree(pk_relation)
        before = tree.n_leaves
        tree._split_leaf(tree.leaves_in_order()[0])
        assert tree.n_leaves == before + 1

    def test_single_key_leaf_cannot_split(self):
        keys = np.zeros(16, dtype=np.int64)
        rel = Relation({"k": keys}, tuple_size=256)
        tree = BFTree.bulk_load(rel, "k")
        with pytest.raises(ValueError):
            tree._split_leaf(tree.leaves_in_order()[0])


class TestRangeScan:
    def test_counts_match_ground_truth(self, pk_relation):
        tree = _pk_tree(pk_relation, fpp=1e-4)
        tree.bind(build_stack("MEM/SSD"))
        result = tree.range_scan(1000, 1999)
        assert result.matches == 1000

    def test_invalid_range(self, pk_relation):
        tree = _pk_tree(pk_relation)
        with pytest.raises(ValueError):
            tree.range_scan(10, 5)

    def test_reads_at_least_matching_pages(self, pk_relation):
        tree = _pk_tree(pk_relation, fpp=0.01)
        tree.bind(build_stack("MEM/SSD"))
        result = tree.range_scan(0, 8191)
        assert result.pages_read >= pk_relation.npages

    def test_boundary_overhead_shrinks_with_fpp(self, pk_relation):
        loose = _pk_tree(pk_relation, fpp=0.2)
        tight = _pk_tree(pk_relation, fpp=1e-8)
        loose.bind(build_stack("MEM/SSD"))
        tight.bind(build_stack("MEM/SSD"))
        lo, hi = 3000, 3300
        assert tight.range_scan(lo, hi).pages_read <= loose.range_scan(
            lo, hi
        ).pages_read

    def test_enumerated_boundaries_read_fewer_pages(self, pk_relation):
        tree = _pk_tree(pk_relation, fpp=1e-4)
        tree.bind(build_stack("MEM/SSD"))
        full = tree.range_scan(3000, 3100)
        opt = tree.range_scan(3000, 3100, enumerate_boundaries=True)
        assert opt.matches == full.matches == 101
        assert opt.pages_read <= full.pages_read


class TestIntersection:
    def test_intersection_probe(self, dup_relation):
        t1 = BFTree.bulk_load(dup_relation, "att1", BFTreeConfig(fpp=1e-4))
        t2 = BFTree.bulk_load(dup_relation, "pk", BFTreeConfig(fpp=1e-4),
                              unique=True)
        t1.bind(build_stack("MEM/SSD"))
        t2.bind(build_stack("MEM/SSD"))
        pk = 100
        att1 = int(np.asarray(dup_relation.columns["att1"])[pk])
        result = t1.intersect_probe(t2, att1, pk)
        assert result.found
        assert result.matches == 1

    def test_intersection_requires_same_relation(self, pk_relation,
                                                 dup_relation):
        t1 = _pk_tree(pk_relation)
        t2 = BFTree.bulk_load(dup_relation, "att1")
        with pytest.raises(ValueError):
            t1.intersect_probe(t2, 1, 1)


class TestSizeAccounting:
    def test_size_pages_components(self, pk_relation):
        tree = _pk_tree(pk_relation)
        assert tree.size_pages == tree.n_leaves + tree.inner.n_internal_nodes

    def test_height_matches_inner(self, pk_relation):
        tree = _pk_tree(pk_relation)
        assert tree.height == tree.inner.height

    def test_effective_fpp_nominal_after_bulk_load(self, pk_relation):
        tree = _pk_tree(pk_relation, fpp=0.01)
        assert tree.effective_fpp() == pytest.approx(0.01, rel=0.2)

    def test_size_bytes(self, pk_relation):
        tree = _pk_tree(pk_relation)
        assert tree.size_bytes == tree.size_pages * 4096
