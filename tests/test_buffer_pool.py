"""Unit tests for the LRU buffer pool (warm/cold cache modeling)."""

import pytest

from repro.storage import BufferPool, IOStats, SimulatedClock
from repro.storage.device import MEMORY_PROFILE, SSD_PROFILE, Device


def _pool(capacity):
    device = Device(SSD_PROFILE, SimulatedClock(), IOStats(), role="index")
    return BufferPool(device, capacity_pages=capacity), device


class TestBasics:
    def test_miss_charges_device(self):
        pool, device = _pool(4)
        hit = pool.read_page(1)
        assert not hit
        assert device.stats.index_random_reads == 1
        assert device.stats.cache_misses == 1

    def test_hit_charges_memory_only(self):
        pool, device = _pool(4)
        pool.read_page(1)
        before = device.clock.now()
        hit = pool.read_page(1)
        assert hit
        assert device.stats.cache_hits == 1
        assert device.clock.now() - before == pytest.approx(
            MEMORY_PROFILE.random_read
        )

    def test_zero_capacity_never_caches(self):
        pool, device = _pool(0)
        pool.read_page(1)
        pool.read_page(1)
        assert device.stats.index_random_reads == 2
        assert not pool.enabled

    def test_disabled_pool_counts_no_misses(self):
        """Regression: a disabled pool (cold-cache O_DIRECT mode) must not
        charge cache_misses — there is no cache, and counting misses
        deflated hit-rate metrics computed over cold-cache runs."""
        pool, device = _pool(0)
        pool.read_page(1)
        pool.read_page(1)
        assert device.stats.cache_misses == 0
        assert device.stats.cache_hits == 0

    def test_enabled_pool_still_counts_misses(self):
        pool, device = _pool(2)
        pool.read_page(1)
        pool.read_page(2)
        pool.read_page(1)
        assert device.stats.cache_misses == 2
        assert device.stats.cache_hits == 1

    def test_unbounded_capacity(self):
        pool, _ = _pool(None)
        for page in range(1000):
            pool.read_page(page)
        assert len(pool) == 1000


class TestLRU:
    def test_eviction_order(self):
        pool, _ = _pool(2)
        pool.read_page(1)
        pool.read_page(2)
        pool.read_page(3)          # evicts 1
        assert 1 not in pool and 2 in pool and 3 in pool

    def test_touch_refreshes_recency(self):
        pool, _ = _pool(2)
        pool.read_page(1)
        pool.read_page(2)
        pool.read_page(1)          # 2 becomes LRU
        pool.read_page(3)          # evicts 2
        assert 1 in pool and 2 not in pool


class TestWarmSetup:
    def test_prefault_no_io(self):
        pool, device = _pool(None)
        pool.prefault([1, 2, 3])
        assert device.stats.index_reads == 0
        assert all(page in pool for page in (1, 2, 3))

    def test_prefault_disabled_pool(self):
        pool, _ = _pool(0)
        pool.prefault([1, 2])
        assert len(pool) == 0

    def test_invalidate(self):
        pool, _ = _pool(4)
        pool.read_page(1)
        pool.invalidate(1)
        assert 1 not in pool

    def test_clear(self):
        pool, _ = _pool(4)
        pool.read_page(1)
        pool.clear()
        assert len(pool) == 0
