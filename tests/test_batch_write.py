"""The vectorized batch write engine: insert_many/delete_many parity.

The engine's contract mirrors the batch-probe engine's: ``insert_many``
(and ``delete_many``) leave the index in exactly the state the scalar
per-key loop produces — the same leaf structure and filter bitsets
(splits included, at the same points), the same nkeys/tombstone
bookkeeping, the same IOStats counters, the same simulated clock charges
(equal up to float summation order) and the same per-op latencies.  The
property tests drive that contract over random relations and
split-triggering batches; the sharded counterparts live in
``tests/test_service.py``.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig, BloomFilter
from repro.storage import Relation, build_stack

sorted_keys = st.lists(
    st.integers(min_value=0, max_value=10**4), min_size=8, max_size=200
).map(sorted)


def _relation_from(keys):
    return Relation({"k": np.asarray(keys, dtype=np.int64)}, tuple_size=256)


def _tree_fingerprint(tree):
    """Everything the batch/scalar identity is judged on: the full leaf
    chain with filter bitsets (or counters) and all bookkeeping."""
    out = []
    for leaf in tree.leaves_in_order():
        filters = []
        for f in leaf.filters:
            payload = (
                bytes(f._counters) if hasattr(f, "_counters") else f._bits
            )
            filters.append((f.count, payload))
        out.append((
            leaf.node_id, leaf.min_pid, leaf.min_key, leaf.max_key,
            leaf.nkeys, leaf.extra_inserts, leaf.pages_covered,
            leaf.spill_back_pages, sorted(leaf.deleted_keys), filters,
        ))
    return out


def _write_batch_for(rel, rng, n_ops, novel_share=0.25, novel_spread=8):
    """A (keys, pids) insert batch: mostly re-inserts of live keys at
    their true pages, plus a slice of novel keys beyond the domain
    (indexed over the top ``novel_spread`` pages, where they route, so
    no single group filter saturates) to trigger splits."""
    values = np.asarray(rel.columns["k"])
    hi = int(values.max())
    keys, pids = [], []
    novel = hi + 1
    spread = min(novel_spread, rel.npages)
    for _ in range(n_ops):
        if rng.random() < novel_share:
            keys.append(novel)
            pids.append(rel.npages - 1 - (novel - hi) % spread)
            novel += 1
        else:
            key = int(values[rng.integers(0, len(values))])
            keys.append(key)
            pids.append(rel.page_of(int(np.searchsorted(values, key))))
    return keys, pids


def _replay_inserts(tree, keys, pids, batch):
    stack = build_stack("MEM/SSD")
    tree.bind(stack)
    sink: list[float] = []
    try:
        if batch:
            tree.insert_many(keys, pids, latency_sink=sink)
        else:
            for key, pid in zip(keys, pids):
                begin = stack.clock.now()
                tree.insert(key, pid)
                sink.append(stack.clock.now() - begin)
    finally:
        tree.unbind()
    return sink, stack.stats.snapshot(), stack.clock.now()


class TestInsertManyEqualsScalarLoop:
    @given(keys=sorted_keys, fpp=st.sampled_from([0.05, 1e-3]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_state_io_clock_latencies(self, keys, fpp):
        rel = _relation_from(keys)
        rng = np.random.default_rng(len(keys))
        batch_keys, batch_pids = _write_batch_for(rel, rng, 120)
        scalar_tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=fpp))
        batch_tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=fpp))
        s_lat, s_io, s_clock = _replay_inserts(
            scalar_tree, batch_keys, batch_pids, batch=False
        )
        b_lat, b_io, b_clock = _replay_inserts(
            batch_tree, batch_keys, batch_pids, batch=True
        )
        assert _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree)
        assert b_io == s_io
        assert math.isclose(b_clock, s_clock, rel_tol=1e-9)
        assert np.allclose(b_lat, s_lat, rtol=1e-9)

    def test_split_triggering_batch(self):
        """A batch heavy enough in novel keys to force splits mid-batch
        splits at the same points as the scalar loop."""
        rel = _relation_from(list(range(2048)))
        scalar_tree = BFTree.bulk_load(
            rel, "k", BFTreeConfig(fpp=1e-3), unique=True
        )
        batch_tree = BFTree.bulk_load(
            rel, "k", BFTreeConfig(fpp=1e-3), unique=True
        )
        before = scalar_tree.n_leaves
        rng = np.random.default_rng(3)
        keys, pids = _write_batch_for(rel, rng, 3000, novel_share=0.5)
        _replay_inserts(scalar_tree, keys, pids, batch=False)
        _replay_inserts(batch_tree, keys, pids, batch=True)
        assert scalar_tree.n_leaves > before        # splits happened
        assert _tree_fingerprint(batch_tree) == \
            _tree_fingerprint(scalar_tree)

    def test_warm_mode_with_splits(self):
        """Regression: under a warm buffer pool, duplicates queued on one
        leaf and flushed after a split elsewhere used to replay pool
        *misses* the scalar loop never paid (the split's inner-node
        write invalidates the pooled parent).  The batch path now
        flushes every queue into the pre-split state first."""
        rel = _relation_from(list(range(4096)))
        rng = np.random.default_rng(5)
        batch = []
        novel = iter(range(5000, 9000))
        for j in range(3000):
            batch.append(next(novel) if j % 3 == 0
                         else int(rng.integers(0, 4096)))

        def pid_for(tree, key):
            if key < 4096:
                return rel.page_of(key)
            cur = tree.leaves_in_order()[-1]
            return cur.max_pid - (key % min(16, cur.pages_covered))

        scalar_tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=1e-3),
                                       unique=True)
        batch_tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=1e-3),
                                      unique=True)
        stack_s, stack_b = build_stack("MEM/SSD"), build_stack("MEM/SSD")
        scalar_tree.bind(stack_s, warm=True)
        batch_tree.bind(stack_b, warm=True)
        before = scalar_tree.n_leaves
        s_lat, pids = [], []
        for key in batch:
            pid = pid_for(scalar_tree, key)
            pids.append(pid)
            begin = stack_s.clock.now()
            scalar_tree.insert(key, pid)
            s_lat.append(stack_s.clock.now() - begin)
        b_lat: list[float] = []
        batch_tree.insert_many(batch, pids, latency_sink=b_lat)
        scalar_tree.unbind()
        batch_tree.unbind()
        assert scalar_tree.n_leaves > before     # splits were exercised
        assert _tree_fingerprint(batch_tree) == \
            _tree_fingerprint(scalar_tree)
        assert stack_b.stats.snapshot() == stack_s.stats.snapshot()
        assert math.isclose(stack_b.clock.now(), stack_s.clock.now(),
                            rel_tol=1e-9)
        assert np.allclose(b_lat, s_lat, rtol=1e-9)

    def test_saturated_group_filter_still_splits(self):
        """Regression: a group filter flooded with novel keys saturates,
        and its membership test then calls *everything* a re-insert —
        without the trust ceiling nkeys would freeze and the leaf would
        never split, silently degrading fpp toward 1."""
        rel = _relation_from(list(range(2048)))
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=1e-3),
                                unique=True)
        before = tree.n_leaves
        for i in range(4000):
            tree.insert(10_000 + i, rel.npages - 1)
        assert tree.n_leaves > before

    def test_post_insert_probes_identical(self, pk_relation):
        rng = np.random.default_rng(11)
        scalar_tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3), unique=True
        )
        batch_tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3), unique=True
        )
        keys = rng.integers(0, 8192, size=600).tolist()
        pids = [pk_relation.page_of(k) for k in keys]
        _replay_inserts(scalar_tree, keys, pids, batch=False)
        _replay_inserts(batch_tree, keys, pids, batch=True)
        probes = list(range(0, 8192, 61))
        assert ([batch_tree.search(k) for k in probes]
                == [scalar_tree.search(k) for k in probes])

    def test_counting_filter_kind(self, pk_relation):
        rng = np.random.default_rng(13)
        config = BFTreeConfig(fpp=1e-2, filter_kind="counting")
        scalar_tree = BFTree.bulk_load(pk_relation, "pk", config,
                                       unique=True)
        batch_tree = BFTree.bulk_load(pk_relation, "pk", config,
                                      unique=True)
        keys = rng.integers(0, 8192, size=400).tolist()
        pids = [pk_relation.page_of(k) for k in keys]
        s_lat, s_io, s_clock = _replay_inserts(
            scalar_tree, keys, pids, batch=False
        )
        b_lat, b_io, b_clock = _replay_inserts(
            batch_tree, keys, pids, batch=True
        )
        assert _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree)
        assert b_io == s_io
        assert np.allclose(b_lat, s_lat, rtol=1e-9)

    def test_tombstoned_keys_revived_identically(self, pk_relation):
        trees = []
        for _ in range(2):
            tree = BFTree.bulk_load(
                pk_relation, "pk", BFTreeConfig(fpp=1e-3), unique=True
            )
            for key in range(0, 512, 3):
                tree.delete(key)
            trees.append(tree)
        scalar_tree, batch_tree = trees
        keys = list(range(0, 512, 6))
        pids = [pk_relation.page_of(k) for k in keys]
        _replay_inserts(scalar_tree, keys, pids, batch=False)
        _replay_inserts(batch_tree, keys, pids, batch=True)
        assert _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree)

    def test_empty_and_mismatched_input(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3), unique=True
        )
        sink: list[float] = []
        tree.insert_many([], [], latency_sink=sink)
        assert sink == []
        with pytest.raises(ValueError, match="same length"):
            tree.insert_many([1, 2], [0])

    def test_unbuilt_tree_raises(self, pk_relation):
        tree = BFTree(pk_relation, "pk")
        with pytest.raises(LookupError):
            tree.insert_many([1], [0])


class TestDeleteManyEqualsScalarLoop:
    @given(keys=sorted_keys)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_plain_tombstones(self, keys):
        rel = _relation_from(keys)
        rng = np.random.default_rng(len(keys) + 1)
        targets = rng.integers(0, max(keys) + 50, size=60).tolist()
        scalar_tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.01))
        batch_tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.01))
        stack_s, stack_b = build_stack("MEM/SSD"), build_stack("MEM/SSD")
        scalar_tree.bind(stack_s)
        batch_tree.bind(stack_b)
        s_out = [scalar_tree.delete(k) for k in targets]
        b_sink: list[float] = []
        b_out = batch_tree.delete_many(targets, latency_sink=b_sink)
        scalar_tree.unbind()
        batch_tree.unbind()
        assert b_out == s_out
        assert len(b_sink) == len(targets)
        assert _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree)
        assert stack_b.stats.snapshot() == stack_s.stats.snapshot()
        assert math.isclose(stack_b.clock.now(), stack_s.clock.now(),
                            rel_tol=1e-9)

    def test_counting_inplace_deletes(self, pk_relation):
        config = BFTreeConfig(fpp=1e-2, filter_kind="counting")
        scalar_tree = BFTree.bulk_load(pk_relation, "pk", config,
                                       unique=True)
        batch_tree = BFTree.bulk_load(pk_relation, "pk", config,
                                      unique=True)
        rng = np.random.default_rng(17)
        targets = rng.integers(0, 9000, size=300).tolist()
        pids = [pk_relation.page_of(min(k, 8191)) for k in targets]
        s_out = [scalar_tree.delete(k, pid=p)
                 for k, p in zip(targets, pids)]
        b_out = batch_tree.delete_many(targets, pids)
        assert b_out == s_out
        assert _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree)
        # Outcomes surface the mechanism: in-place, never tombstoned.
        assert all(not o.tombstoned for o in b_out)

    def test_mixed_pid_availability(self, pk_relation):
        """Counting tree, pids only for half the batch: the other half
        falls back to (surfaced) tombstoning, same as scalar."""
        config = BFTreeConfig(fpp=1e-2, filter_kind="counting")
        scalar_tree = BFTree.bulk_load(pk_relation, "pk", config,
                                       unique=True)
        batch_tree = BFTree.bulk_load(pk_relation, "pk", config,
                                      unique=True)
        targets = list(range(100, 160))
        pids = [pk_relation.page_of(k) if k % 2 else None for k in targets]
        s_out = [scalar_tree.delete(k, pid=p)
                 for k, p in zip(targets, pids)]
        b_out = batch_tree.delete_many(targets, pids)
        assert b_out == s_out
        assert any(o.tombstoned for o in b_out)
        assert any(not o.tombstoned for o in b_out)
        assert _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree)


class TestFilterAndLeafLayers:
    def test_bloom_add_many_equals_scalar(self):
        scalar, batch = BloomFilter(512, 5, seed=9), BloomFilter(512, 5,
                                                                 seed=9)
        keys = [3, -7, 2**63 + 5, "abc", 3]
        for key in keys:
            scalar.add(key)
        batch.add_many(keys)
        assert batch._bits == scalar._bits
        assert batch.count == scalar.count

    def test_bloom_add_positions_round_trip(self):
        from repro.core.hashing import bloom_positions

        bf = BloomFilter(256, 4, seed=2)
        positions = bloom_positions(1234, bf.k, bf.nbits, bf.seed)
        assert not bf.contains_positions(positions)
        bf.add_positions(positions)
        assert bf.contains_positions(positions)
        assert bf.might_contain(1234)

    def test_bptree_insert_many_parity(self, dup_relation):
        scalar_tree = BPlusTree.bulk_load(dup_relation, "att1")
        batch_tree = BPlusTree.bulk_load(dup_relation, "att1")
        stack_s, stack_b = build_stack("MEM/SSD"), build_stack("MEM/SSD")
        scalar_tree.bind(stack_s)
        batch_tree.bind(stack_b)
        rng = np.random.default_rng(23)
        values = np.asarray(dup_relation.columns["att1"])
        keys = values[rng.integers(0, len(values), size=300)].tolist()
        tids = [int(np.searchsorted(values, k)) for k in keys]
        s_sink: list[float] = []
        for key, tid in zip(keys, tids):
            begin = stack_s.clock.now()
            scalar_tree.insert(key, tid)
            s_sink.append(stack_s.clock.now() - begin)
        b_sink: list[float] = []
        batch_tree.insert_many(keys, tids, latency_sink=b_sink)
        scalar_tree.unbind()
        batch_tree.unbind()
        assert stack_b.stats.snapshot() == stack_s.stats.snapshot()
        assert np.allclose(b_sink, s_sink, rtol=1e-9)
        chain_s = [(l.keys, l.ridlists) for l in
                   scalar_tree.leaves_in_order()]
        chain_b = [(l.keys, l.ridlists) for l in
                   batch_tree.leaves_in_order()]
        assert chain_b == chain_s
