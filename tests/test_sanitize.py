"""Structural sanitizer corruption tests.

Each test seeds one precise corruption into a healthy structure and
asserts the sanitizer catches it with a diagnostic naming the violated
invariant — the four scenarios the issue calls for (leaf chain, Bloom
filter accounting, FD-Tree tombstones, shard routing) plus the
enablement plumbing (env switch, ``force``, batch-mutation hooks).
"""

import numpy as np
import pytest

from repro.analysis.sanitize import (
    ENV_VAR,
    StructuralCorruption,
    check,
    check_bplus,
    check_fd,
    check_sharded,
    check_tree,
    enabled,
    force,
    maybe_check,
)
from repro.api import make_index
from repro.service import ShardedIndex
from repro.service.routing import RouteEntry
from repro.storage.relation import Relation

FPP = 1e-3


@pytest.fixture()
def bf(pk_relation):
    return make_index("bf", pk_relation, "pk", unique=True, fpp=FPP)


@pytest.fixture()
def bplus(pk_relation):
    return make_index("bplus", pk_relation, "pk", unique=True, fpp=FPP)


@pytest.fixture()
def fd(pk_relation):
    return make_index("fd", pk_relation, "pk", unique=True, fpp=FPP)


@pytest.fixture()
def sharded(pk_relation):
    return ShardedIndex.build(pk_relation, "pk", n_shards=4, kind="bf",
                              unique=True, fpp=FPP)


@pytest.fixture(autouse=True)
def _reset_force():
    yield
    force(None)


def chain_of(tree):
    leaves = sorted(tree.leaves.values(), key=lambda l: l.node_id)
    assert len(leaves) >= 3, "fixture tree too small to corrupt"
    return leaves


# ======================================================================
# healthy structures pass
# ======================================================================
def test_healthy_structures_pass(bf, bplus, fd, sharded):
    check_tree(bf)
    check_bplus(bplus)
    check_fd(fd)
    check_sharded(sharded)


# ======================================================================
# scenario 1: leaf-chain corruption
# ======================================================================
class TestLeafChain:
    def test_dangling_next_pointer(self, bf):
        leaves = chain_of(bf)
        tail = next(l for l in leaves if l.next_leaf_id is None)
        tail.next_leaf_id = max(bf.leaves) + 999
        with pytest.raises(StructuralCorruption,
                           match="names unknown leaf"):
            check_tree(bf)

    def test_severed_chain_grows_second_head(self, bf):
        leaves = chain_of(bf)
        leaves[1].next_leaf_id = None
        with pytest.raises(StructuralCorruption, match="heads"):
            check_tree(bf)

    def test_full_cycle_has_no_head(self, bf):
        leaves = chain_of(bf)
        tail = next(l for l in leaves if l.next_leaf_id is None)
        head = next(l for l in leaves if l.prev_leaf_id is None)
        tail.next_leaf_id = head.node_id
        with pytest.raises(StructuralCorruption,
                           match="no head .*cycle"):
            check_tree(bf)

    def test_prev_pointer_disagreement(self, bf):
        leaves = chain_of(bf)
        leaves[2].prev_leaf_id = leaves[0].node_id
        with pytest.raises(StructuralCorruption,
                           match="prev pointer .* disagrees"):
            check_tree(bf)

    def test_cross_leaf_key_inversion(self, bf):
        leaves = chain_of(bf)
        head = next(l for l in leaves if l.prev_leaf_id is None)
        head.max_key = 10**9
        with pytest.raises(StructuralCorruption,
                           match="key order inverted across leaves"):
            check_tree(bf)

    def test_bplus_chain_checked_too(self, bplus):
        leaves = chain_of(bplus)
        leaves[1].next_leaf_id = None
        with pytest.raises(StructuralCorruption, match="heads"):
            check_bplus(bplus)

    def test_bplus_key_order_in_leaf(self, bplus):
        leaves = chain_of(bplus)
        target = next(l for l in leaves if len(l.keys) >= 2)
        target.keys[0], target.keys[1] = target.keys[1], target.keys[0]
        with pytest.raises(StructuralCorruption,
                           match="keys not strictly increasing"):
            check_bplus(bplus)


# ======================================================================
# scenario 2: Bloom-filter accounting corruption
# ======================================================================
class TestFilterAccounting:
    def test_nkeys_exceeds_filter_inserts(self, bf):
        leaf = next(l for l in chain_of(bf) if l.filters)
        leaf.nkeys = sum(f.count for f in leaf.filters) + 7
        # Keep the capacity-overflow bound satisfied so the filter
        # accounting check is the one that fires.
        leaf.extra_inserts = leaf.nkeys
        with pytest.raises(StructuralCorruption,
                           match="exceeds total filter insert count"):
            check_tree(bf)

    def test_negative_nkeys(self, bf):
        leaf = chain_of(bf)[0]
        leaf.nkeys = -1
        with pytest.raises(StructuralCorruption, match="negative nkeys"):
            check_tree(bf)

    def test_filter_parameter_divergence(self, bf):
        leaf = next(l for l in chain_of(bf) if len(l.filters) >= 2)
        leaf.filters[1].seed = leaf.filters[0].seed + 1
        with pytest.raises(StructuralCorruption,
                           match="diverge from filter 0"):
            check_tree(bf)


# ======================================================================
# scenario 3: FD-Tree tombstone corruption
# ======================================================================
class TestFDTombstones:
    def test_out_of_range_tombstone_victim(self, fd):
        level = next(lv for lv in fd.levels if lv)
        ghost = fd.relation.ntuples + 5
        level.append((level[-1][0] + 1, -ghost - 1))
        with pytest.raises(StructuralCorruption,
                           match="outside the relation's"):
            check_fd(fd)

    def test_unannihilated_pair_in_merge_level(self, fd):
        level = next(lv for lv in fd.levels if lv)
        i = len(level) // 2
        key, tid = level[i]
        assert tid >= 0
        # (key, -tid-1) sorts immediately before (key, tid): the run
        # stays sorted, the victim stays in range — only the
        # annihilation invariant is violated.
        level.insert(i, (key, -tid - 1))
        with pytest.raises(StructuralCorruption,
                           match="a merge should have annihilated"):
            check_fd(fd)

    def test_unsorted_level(self, fd):
        level = next(lv for lv in fd.levels if len(lv) >= 2)
        level[0], level[-1] = level[-1], level[0]
        with pytest.raises(StructuralCorruption, match="not sorted"):
            check_fd(fd)


# ======================================================================
# scenario 4: shard routing corruption
# ======================================================================
class TestShardRouting:
    def test_routing_entry_vs_shard_lo_key(self, sharded):
        assert len(sharded.shards) >= 2, "fixture did not shard"
        sharded.shards[1].lo_key += 1
        with pytest.raises(StructuralCorruption,
                           match="stale routing entry"):
            check_sharded(sharded)

    def test_boundary_shifted_past_leaf_span(self, sharded):
        # Move the first fence up past shard 1's first leaf: the table
        # entry and the shard's lo_key still agree, but that leaf now
        # holds keys the router would send to the shard on its left.
        assert len(sharded.shards) >= 2, "fixture did not shard"
        shard1 = sharded.shards[1]
        first_leaf = shard1.index.shard_leaves()[0]
        span_lo, _ = shard1.index.shard_leaf_span(first_leaf)
        shard1.lo_key = span_lo + 1
        sharded.table._entries[1] = RouteEntry(lo_key=span_lo + 1,
                                               shard_id=shard1.shard_id)
        sharded.table._rebuild()
        with pytest.raises(StructuralCorruption,
                           match="below the shard's lo fence"):
            check_sharded(sharded)

    def test_stale_routing_entry_after_split(self, sharded):
        # A split that leaves the old fence behind in one layer of the
        # routing state: the table entries move but the cached fence
        # array (what route() actually searches) stays at the parent's
        # layout — the epoch-aware check must catch the disagreement.
        # The session fixture's shards are too small to split (2 leaves
        # each); build a wider one so a shard has >= 4 leaves.
        relation = Relation(
            {"pk": np.arange(32768, dtype=np.int64)},
            tuple_size=256, name="pk-wide",
        )
        sharded = ShardedIndex.build(relation, "pk", n_shards=2, kind="bf",
                                     unique=True, fpp=FPP)
        assert len(sharded.shards) >= 2, "fixture did not shard"
        victim = max(sharded.shards, key=lambda s: s.index.n_leaves)
        assert victim.index.n_leaves >= 4, "fixture shard too small to split"
        left_id, right_id = sharded.split_shard(victim.shard_id)
        check_sharded(sharded)        # healthy at the new epoch
        o = sharded.table.ordinal_of(right_id)
        entry = sharded.table._entries[o]
        sharded.table._entries[o] = RouteEntry(
            lo_key=entry.lo_key + 1, shard_id=entry.shard_id
        )
        with pytest.raises(StructuralCorruption,
                           match="stale routing state"):
            check_sharded(sharded)
        # Even once the fence cache is rebuilt, the entry still
        # disagrees with the live shard it names.
        sharded.table._rebuild()
        with pytest.raises(StructuralCorruption,
                           match="stale routing entry"):
            check_sharded(sharded)

    def test_routing_ids_vs_registered_shards(self, sharded):
        assert len(sharded.shards) >= 2, "fixture did not shard"
        sid = sharded.table.id_at(0)
        ghost = sharded._by_id.pop(sid)
        sharded._by_id[ghost.shard_id + 1000] = ghost
        sharded._shards_cache = None
        with pytest.raises(StructuralCorruption,
                           match="disagree with registered shards"):
            check_sharded(sharded)

    def test_corrupt_member_tree_found_recursively(self, sharded):
        assert len(sharded.shards) >= 2, "fixture did not shard"
        tree = sharded.shards[0].index
        leaf = next(l for l in tree.leaves.values() if l.filters)
        leaf.nkeys = sum(f.count for f in leaf.filters) + 7
        leaf.extra_inserts = leaf.nkeys
        with pytest.raises(StructuralCorruption,
                           match="exceeds total filter insert count"):
            check_sharded(sharded)


# ======================================================================
# enablement plumbing
# ======================================================================
class TestEnablement:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        force(None)
        assert not enabled()

    @pytest.mark.parametrize("value,on", [
        ("1", True), ("yes", True), ("TRUE", True),
        ("0", False), ("false", False), ("no", False), ("", False),
    ])
    def test_env_switch(self, monkeypatch, value, on):
        monkeypatch.setenv(ENV_VAR, value)
        force(None)
        assert enabled() is on

    def test_force_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        force(False)
        assert not enabled()
        force(True)
        assert enabled()

    def test_maybe_check_is_noop_when_disabled(self, bf):
        chain_of(bf)[0].nkeys = -1
        force(False)
        maybe_check(bf)  # corrupted, but sanitizing is off

    def test_maybe_check_raises_when_enabled(self, bf):
        chain_of(bf)[0].nkeys = -1
        force(True)
        with pytest.raises(StructuralCorruption):
            maybe_check(bf)

    def test_unknown_objects_pass(self):
        force(True)
        maybe_check(object())
        check("not an index")

    def test_insert_many_hook_fires(self, bf):
        # The batch write path validates the tree after mutating it.
        force(True)
        last_pid = max(l.min_pid for l in bf.leaves.values())
        leaf = next(l for l in chain_of(bf) if l.filters)
        leaf.nkeys = sum(f.count for f in leaf.filters) + 7
        leaf.extra_inserts = leaf.nkeys
        with pytest.raises(StructuralCorruption):
            bf.insert_many([10**7], [last_pid])

    def test_sharded_insert_many_hook_fires(self, sharded):
        # The service takes tuple ids; write_target maps them to pages.
        force(True)
        last_tid = sharded.relation.ntuples - 1
        sharded.shards[1].lo_key += 1
        with pytest.raises(StructuralCorruption):
            sharded.insert_many([10**7], [last_tid])

    def test_sanitize_passes_during_real_mutation(self, bf):
        # A genuine mutation batch under the sanitizer: no false alarms.
        force(True)
        last_pid = max(l.min_pid for l in bf.leaves.values())
        keys = list(range(10**6, 10**6 + 64))
        bf.insert_many(keys, [last_pid] * 64)
        bf.delete_many(keys[:32])
        check_tree(bf)
