"""Batch scan engine: ``range_scan_many`` equivalence with the scalar loop.

The headline property: for every index shape the serving layer supports
(BF-Tree ordered/unordered, B+-Tree clustered/unclustered, sharded and
unsharded) a batched scan replay agrees with the per-window scalar loop
on matches/pages_read/leaves_visited and on every IOStats counter —
after interleaved inserts and leaf splits included — and the Router's
scan batching is bit-identical to per-op dispatch on ``scan_mix``
traces.
"""

import math

import numpy as np
import pytest

from repro.baselines import BPlusTree, BPlusTreeConfig
from repro.core import BFTree, BFTreeConfig
from repro.harness import run_service
from repro.service import ShardedIndex
from repro.storage import build_stack
from repro.workloads import generate_trace, synthetic, tpch

FPP = 1e-3
CONFIG = "MEM/SSD"


@pytest.fixture(scope="module")
def relation():
    return synthetic.generate(16384, seed=21)


@pytest.fixture(scope="module")
def lineitem():
    return tpch.generate(8192, seed=3)


def _windows(n, lo_max, width_max, seed, base=0):
    """Seeded scan windows, including a slice beyond the key domain."""
    rng = np.random.default_rng(seed)
    los = rng.integers(base, lo_max, size=n)
    widths = rng.integers(1, width_max + 1, size=n)
    wins = [(int(lo), int(lo + w - 1)) for lo, w in zip(los, widths)]
    wins += [(lo_max + 10, lo_max + 500), (base, lo_max * 2),
             (base + 7, base + 7)]
    return wins


def _compare(make_tree, windows, mutate=None, warm=False, **scan_kw):
    """Scalar loop vs range_scan_many on twin trees over fresh stacks."""
    scalar_tree, batch_tree = make_tree(), make_tree()
    stack_s, stack_b = build_stack(CONFIG), build_stack(CONFIG)
    scalar_tree.bind(stack_s, warm=warm)
    batch_tree.bind(stack_b, warm=warm)
    if mutate is not None:
        mutate(scalar_tree)
        mutate(batch_tree)
    io_s, io_b = stack_s.stats.snapshot(), stack_b.stats.snapshot()
    t_s, t_b = stack_s.clock.now(), stack_b.clock.now()
    ref, ref_latencies = [], []
    for lo, hi in windows:
        begin = stack_s.clock.now()
        ref.append(scalar_tree.range_scan(lo, hi, **scan_kw))
        ref_latencies.append(stack_s.clock.now() - begin)
    sink: list[float] = []
    got = batch_tree.range_scan_many(windows, latency_sink=sink, **scan_kw)
    assert got == ref
    assert stack_s.stats.diff(io_s) == stack_b.stats.diff(io_b)
    assert math.isclose(stack_s.clock.now() - t_s,
                        stack_b.clock.now() - t_b, rel_tol=1e-9)
    assert np.allclose(ref_latencies, sink, rtol=1e-9)
    scalar_tree.unbind()
    batch_tree.unbind()
    return got


class TestBFTreeScanEquivalence:
    def test_ordered_pk(self, relation):
        _compare(
            lambda: BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=FPP),
                                     unique=True),
            _windows(150, 16384, 120, seed=7),
        )

    def test_ordered_duplicates(self, relation):
        hi = int(np.asarray(relation.columns["att1"]).max())
        _compare(
            lambda: BFTree.bulk_load(relation, "att1",
                                     BFTreeConfig(fpp=FPP)),
            _windows(120, hi, 40, seed=8),
        )

    def test_unordered_partitioned(self, lineitem):
        col = np.asarray(lineitem.columns["commitdate"])
        _compare(
            lambda: BFTree.bulk_load(lineitem, "commitdate",
                                     BFTreeConfig(fpp=FPP), ordered=False),
            _windows(100, int(col.max()), 200, seed=9,
                     base=int(col.min())),
        )

    def test_enumerate_boundaries(self, relation):
        _compare(
            lambda: BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=FPP),
                                     unique=True),
            _windows(60, 16384, 150, seed=10),
            enumerate_boundaries=True,
        )

    def test_after_interleaved_inserts_and_splits(self, relation):
        def mutate(tree):
            before = tree.n_leaves
            for i in range(2500):
                tree.insert(16384 + i, relation.npages - 1 - (i % 8))
            assert tree.n_leaves > before  # splits actually happened

        _compare(
            lambda: BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=FPP),
                                     unique=True),
            _windows(150, 20000, 300, seed=11),
            mutate=mutate,
        )

    def test_warm_cache(self, relation):
        _compare(
            lambda: BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=FPP),
                                     unique=True),
            _windows(80, 16384, 120, seed=12),
            warm=True,
        )

    def test_empty_tree(self, relation):
        tree = BFTree(relation, "pk")
        results = tree.range_scan_many([(1, 10), (5, 5)])
        assert all(
            r.matches == r.pages_read == r.leaves_visited == 0
            for r in results
        )

    def test_invalid_window_rejected_before_charges(self, relation):
        tree = BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=FPP),
                                unique=True)
        stack = build_stack(CONFIG)
        tree.bind(stack)
        before = stack.stats.snapshot()
        with pytest.raises(ValueError, match="empty range"):
            tree.range_scan_many([(0, 50), (10, 5)])
        assert stack.stats.snapshot() == before  # nothing charged
        assert stack.clock.now() == 0.0


class TestBPlusTreeScanEquivalence:
    def test_clustered(self, relation):
        _compare(
            lambda: BPlusTree.bulk_load(relation, "pk", unique=True),
            _windows(150, 16384, 120, seed=13),
        )

    def test_unclustered(self, relation):
        _compare(
            lambda: BPlusTree.bulk_load(
                relation, "pk", BPlusTreeConfig(clustered=False), unique=True
            ),
            _windows(120, 16384, 60, seed=14),
        )

    def test_clustered_duplicates_after_inserts(self, relation):
        def mutate(tree):
            for i in range(400):
                tree.insert(20000 + i, i % relation.ntuples)

        hi = int(np.asarray(relation.columns["att1"]).max())
        _compare(
            lambda: BPlusTree.bulk_load(relation, "att1"),
            _windows(100, hi, 30, seed=15),
            mutate=mutate,
        )


class TestShardedScanEquivalence:
    @pytest.mark.parametrize("kind", ["bf", "bplus"])
    def test_range_scan_many_matches_scalar(self, relation, kind):
        windows = _windows(80, 16384, 250, seed=16)
        config = BFTreeConfig(fpp=FPP) if kind == "bf" else None

        def build():
            return ShardedIndex.build(relation, "pk", n_shards=4, kind=kind,
                                      config=config, unique=True)

        scalar_svc, batch_svc = build(), build()
        scalar_svc.bind(CONFIG)
        batch_svc.bind(CONFIG)
        ref = [scalar_svc.range_scan(lo, hi) for lo, hi in windows]
        sink: list[float] = []
        got = batch_svc.range_scan_many(windows, latency_sink=sink)
        assert got == ref
        assert batch_svc.merged_io() == scalar_svc.merged_io()
        assert len(sink) == len(windows)
        scalar_svc.unbind()
        batch_svc.unbind()

    def test_scan_plan_many_matches_scan_plan(self, relation):
        service = ShardedIndex.build(relation, "pk", n_shards=4, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        windows = _windows(60, 16384, 4000, seed=17)
        plans = service.scan_plan_many(windows)
        assert plans == [service.scan_plan(lo, hi) for lo, hi in windows]


class TestRouterScanBatching:
    """Router replay with scan batching is bit-identical to per-op
    dispatch on scan_mix traces."""

    @pytest.mark.parametrize("kind", ["bf", "bplus"])
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_scan_batched_replay_identical(self, relation, kind, n_shards):
        trace = generate_trace(relation, "pk", mix="scan_mix", n_ops=600,
                               skew="zipfian", seed=19)
        config = BFTreeConfig(fpp=FPP) if kind == "bf" else None

        def build():
            return ShardedIndex.build(relation, "pk", n_shards=n_shards,
                                      kind=kind, config=config, unique=True)

        batched = run_service(build(), trace, CONFIG)
        per_op = run_service(build(), trace, CONFIG, scan_batch=False)
        scalar = run_service(build(), trace, CONFIG, batch=False)
        assert batched.scan_batch and not per_op.scan_batch
        assert batched.results == per_op.results == scalar.results
        assert batched.io == per_op.io == scalar.io
        assert np.allclose(batched.stats.op_latencies,
                           per_op.stats.op_latencies, rtol=1e-9)
        assert np.allclose(batched.stats.op_latencies,
                           scalar.stats.op_latencies, rtol=1e-9)
        assert np.allclose(batched.stats.per_shard_clock,
                           per_op.stats.per_shard_clock, rtol=1e-9)

    def test_scan_batching_preserves_read_your_writes(self, relation):
        """A scan after an insert to the same shard observes it even
        though scans no longer flush the read buffer (writes fence)."""
        trace = generate_trace(relation, "pk", mix="scan_mix", n_ops=400,
                               skew="uniform", seed=23)
        service = ShardedIndex.build(relation, "pk", n_shards=2, kind="bf",
                                     config=BFTreeConfig(fpp=FPP),
                                     unique=True)
        report = run_service(service, trace, CONFIG)

        ref_tree = BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=FPP),
                                    unique=True)
        stack = build_stack(CONFIG)
        ref_tree.bind(stack)
        for i in range(len(trace)):
            key = trace.keys[i].item()
            op = int(trace.ops[i])
            if op == 1:  # OP_INSERT
                ref_tree.insert(
                    key, relation.page_of(int(trace.tids[i]))
                )
            elif op == 2:  # OP_SCAN
                hi = key + int(trace.scan_widths[i]) - 1
                ref = ref_tree.range_scan(key, hi)
                got = report.results[i]
                assert (got.matches, got.pages_read) == \
                    (ref.matches, ref.pages_read)
        ref_tree.unbind()
