"""Tests for the counting and scalable Bloom-filter variants (§2, §7)."""

import random

import pytest

from repro.core.bloom import BloomFilter
from repro.core.variants import CountingBloomFilter, ScalableBloomFilter


class TestCountingBasics:
    def test_no_false_negatives(self):
        cbf = CountingBloomFilter(512, k=4)
        keys = random.Random(1).sample(range(10**9), 40)
        for key in keys:
            cbf.add(key)
        assert all(cbf.might_contain(k) for k in keys)

    def test_contains_operator(self):
        cbf = CountingBloomFilter(64, 3)
        cbf.add(9)
        assert 9 in cbf

    def test_empty_rejects(self):
        assert not CountingBloomFilter(64, 3).might_contain(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0, 3)
        with pytest.raises(ValueError):
            CountingBloomFilter(64, 0)
        with pytest.raises(ValueError):
            CountingBloomFilter(64, 3, counter_bits=1)

    def test_for_capacity_matches_plain_sizing(self):
        cbf = CountingBloomFilter.for_capacity(100, 0.01)
        bf = BloomFilter.for_capacity(100, 0.01)
        assert cbf.nbits == bf.nbits

    def test_space_cost_is_counter_bits(self):
        cbf = CountingBloomFilter(800, 3, counter_bits=4)
        bf = BloomFilter(800, 3)
        assert cbf.size_bytes() == 4 * bf.size_bytes()


class TestCountingDeletes:
    def test_remove_restores_state(self):
        """Deleting a key removes it without touching other keys."""
        cbf = CountingBloomFilter(1024, k=4)
        keys = random.Random(2).sample(range(10**9), 30)
        for key in keys:
            cbf.add(key)
        victim = keys[7]
        assert cbf.remove(victim)
        for key in keys:
            if key != victim:
                assert cbf.might_contain(key)

    def test_remove_absent_key_noop(self):
        cbf = CountingBloomFilter(256, 3)
        cbf.add(5)
        before = bytes(cbf._counters)
        assert not cbf.remove(999_999_999)
        assert bytes(cbf._counters) == before

    def test_remove_duplicate_occurrences(self):
        cbf = CountingBloomFilter(256, 3)
        cbf.add(5)
        cbf.add(5)
        assert cbf.remove(5)
        assert cbf.might_contain(5)   # one occurrence left
        assert cbf.remove(5)

    def test_delete_does_not_raise_fpp(self):
        """Unlike §7's in-place bit clearing, counter deletes keep the
        fill fraction at the pre-insert level."""
        cbf = CountingBloomFilter.for_capacity(200, 0.01, k=7)
        rng = random.Random(3)
        keys = rng.sample(range(10**9), 200)
        for key in keys:
            cbf.add(key)
        baseline = cbf.fill_fraction()
        extra = rng.sample(range(2 * 10**9, 3 * 10**9), 50)
        for key in extra:
            cbf.add(key)
        assert cbf.fill_fraction() >= baseline
        for key in extra:
            cbf.remove(key)
        assert cbf.fill_fraction() == pytest.approx(baseline, abs=0.01)

    def test_counter_saturation_safe(self):
        """Saturated counters are never decremented (no false negatives)."""
        cbf = CountingBloomFilter(8, k=2, counter_bits=2)   # tiny: saturates
        for i in range(50):
            cbf.add(i)
        for i in range(50):
            cbf.remove(i)
        # Saturation means residual bits may remain, but adds are intact.
        cbf.add(123)
        assert cbf.might_contain(123)


class TestScalable:
    def test_no_false_negatives_across_growth(self):
        sbf = ScalableBloomFilter(initial_capacity=32, max_fpp=0.01)
        keys = random.Random(4).sample(range(10**9), 500)
        for key in keys:
            sbf.add(key)
        assert sbf.n_stages > 1
        assert all(sbf.might_contain(k) for k in keys)

    def test_stage_growth_geometric(self):
        sbf = ScalableBloomFilter(initial_capacity=16, growth=2)
        for i in range(100):
            sbf.add(i)
        assert sbf._stage_capacity[:3] == [16, 32, 64]

    def test_compound_fpp_stays_bounded(self):
        """The point of the structure: fpp stays below the ceiling even
        after growing far past the initial capacity."""
        rng = random.Random(5)
        sbf = ScalableBloomFilter(initial_capacity=100, max_fpp=0.02)
        for key in rng.sample(range(10**9), 2000):
            sbf.add(key)
        probes = rng.sample(range(10**9, 2 * 10**9), 30_000)
        rate = sum(sbf.might_contain(p) for p in probes) / len(probes)
        assert rate < 0.05   # ceiling 0.02 with sampling slack

    def test_plain_filter_degrades_in_contrast(self):
        """The same overfill on a plain filter blows past the target."""
        rng = random.Random(6)
        bf = BloomFilter.for_capacity(100, 0.02, k=5)
        for key in rng.sample(range(10**9), 2000):
            bf.add(key)
        probes = rng.sample(range(10**9, 2 * 10**9), 10_000)
        rate = sum(bf.might_contain(p) for p in probes) / len(probes)
        assert rate > 0.5

    def test_expected_fpp_monotone(self):
        sbf = ScalableBloomFilter(initial_capacity=64, max_fpp=0.01)
        previous = 0.0
        for i in range(300):
            sbf.add(i)
            if i % 100 == 99:
                current = sbf.expected_fpp()
                assert current >= previous - 1e-12
                previous = current

    def test_size_grows_with_stages(self):
        sbf = ScalableBloomFilter(initial_capacity=16)
        one_stage = sbf.size_bytes()
        for i in range(200):
            sbf.add(i)
        assert sbf.size_bytes() > one_stage

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalableBloomFilter(initial_capacity=0)
        with pytest.raises(ValueError):
            ScalableBloomFilter(max_fpp=1.5)
        with pytest.raises(ValueError):
            ScalableBloomFilter(growth=1)
        with pytest.raises(ValueError):
            ScalableBloomFilter(tightening=0.0)
