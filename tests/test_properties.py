"""Property-based tests (hypothesis) for the core invariants.

The invariants the paper's design rests on:

* Bloom filters never produce false negatives.
* A BF-Tree probe finds every key the relation contains (false positives
  only cost extra reads, never correctness).
* The B+-Tree is an exact index: probe results equal a reference scan.
* Equation 1 and Equation 14 are mutually consistent.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig, BloomFilter
from repro.core.bloom import bits_for_capacity, capacity_for_bits, fpp_after_inserts
from repro.core.hashing import bloom_positions, key_to_int
from repro.storage import Relation

# Sorted, possibly-duplicated key columns of modest size.
sorted_keys = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=1, max_size=300
).map(sorted)

fpps = st.floats(min_value=1e-9, max_value=0.5, allow_nan=False)


class TestBloomFilterProperties:
    @given(
        keys=st.lists(st.integers(min_value=-(2**62), max_value=2**62),
                      min_size=1, max_size=100),
        nbits=st.integers(min_value=8, max_value=2048),
        k=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives(self, keys, nbits, k):
        bf = BloomFilter(nbits=nbits, k=k)
        for key in keys:
            bf.add(key)
        assert all(bf.might_contain(key) for key in keys)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=2**62),
                      min_size=1, max_size=80, unique=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_bulk_add_equals_scalar(self, keys):
        a = BloomFilter(512, 5, seed=7)
        b = BloomFilter(512, 5, seed=7)
        for key in keys:
            a.add(key)
        b.bulk_add(np.asarray(keys, dtype=np.int64))
        assert a._bits == b._bits

    @given(key=st.integers(min_value=-(2**63), max_value=2**63 - 1),
           k=st.integers(min_value=1, max_value=32),
           nbits=st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=80, deadline=None)
    def test_positions_in_range(self, key, k, nbits):
        positions = bloom_positions(key_to_int(key), k, nbits)
        assert len(positions) == k
        assert all(0 <= p < nbits for p in positions)


class TestEquationProperties:
    @given(n=st.integers(min_value=1, max_value=10**7), fpp=fpps)
    @settings(max_examples=100, deadline=None)
    def test_eq1_roundtrip(self, n, fpp):
        assert capacity_for_bits(bits_for_capacity(n, fpp), fpp) == \
            __import__("pytest").approx(n)

    @given(fpp=fpps, r1=st.floats(min_value=0, max_value=10),
           r2=st.floats(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_eq14_monotone_and_bounded(self, fpp, r1, r2):
        lo, hi = sorted((r1, r2))
        a, b = fpp_after_inserts(fpp, lo), fpp_after_inserts(fpp, hi)
        assert fpp <= a <= b <= 1.0

    @given(fpp=fpps, ratio=st.floats(min_value=0.001, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_eq14_composition(self, fpp, ratio):
        """Growing by r then measuring equals the closed form: the fpp of a
        filter holding N(1+r) keys designed for N."""
        direct = fpp_after_inserts(fpp, ratio)
        assert direct == __import__("pytest").approx(
            math.exp(math.log(fpp) / (1 + ratio))
        )


def _relation_from(keys):
    return Relation(
        {"k": np.asarray(keys, dtype=np.int64)}, tuple_size=256
    )


class TestBFTreeProperties:
    @given(keys=sorted_keys, fpp=st.sampled_from([0.2, 0.01, 1e-4]))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_search_finds_every_key(self, keys, fpp):
        rel = _relation_from(keys)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=fpp))
        for key in set(keys):
            result = tree.search(key)
            assert result.found
            assert result.matches == keys.count(key)

    @given(keys=sorted_keys)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_absent_keys_not_found_in_gaps(self, keys):
        """Keys outside the tree's key range are definite misses."""
        rel = _relation_from(keys)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.01))
        assert not tree.search(max(keys) + 1).found
        assert not tree.search(min(keys) - 1).found

    @given(keys=sorted_keys,
           window=st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_range_scan_counts_exact(self, keys, window):
        lo, hi = sorted(window)
        rel = _relation_from(keys)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.01))
        expected = sum(1 for key in keys if lo <= key <= hi)
        assert tree.range_scan(lo, hi).matches == expected

    @given(keys=sorted_keys)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_leaf_chain_partitions_pages(self, keys):
        rel = _relation_from(keys)
        tree = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.05))
        chain = tree.leaves_in_order()
        assert chain[0].min_pid == 0
        for prev, nxt in zip(chain, chain[1:]):
            assert nxt.min_pid == prev.min_pid + prev.pages_covered


class TestBPlusTreeProperties:
    @given(keys=sorted_keys)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exact_index(self, keys):
        rel = _relation_from(keys)
        tree = BPlusTree.bulk_load(rel, "k")
        for key in set(keys):
            assert tree.search(key).matches == keys.count(key)
        assert not tree.search(max(keys) + 1).found

    @given(keys=sorted_keys,
           window=st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_range_scan_exact(self, keys, window):
        lo, hi = sorted(window)
        rel = _relation_from(keys)
        tree = BPlusTree.bulk_load(rel, "k")
        expected = sum(1 for key in keys if lo <= key <= hi)
        assert tree.range_scan(lo, hi).matches == expected

    @given(keys=sorted_keys)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bf_and_bp_agree(self, keys):
        """The approximate index returns exactly what the exact one does."""
        rel = _relation_from(keys)
        bf = BFTree.bulk_load(rel, "k", BFTreeConfig(fpp=0.01))
        bp = BPlusTree.bulk_load(rel, "k")
        for key in list(set(keys))[:20]:
            assert bf.search(key).matches == bp.search(key).matches
