"""Protocol-conformance suite: every registered backend, one contract.

Parametrized over the full backend registry (:mod:`repro.api`), these
tests pin the unified Index protocol down:

* scalar/batch **bit-identity** — ``search_many`` / ``delete_many`` /
  ``range_scan_many`` produce exactly the per-item scalar loop's
  results, IOStats and simulated clock, on every backend (vectorized
  engine or generic fallback alike);
* normalized **return types** — ``SearchResult`` / ``DeleteOutcome`` /
  ``RangeScanResult`` everywhere;
* **capability-gated errors** — operations outside a backend's
  capabilities raise ``UnsupportedOperationError`` naming the missing
  capability, never ``AttributeError``;
* **serving equivalence** — shardable backends replay traffic
  bit-identically sharded vs unsharded; unshardable backends serve as
  a single-shard degenerate case whose batched replay is bit-identical
  to per-op dispatch.
"""

import math

import numpy as np
import pytest

from repro.api import (
    Capabilities,
    DeleteOutcome,
    Index,
    RangeScanResult,
    SearchResult,
    UnsupportedOperationError,
    make_index,
    registered_backends,
)
from repro.harness import run_probes, run_service
from repro.service import ShardedIndex
from repro.storage import build_stack
from repro.workloads import generate_trace

BACKENDS = registered_backends()
CONFIG = "MEM/SSD"
FPP = 1e-3

#: The documented capability matrix (also in the README).
EXPECTED_CAPS = {
    "bf": dict(ordered=True, mutable=True, scannable=True, durable=False),
    "bplus": dict(ordered=True, mutable=True, scannable=True, durable=False),
    "fd": dict(ordered=True, mutable=True, scannable=False, durable=False),
    "hash": dict(ordered=False, mutable=True, scannable=False,
                 durable=False),
    "silt": dict(ordered=True, mutable=False, scannable=False,
                 durable=False),
    "binsearch": dict(ordered=True, mutable=False, scannable=False,
                      durable=False),
    "durable": dict(ordered=True, mutable=True, scannable=True,
                    durable=True),
}

MUTABLE = [n for n, c in EXPECTED_CAPS.items() if c["mutable"]]
IMMUTABLE = [n for n, c in EXPECTED_CAPS.items() if not c["mutable"]]
SCANNABLE = [n for n, c in EXPECTED_CAPS.items() if c["scannable"]]
UNSCANNABLE = [n for n, c in EXPECTED_CAPS.items() if not c["scannable"]]
SHARDABLE = ["bf", "bplus"]
UNSHARDABLE = [n for n in BACKENDS if n not in SHARDABLE]


def _build(name, relation, unique=True):
    return make_index(name, relation, "pk", unique=unique, fpp=FPP)


def _probe_keys():
    # Hits spread over the domain plus guaranteed misses.
    return list(range(0, 8192, 257)) + [8192, 10**7, -5]


# ======================================================================
# registry + protocol shape
# ======================================================================
def test_registry_matches_expected_caps_table():
    assert BACKENDS == sorted(EXPECTED_CAPS)


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_satisfies_protocol(name, pk_relation):
    index = _build(name, pk_relation)
    assert isinstance(index, Index)
    assert index.backend_name == name


@pytest.mark.parametrize("name", BACKENDS)
def test_capability_descriptor(name, pk_relation):
    caps = _build(name, pk_relation).capabilities()
    assert isinstance(caps, Capabilities)
    expected = EXPECTED_CAPS[name]
    assert caps.ordered == expected["ordered"]
    assert caps.mutable == expected["mutable"]
    assert caps.scannable == expected["scannable"]
    assert caps.durable == expected["durable"]
    assert caps.unique is True


def test_unknown_backend_lists_registry():
    with pytest.raises(ValueError, match="registered backends: "):
        make_index("lsm", None, "pk")


def test_register_collision_errors_at_call_site():
    """Colliding with a builtin errors immediately (the builtins load
    before the collision check), and leaves the registry intact."""
    from repro.api import register

    with pytest.raises(ValueError, match="already registered"):
        register("bf", lambda relation, column, **cfg: None)
    assert registered_backends() == BACKENDS


def test_register_and_make_custom_backend(pk_relation):
    """The advertised extension point: register -> make_index -> serve."""
    from repro.api import register
    from repro.api.registry import _REGISTRY

    def build(relation, column, *, unique=False, config=None, fpp=None):
        return _build("bplus", relation, unique=unique)

    try:
        register("bplus-tuned", build)
        index = make_index("bplus-tuned", pk_relation, "pk", unique=True)
        # The instance reports the name it was built as, even though
        # its class is registered under another name too.
        assert index.backend_name == "bplus-tuned"
        assert make_index("bplus", pk_relation, "pk").backend_name == "bplus"
        assert "bplus-tuned" in registered_backends()
    finally:
        _REGISTRY.pop("bplus-tuned", None)


# ======================================================================
# scalar/batch bit-identity
# ======================================================================
@pytest.mark.parametrize("name", BACKENDS)
def test_search_many_bit_identical_to_scalar(name, pk_relation):
    keys = _probe_keys()
    index = _build(name, pk_relation)

    stack_s = build_stack(CONFIG)
    index.bind(stack_s)
    scalar = [index.search(k) for k in keys]
    index.unbind()

    stack_b = build_stack(CONFIG)
    index.bind(stack_b)
    sink: list[float] = []
    batch = index.search_many(keys, latency_sink=sink)
    index.unbind()

    assert batch == scalar
    assert all(isinstance(r, SearchResult) for r in batch)
    assert stack_b.stats.snapshot() == stack_s.stats.snapshot()
    assert math.isclose(stack_b.clock.now(), stack_s.clock.now(),
                        rel_tol=1e-9)
    assert len(sink) == len(keys)
    assert math.isclose(sum(sink), stack_b.clock.now(), rel_tol=1e-9)


@pytest.mark.parametrize("name", BACKENDS)
def test_run_probes_batch_flag_works_everywhere(name, pk_relation):
    """probe --batch must not silently degrade on any backend."""
    keys = np.asarray(list(range(0, 8192, 511)), dtype=np.int64)
    index = _build(name, pk_relation)
    scalar = run_probes(index, keys, CONFIG, batch=False)
    batch = run_probes(index, keys, CONFIG, batch=True)
    assert batch.hits == scalar.hits == len(keys)
    assert batch.io == scalar.io
    assert math.isclose(batch.avg_latency, scalar.avg_latency, rel_tol=1e-9)


@pytest.mark.parametrize("name", MUTABLE)
def test_delete_many_bit_identical_to_scalar(name, pk_relation):
    targets = list(range(100, 140)) + [10**7, 10**7]  # present + missing
    scalar_index = _build(name, pk_relation)
    batch_index = _build(name, pk_relation)
    s_out = [scalar_index.delete(k) for k in targets]
    sink: list[float] = []
    b_out = batch_index.delete_many(targets, latency_sink=sink)
    assert b_out == s_out
    assert all(isinstance(o, DeleteOutcome) for o in b_out)
    assert len(sink) == len(targets)


@pytest.mark.parametrize("name", SCANNABLE)
def test_range_scan_many_bit_identical_to_scalar(name, pk_relation):
    windows = [(0, 100), (4000, 4096), (8000, 9000)]
    index = _build(name, pk_relation)

    stack_s = build_stack(CONFIG)
    index.bind(stack_s)
    scalar = [index.range_scan(lo, hi) for lo, hi in windows]
    index.unbind()

    stack_b = build_stack(CONFIG)
    index.bind(stack_b)
    sink: list[float] = []
    batch = index.range_scan_many(windows, latency_sink=sink)
    index.unbind()

    assert batch == scalar
    assert all(isinstance(r, RangeScanResult) for r in batch)
    assert batch[0].matches == 101
    assert stack_b.stats.snapshot() == stack_s.stats.snapshot()
    assert len(sink) == len(windows)


# ======================================================================
# normalized mutation semantics
# ======================================================================
@pytest.mark.parametrize("name", MUTABLE)
def test_delete_returns_delete_outcome(name, pk_relation):
    index = _build(name, pk_relation)
    hit = index.delete(55)
    assert isinstance(hit, DeleteOutcome) and hit
    assert not index.search(55).found
    miss = index.delete(10**9)
    assert isinstance(miss, DeleteOutcome) and not miss


@pytest.mark.parametrize("name", MUTABLE)
def test_insert_roundtrip_via_write_target(name, pk_relation):
    """The backend-agnostic write pattern the service uses."""
    index = _build(name, pk_relation)
    key, tid = 4242, 4242  # pk relation: key k lives at tuple k
    index.insert(key, index.write_target(tid))
    assert index.search(key).found
    assert index.delete(key)
    assert not index.search(key).found


@pytest.mark.parametrize("name", IMMUTABLE)
def test_immutable_backends_gate_writes(name, pk_relation):
    index = _build(name, pk_relation)
    with pytest.raises(UnsupportedOperationError, match="not mutable"):
        index.insert(1, 0)
    with pytest.raises(UnsupportedOperationError, match="not mutable"):
        index.delete(1)
    with pytest.raises(UnsupportedOperationError):
        index.insert_many([1], [0])


@pytest.mark.parametrize("name", UNSCANNABLE)
def test_unscannable_backends_gate_scans(name, pk_relation):
    index = _build(name, pk_relation)
    with pytest.raises(UnsupportedOperationError, match="not scannable"):
        index.range_scan(1, 10)
    with pytest.raises(UnsupportedOperationError):
        index.range_scan_many([(1, 10)])
    # Legacy guard: callers that caught NotImplementedError keep working.
    with pytest.raises(NotImplementedError):
        index.range_scan(1, 10)


def test_unsupported_error_names_backend_and_capability(pk_relation):
    index = _build("silt", pk_relation)
    with pytest.raises(UnsupportedOperationError) as exc_info:
        index.insert(1, 0)
    message = str(exc_info.value)
    assert "silt" in message
    assert "insert" in message
    assert "mutable" in message
    assert "capabilities:" in message


# ======================================================================
# serving equivalence: sharded, degenerate and batched
# ======================================================================
@pytest.mark.parametrize("name", SHARDABLE)
def test_sharded_vs_unsharded_bit_identity(name, pk_relation):
    keys = _probe_keys()
    unsharded = _build(name, pk_relation)
    stack = build_stack(CONFIG)
    unsharded.bind(stack)
    ref = [unsharded.search(k) for k in keys]
    unsharded.unbind()

    service = ShardedIndex.build(pk_relation, "pk", n_shards=4, kind=name,
                                 unique=True, fpp=FPP)
    assert service.n_shards > 1
    service.bind(CONFIG)
    results = service.search_many(keys)
    merged = service.merged_io()
    service.unbind()
    assert results == ref
    assert merged == stack.stats.snapshot()


@pytest.mark.parametrize("name", UNSHARDABLE)
def test_unshardable_backend_serves_single_shard(name, pk_relation):
    service = ShardedIndex.build(pk_relation, "pk", n_shards=4, kind=name,
                                 unique=True, fpp=FPP)
    assert service.n_shards == 1
    service.bind(CONFIG)
    results = service.search_many([0, 1000, 10**9])
    service.unbind()
    assert [r.found for r in results] == [True, True, False]


@pytest.mark.parametrize("name", BACKENDS)
def test_service_trace_batch_fallback_bit_identity(name, pk_relation):
    """The acceptance bar: a mixed-workload trace replays bit-identically
    through the generic batch fallback vs per-op scalar dispatch —
    results, IOStats and per-op latencies — on every backend."""
    caps = EXPECTED_CAPS[name]
    mix = "read_heavy" if caps["mutable"] else "read_only"
    trace = generate_trace(pk_relation, "pk", mix=mix, n_ops=200,
                           skew="zipfian", seed=9)
    reports = []
    for batch in (True, False):
        service = ShardedIndex.build(pk_relation, "pk", n_shards=4,
                                     kind=name, unique=True, fpp=FPP)
        reports.append(run_service(service, trace, CONFIG, batch=batch))
    batched, scalar = reports
    assert batched.results == scalar.results
    assert batched.io == scalar.io
    assert np.allclose(batched.stats.op_latencies,
                       scalar.stats.op_latencies, rtol=1e-9)


# ======================================================================
# checkpoint state round-trip: snapshot_state -> restore_state
# ======================================================================
@pytest.mark.parametrize("name", BACKENDS)
def test_snapshot_restore_round_trip_bit_identity(name, pk_relation):
    """Every backend's structural state survives the checkpoint hooks.

    A freshly built index restored from a mutated source's
    ``snapshot_state()`` must behave *bit-identically* to the source:
    same search/scan results, same IOStats charges (node ids, chain
    order, filter bits and allocator cursors all survive), same
    structural footprint.  Immutable backends round-trip through the
    rebuild-format fallback.
    """
    source = _build(name, pk_relation)
    caps = source.capabilities()
    if caps.mutable:
        source.delete(55)
        source.delete_many([300, 301, 302])
        source.insert(301, source.write_target(301))  # resurrect one

    fresh = _build(name, pk_relation)
    fresh.restore_state(source.snapshot_state())

    assert fresh.height == source.height
    assert fresh.n_leaves == source.n_leaves
    assert fresh.size_pages == source.size_pages

    keys = _probe_keys() + [55, 300, 301, 302]
    stack_a, stack_b = build_stack(CONFIG), build_stack(CONFIG)
    source.bind(stack_a)
    ref = [source.search(k) for k in keys]
    source.unbind()
    fresh.bind(stack_b)
    got = [fresh.search(k) for k in keys]
    fresh.unbind()
    assert got == ref
    assert stack_b.stats.snapshot() == stack_a.stats.snapshot()

    if caps.scannable:
        windows = [(0, 100), (290, 310), (8000, 9000)]
        assert (fresh.range_scan_many(windows)
                == source.range_scan_many(windows))


@pytest.mark.parametrize("name", BACKENDS)
def test_restore_state_rejects_foreign_format(name, pk_relation):
    index = _build(name, pk_relation)
    with pytest.raises(ValueError, match="format|restore"):
        index.restore_state({"format": "not-a-real-format"})
