"""Tests for the experiment harness (probe runner, sweeps, break-even)."""

import pytest

from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig
from repro.harness import (
    break_even_curves,
    break_even_table,
    format_series,
    format_table,
    run_probes,
    sweep_bf_tree,
    us,
)
from repro.harness.breakeven import BreakEvenCurve
from repro.storage import MEM_SSD
from repro.workloads import point_probes


@pytest.fixture(scope="module")
def small_sweep(pk_relation):
    probes = point_probes(pk_relation, "pk", n_probes=40, hit_rate=1.0)
    return sweep_bf_tree(
        pk_relation, "pk", probes, fpps=[0.1, 1e-4],
        configs=[MEM_SSD], unique=True,
    )


class TestRunProbes:
    def test_counts(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=0.01),
                                unique=True)
        probes = point_probes(pk_relation, "pk", 50, hit_rate=1.0)
        stats = run_probes(tree, probes, "MEM/SSD")
        assert stats.n_probes == 50
        assert stats.hits == 50
        assert stats.avg_latency > 0
        assert stats.hit_rate == 1.0

    def test_partial_hit_rate(self, pk_relation):
        tree = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        probes = point_probes(pk_relation, "pk", 40, hit_rate=0.5)
        stats = run_probes(tree, probes, "MEM/SSD")
        assert stats.hits == 20

    def test_warm_faster_than_cold(self, pk_relation):
        tree = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        probes = point_probes(pk_relation, "pk", 30, hit_rate=1.0)
        cold = run_probes(tree, probes, "SSD/SSD", warm=False)
        warm = run_probes(tree, probes, "SSD/SSD", warm=True)
        assert warm.avg_latency < cold.avg_latency
        assert warm.index_reads_per_search < cold.index_reads_per_search

    def test_unbinds_after_run(self, pk_relation):
        tree = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        probes = point_probes(pk_relation, "pk", 5)
        run_probes(tree, probes, "MEM/SSD")
        assert tree.store.device is None

    def test_accepts_plain_key_list(self, pk_relation):
        tree = BPlusTree.bulk_load(pk_relation, "pk", unique=True)
        stats = run_probes(tree, [1, 2, 3], "MEM/SSD")
        assert stats.hits == 3


class TestSweep:
    def test_points_cover_grid(self, small_sweep):
        assert small_sweep.fpps == [0.1, 1e-4]
        assert small_sweep.configs == ["MEM/SSD"]
        assert len(small_sweep.points) == 2

    def test_capacity_gain_decreases_with_accuracy(self, small_sweep):
        assert small_sweep.capacity_gain(0.1) > small_sweep.capacity_gain(1e-4)

    def test_normalized_performance_improves_with_accuracy(self, small_sweep):
        assert small_sweep.normalized_performance(
            1e-4, "MEM/SSD"
        ) > small_sweep.normalized_performance(0.1, "MEM/SSD")

    def test_unknown_lookup(self, small_sweep):
        with pytest.raises(KeyError):
            small_sweep.latency(0.5, "MEM/SSD")
        with pytest.raises(KeyError):
            small_sweep.capacity_gain(0.123)


class TestBreakEven:
    def test_interpolated_crossing(self):
        curve = BreakEvenCurve(
            config="X",
            capacity_gains=(2.0, 10.0),
            normalized_performance=(1.2, 0.8),
        )
        gain = curve.break_even_gain()
        assert gain == pytest.approx(2.0 + 0.5 * 8.0)

    def test_never_crossing(self):
        curve = BreakEvenCurve("X", (2.0, 10.0), (0.5, 0.9))
        assert curve.break_even_gain() is None
        assert curve.break_even_gain(threshold=0.85) == 10.0

    def test_always_above(self):
        curve = BreakEvenCurve("X", (2.0, 10.0), (1.5, 1.2))
        assert curve.break_even_gain() == 10.0

    def test_curves_from_sweep(self, small_sweep):
        curves = break_even_curves(small_sweep)
        assert len(curves) == 1
        assert curves[0].config == "MEM/SSD"
        assert len(curves[0].capacity_gains) == 2

    def test_table_threshold(self, small_sweep):
        strict = break_even_table(small_sweep, threshold=1.0)
        parity = break_even_table(small_sweep, threshold=0.5)
        assert set(strict) == {"MEM/SSD"}
        assert parity["MEM/SSD"] is not None


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.00001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_title(self):
        assert format_table(["h"], [[1]], title="T").startswith("T\n")

    def test_series(self):
        text = format_series("bf", [1, 2], [0.5, 0.25])
        assert text == "bf: (1, 0.5) (2, 0.25)"

    def test_unit_helpers(self):
        assert us(1e-6) == pytest.approx(1.0)
