"""Tests for the workload generators (synthetic R, TPCH, SHD, queries)."""

import numpy as np
import pytest

from repro.workloads import (
    FIGURE13_FRACTIONS,
    point_probes,
    range_queries,
    shd,
    synthetic,
    tpch,
)


class TestSynthetic:
    def test_pk_unique_and_sorted(self, dup_relation):
        pk = np.asarray(dup_relation.columns["pk"])
        assert len(np.unique(pk)) == len(pk)
        assert np.all(np.diff(pk) > 0)

    def test_att1_sorted_with_duplicates(self, dup_relation):
        att1 = np.asarray(dup_relation.columns["att1"])
        assert np.all(np.diff(att1) >= 0)
        assert len(np.unique(att1)) < len(att1)

    def test_att1_cardinality_near_11(self):
        rel = synthetic.generate(65536)
        assert synthetic.average_cardinality(rel, "att1") == pytest.approx(
            11, rel=0.15
        )

    def test_tuple_geometry(self, dup_relation):
        assert dup_relation.tuple_size == 256
        assert dup_relation.tuples_per_page == 16

    def test_deterministic(self):
        a = synthetic.generate(1000, seed=5)
        b = synthetic.generate(1000, seed=5)
        assert np.array_equal(a.columns["att1"], b.columns["att1"])

    def test_seed_changes_data(self):
        a = synthetic.generate(1000, seed=5)
        b = synthetic.generate(1000, seed=6)
        assert not np.array_equal(a.columns["att1"], b.columns["att1"])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            synthetic.generate(0)

    def test_distinct_keys_helper(self, dup_relation):
        distinct = synthetic.distinct_keys(dup_relation, "att1")
        assert np.all(np.diff(distinct) > 0)


class TestTPCH:
    def test_sorted_on_shipdate(self, tpch_relation):
        ship = np.asarray(tpch_relation.columns["shipdate"])
        assert np.all(np.diff(ship) >= 0)

    def test_dbgen_date_relationships(self):
        rel = tpch.generate(4096, sort_on=None)
        order = np.asarray(rel.columns["orderdate"])
        ship = np.asarray(rel.columns["shipdate"])
        receipt = np.asarray(rel.columns["receiptdate"])
        commit = np.asarray(rel.columns["commitdate"])
        assert np.all((ship - order >= 1) & (ship - order <= 121))
        assert np.all((commit - order >= 30) & (commit - order <= 90))
        assert np.all((receipt - ship >= 1) & (receipt - ship <= 30))

    def test_cardinality_scales_with_n(self):
        small = tpch.generate(4096)
        large = tpch.generate(16384)
        assert tpch.shipdate_cardinality(large) > tpch.shipdate_cardinality(
            small
        )

    def test_implicit_clustering_spread_small(self):
        """Figure 1a: the three dates stay close in creation order."""
        rel = tpch.generate(16384, sort_on=None)
        spread = tpch.clustering_spread(rel)
        assert spread < tpch.ORDER_DATE_SPAN_DAYS * 0.05

    def test_clustering_series_shape(self, tpch_relation):
        series = tpch.clustering_series(tpch_relation, first_n=1000)
        assert set(series) == {"shipdate", "commitdate", "receiptdate"}
        assert all(len(v) == 1000 for v in series.values())

    def test_tuple_size_200(self, tpch_relation):
        assert tpch_relation.tuple_size == 200


class TestSHD:
    def test_timestamps_sorted(self, shd_relation):
        ts = np.asarray(shd_relation.columns["timestamp"])
        assert np.all(np.diff(ts) >= 0)

    def test_cardinality_profile_bands(self):
        """Match the published SHD statistics: mean ~52, min >= 21,
        99.7% <= ~126, heavy tail above."""
        rel = shd.generate(1 << 17, seed=3)
        profile = shd.cardinality_profile(rel)
        assert profile["mean"] == pytest.approx(52, rel=0.25)
        assert profile["min"] >= shd.MIN_CARDINALITY
        assert profile["max"] <= shd.MAX_CARDINALITY
        assert profile["p997"] <= shd.BULK_MAX_CARDINALITY * 1.3

    def test_heavy_tail_exists(self):
        rel = shd.generate(1 << 17, seed=3)
        profile = shd.cardinality_profile(rel)
        assert profile["max"] > shd.BULK_MAX_CARDINALITY

    def test_energy_monotone_per_client(self, shd_relation):
        clients = np.asarray(shd_relation.columns["client"])
        energy = np.asarray(shd_relation.columns["energy"])
        for client in np.unique(clients)[:5]:
            series = energy[clients == client]
            assert np.all(np.diff(series) >= 0)

    def test_clustering_series(self, shd_relation):
        series = shd.clustering_series(shd_relation, first_n=500)
        assert len(series["timestamp"]) == 500
        assert len(series["energy"]) == 500

    def test_deterministic(self):
        a = shd.generate(2048, seed=1)
        b = shd.generate(2048, seed=1)
        assert np.array_equal(a.columns["timestamp"], b.columns["timestamp"])


class TestPointProbes:
    def test_exact_hit_rate(self, pk_relation):
        probes = point_probes(pk_relation, "pk", n_probes=200, hit_rate=0.25)
        assert probes.hit_rate == pytest.approx(0.25)

    def test_hits_exist_in_column(self, tpch_relation):
        probes = point_probes(tpch_relation, "shipdate", 100, hit_rate=1.0)
        present = set(np.asarray(tpch_relation.columns["shipdate"]).tolist())
        assert all(int(k) in present for k in probes.keys)

    def test_misses_absent_from_column(self, tpch_relation):
        probes = point_probes(tpch_relation, "shipdate", 100, hit_rate=0.0)
        present = set(np.asarray(tpch_relation.columns["shipdate"]).tolist())
        assert all(int(k) not in present for k in probes.keys)

    def test_misses_for_dense_domain(self, pk_relation):
        """pk covers every value in range; misses must still be found."""
        probes = point_probes(pk_relation, "pk", 50, hit_rate=0.0)
        assert len(probes) == 50
        assert all(not (0 <= int(k) < 8192) for k in probes.keys)

    def test_deterministic(self, pk_relation):
        a = point_probes(pk_relation, "pk", 100, seed=9)
        b = point_probes(pk_relation, "pk", 100, seed=9)
        assert np.array_equal(a.keys, b.keys)

    def test_invalid_hit_rate(self, pk_relation):
        with pytest.raises(ValueError):
            point_probes(pk_relation, "pk", 10, hit_rate=1.5)


class TestRangeQueries:
    def test_width_matches_fraction(self, pk_relation):
        for query in range_queries(pk_relation, "pk", fraction=0.1):
            assert query.hi - query.lo + 1 == int(8192 * 0.1)

    def test_within_domain(self, pk_relation):
        for query in range_queries(pk_relation, "pk", 0.05):
            assert query.lo >= 0

    def test_figure13_fractions(self):
        assert FIGURE13_FRACTIONS == (0.01, 0.05, 0.10, 0.20)

    def test_invalid_fraction(self, pk_relation):
        with pytest.raises(ValueError):
            range_queries(pk_relation, "pk", 0.0)
