"""Shared fixtures: small relations and storage stacks for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import Relation, build_stack
from repro.workloads import shd, synthetic, tpch


@pytest.fixture(scope="session")
def pk_relation() -> Relation:
    """8192 unique, sorted primary keys (512 data pages of 16 tuples)."""
    return Relation(
        {"pk": np.arange(8192, dtype=np.int64)}, tuple_size=256, name="pk-rel"
    )


@pytest.fixture(scope="session")
def dup_relation() -> Relation:
    """Sorted keys with ~11 duplicates each (the paper's ATT1 shape)."""
    return synthetic.generate(8192, avg_cardinality=11, seed=3)


@pytest.fixture(scope="session")
def tpch_relation() -> Relation:
    return tpch.generate(8192, seed=5)


@pytest.fixture(scope="session")
def shd_relation() -> Relation:
    return shd.generate(8192, seed=11)


@pytest.fixture()
def mem_ssd_stack():
    return build_stack("MEM/SSD")


@pytest.fixture()
def hdd_stack():
    return build_stack("HDD/HDD")
