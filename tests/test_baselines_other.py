"""Unit tests for hash index, FD-Tree, SILT, sorted-file search, and the
compressed B+-Tree size model."""

import numpy as np
import pytest

from repro.baselines import (
    BPlusTree,
    FDTree,
    FDTreeConfig,
    HashIndex,
    PrefixCompressionModel,
    SiltConfig,
    SiltStore,
    SortedFileSearch,
)
from repro.storage import Relation, build_stack


class TestHashIndex:
    def test_all_keys_found(self, pk_relation):
        index = HashIndex.build(pk_relation, "pk", unique=True)
        index.bind(build_stack("MEM/SSD"))
        for key in range(0, 8192, 111):
            assert index.search(key).found

    def test_miss(self, pk_relation):
        index = HashIndex.build(pk_relation, "pk")
        assert not index.search(10**9).found

    def test_duplicates(self, dup_relation):
        index = HashIndex.build(dup_relation, "att1")
        index.bind(build_stack("MEM/SSD"))
        att1 = np.asarray(dup_relation.columns["att1"])
        key = int(att1[500])
        assert index.search(key).matches == int(np.count_nonzero(att1 == key))

    def test_single_data_read_for_unique(self, pk_relation):
        index = HashIndex.build(pk_relation, "pk", unique=True)
        stack = build_stack("MEM/HDD")
        index.bind(stack)
        index.search(100)
        assert stack.stats.data_reads == 1

    def test_insert_delete(self, pk_relation):
        index = HashIndex.build(pk_relation, "pk")
        index.insert(99999, 0)
        assert index.search(99999).found
        assert index.delete(99999)
        assert not index.search(99999).found

    def test_delete_specific_rid(self, pk_relation):
        index = HashIndex.build(pk_relation, "pk")
        index.insert(5, 77)
        assert index.delete(5, tid=77)
        assert index.search(5).matches == 1

    def test_size_includes_load_factor(self, pk_relation):
        index = HashIndex.build(pk_relation, "pk")
        raw = 8192 * 16
        assert index.size_bytes == int(raw / HashIndex.LOAD_FACTOR)


class TestFDTree:
    def test_bulk_load_level_count(self, pk_relation):
        """8192 entries with head=256 and ratio=16: L1 holds 4096, so the
        data lands in L2 with a fence-only L1 above it."""
        tree = FDTree.bulk_load(pk_relation, "pk", unique=True)
        assert tree.n_levels == 2
        assert tree.levels[0] == []      # fence-only
        assert len(tree.levels[1]) == 8192

    def test_all_keys_found(self, pk_relation):
        tree = FDTree.bulk_load(pk_relation, "pk", unique=True)
        tree.bind(build_stack("MEM/SSD"))
        for key in range(0, 8192, 113):
            assert tree.search(key).found

    def test_one_index_read_per_level(self, pk_relation):
        tree = FDTree.bulk_load(pk_relation, "pk", unique=True)
        stack = build_stack("SSD/SSD")
        tree.bind(stack)
        tree.search(4000)
        assert stack.stats.index_reads == tree.n_levels

    def test_miss(self, pk_relation):
        tree = FDTree.bulk_load(pk_relation, "pk")
        assert not tree.search(10**9).found

    def test_inserts_visible_from_head(self, pk_relation):
        tree = FDTree.bulk_load(pk_relation, "pk", unique=True)
        tree.insert(10**6, 0)
        assert tree.search(10**6).found

    def test_merge_cascade(self):
        rel = Relation({"k": np.arange(64, dtype=np.int64)}, tuple_size=256)
        tree = FDTree.bulk_load(
            rel, "k", FDTreeConfig(size_ratio=2, head_pages=1)
        )
        head_capacity = tree.config.entries_per_page
        for i in range(3 * head_capacity):
            tree.insert(10**6 + i, 0)
        assert tree.n_levels >= 1
        assert len(tree.head) <= head_capacity
        for i in range(0, 3 * head_capacity, 61):
            assert tree.search(10**6 + i).found

    def test_duplicates(self, dup_relation):
        tree = FDTree.bulk_load(dup_relation, "att1")
        tree.bind(build_stack("MEM/SSD"))
        att1 = np.asarray(dup_relation.columns["att1"])
        key = int(att1[123])
        assert tree.search(key).matches == int(np.count_nonzero(att1 == key))

    def test_choose_size_ratio_bounds(self):
        assert 2 <= FDTreeConfig.choose_size_ratio(10**6) <= 256
        with pytest.raises(ValueError):
            FDTreeConfig.choose_size_ratio(1000, update_fraction=2.0)

    def test_size_close_to_bptree(self, pk_relation):
        """Paper §5: FD-Tree has the same size as a vanilla B+-Tree."""
        fd = FDTree.bulk_load(pk_relation, "pk")
        bp = BPlusTree.bulk_load(pk_relation, "pk")
        assert 0.5 < fd.size_pages / bp.size_pages < 1.5

    def test_delete_hides_key_and_reports_outcome(self, pk_relation):
        tree = FDTree.bulk_load(pk_relation, "pk", unique=True)
        assert tree.search(500).found
        outcome = tree.delete(500)
        assert outcome and outcome.tombstoned
        assert not tree.search(500).found
        assert not tree.delete(10**9)  # missing key: removed=False

    def test_reinsert_after_delete_is_visible(self, pk_relation):
        """Recency: a reinsert cancels the pending tombstone instead of
        being shadowed by it."""
        tree = FDTree.bulk_load(pk_relation, "pk", unique=True)
        assert tree.delete(500, tid=500)
        assert not tree.search(500).found
        tree.insert(500, 500)
        assert tree.search(500).found

    def test_reinsert_above_merged_tombstone_survives_merges(self):
        """A tombstone that migrated deeper than a later reinsert must
        not mask it — neither in the probe path (shallow wins) nor
        after a merge (tombstone/entry pairs annihilate)."""
        rel = Relation({"k": np.arange(64, dtype=np.int64)}, tuple_size=256)
        tree = FDTree.bulk_load(
            rel, "k", FDTreeConfig(size_ratio=2, head_pages=1), unique=True
        )
        head_capacity = tree.config.entries_per_page
        assert tree.delete(10, tid=10)
        # Push the tombstone down at least one level, then reinsert.
        for i in range(head_capacity + 1):
            tree.insert(10**6 + i, 0)
        tree.insert(10, 10)
        assert tree.search(10).found
        # Merge the reinserted entry down onto the tombstone: the pair
        # annihilates and the entry stays live via deeper bulk data.
        for i in range(2 * head_capacity):
            tree.insert(2 * 10**6 + i, 0)
        assert tree.search(10).found

    def test_delete_charges_probe_descent(self, pk_relation):
        """The liveness check reads the same pages a probe reads."""
        tree = FDTree.bulk_load(pk_relation, "pk", unique=True)
        stack = build_stack("SSD/SSD")
        tree.bind(stack)
        before = stack.stats.index_reads
        tree.delete(4000)
        assert stack.stats.index_reads - before == tree.n_levels


class TestSilt:
    def test_all_keys_found(self, pk_relation):
        store = SiltStore.build(pk_relation, "pk")
        store.bind(build_stack("MEM/SSD"))
        for key in range(0, 8192, 119):
            assert store.search(key).found

    def test_miss(self, pk_relation):
        store = SiltStore.build(pk_relation, "pk")
        assert not store.search(10**9).found

    def test_single_store_read(self, pk_relation):
        store = SiltStore.build(pk_relation, "pk")
        stack = build_stack("SSD/SSD")
        store.bind(stack)
        store.search(1234)
        assert stack.stats.index_reads == 1

    def test_uncached_trie_costs_extra_read(self, pk_relation):
        store = SiltStore.build(
            pk_relation, "pk", SiltConfig(trie_cached=False)
        )
        stack = build_stack("SSD/SSD")
        store.bind(stack)
        store.search(1234)
        assert stack.stats.index_reads == 2

    def test_no_range_scans(self, pk_relation):
        store = SiltStore.build(pk_relation, "pk")
        with pytest.raises(NotImplementedError):
            store.range_scan(1, 10)

    def test_smaller_than_bptree(self, pk_relation):
        """Paper §5: SILT's index is well under the B+-Tree's size."""
        silt = SiltStore.build(pk_relation, "pk")
        bp = BPlusTree.bulk_load(pk_relation, "pk")
        assert silt.size_pages < bp.size_pages


class TestSortedFileSearch:
    def test_requires_sorted(self):
        rel = Relation({"k": np.asarray([2, 1], dtype=np.int64)}, tuple_size=256)
        with pytest.raises(ValueError):
            SortedFileSearch(rel, "k")

    @pytest.mark.parametrize("method", ["binary_search", "interpolation_search"])
    def test_all_keys_found(self, pk_relation, method):
        sf = SortedFileSearch(pk_relation, "pk", unique=True)
        sf.bind(build_stack("MEM/SSD"))
        for key in range(0, 8192, 127):
            assert getattr(sf, method)(key).found, key

    @pytest.mark.parametrize("method", ["binary_search", "interpolation_search"])
    def test_misses(self, pk_relation, method):
        sf = SortedFileSearch(pk_relation, "pk", unique=True)
        sf.bind(build_stack("MEM/SSD"))
        assert not getattr(sf, method)(8192).found

    def test_binary_search_log_bound(self, pk_relation):
        sf = SortedFileSearch(pk_relation, "pk", unique=True)
        stack = build_stack("MEM/SSD")
        sf.bind(stack)
        sf.binary_search(5000)
        assert stack.stats.data_reads <= 10  # ceil(log2(512)) + 1

    def test_interpolation_faster_on_uniform(self, pk_relation):
        """log log N beats log N on uniformly distributed keys."""
        binary_stack = build_stack("MEM/SSD")
        interp_stack = build_stack("MEM/SSD")
        sf = SortedFileSearch(pk_relation, "pk", unique=True)
        total_b = total_i = 0
        for key in range(100, 8000, 411):
            sf.bind(binary_stack)
            sf.binary_search(key)
            sf.bind(interp_stack)
            sf.interpolation_search(key)
        assert interp_stack.stats.data_reads < binary_stack.stats.data_reads

    def test_duplicates_collected(self, dup_relation):
        sf = SortedFileSearch(dup_relation, "att1")
        sf.bind(build_stack("MEM/SSD"))
        att1 = np.asarray(dup_relation.columns["att1"])
        key = int(att1[2000])
        assert sf.binary_search(key).matches == int(
            np.count_nonzero(att1 == key)
        )

    def test_zero_index_size(self, pk_relation):
        sf = SortedFileSearch(pk_relation, "pk")
        assert sf.size_pages == 0 and sf.size_bytes == 0


class TestPrefixCompressionModel:
    def test_compressed_smaller_than_raw(self):
        model = PrefixCompressionModel(key_size=32)
        raw_leaves = 10**6 * 40 / 4096
        assert model.leaf_pages(10**6, 10**6) < raw_leaves

    def test_key_bytes_bounded(self):
        model = PrefixCompressionModel(key_size=32)
        assert 1.0 <= model.compressed_key_bytes(10**6) <= 32

    def test_single_key(self):
        assert PrefixCompressionModel(key_size=8).compressed_key_bytes(1) == 1.0

    def test_total_includes_directory(self):
        model = PrefixCompressionModel(key_size=32)
        assert model.total_pages(10**6, 10**6) > model.leaf_pages(10**6, 10**6)

    def test_size_bytes(self):
        model = PrefixCompressionModel(key_size=8)
        assert model.size_bytes(1000, 1000) == model.total_pages(1000, 1000) * 4096
