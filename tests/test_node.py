"""Unit tests for the shared internal-node machinery (InnerTree)."""

import pytest

from repro.core.node import InnerTree, InternalNode, NodeStore, fanout_for
from repro.storage import IOStats, SimulatedClock
from repro.storage.device import SSD_PROFILE, Device


class TestFanout:
    def test_equation_two_default(self):
        assert fanout_for(8, 8, 4096) == 256

    def test_paper_figure4_fanout(self):
        assert fanout_for(32, 8, 4096) == 102

    def test_too_small_page(self):
        with pytest.raises(ValueError):
            fanout_for(4096, 4096, 4096)


class TestInternalNode:
    def _node(self):
        return InternalNode(node_id=0, keys=[10, 20, 30],
                            children=[100, 101, 102, 103])

    def test_child_routing(self):
        node = self._node()
        assert node.child_for(5) == 100
        assert node.child_for(10) == 101    # separator routes right
        assert node.child_for(15) == 101
        assert node.child_for(30) == 103
        assert node.child_for(99) == 103

    def test_child_index(self):
        assert self._node().child_index(102) == 2


def _tree(fanout=4):
    return InnerTree(NodeStore(), fanout=fanout)


class TestBuild:
    def test_single_leaf(self):
        tree = _tree()
        tree.build([], [77])
        assert tree.descend(123, charge_io=False) == (77, [])
        assert tree.height == 1
        assert tree.n_internal_nodes == 0

    def test_one_level(self):
        tree = _tree(fanout=4)
        tree.build([10, 20], [0, 1, 2])
        assert tree.descend(5, charge_io=False)[0] == 0
        assert tree.descend(10, charge_io=False)[0] == 1
        assert tree.descend(25, charge_io=False)[0] == 2
        assert tree.height == 2

    def test_two_levels(self):
        leaf_ids = list(range(100, 116))
        separators = [i * 10 for i in range(1, 16)]
        tree = _tree(fanout=4)
        tree.build(separators, leaf_ids)
        assert tree.height == 3
        for i, leaf in enumerate(leaf_ids):
            key = i * 10 + 5
            assert tree.descend(key, charge_io=False)[0] == leaf

    def test_iter_leaf_ids_ordered(self):
        leaf_ids = list(range(100, 120))
        separators = list(range(1, 20))
        tree = _tree(fanout=3)
        tree.build(separators, leaf_ids)
        assert tree.iter_leaf_ids() == leaf_ids

    def test_bad_separator_count(self):
        with pytest.raises(ValueError):
            _tree().build([1, 2, 3], [0, 1])

    def test_descend_empty_tree(self):
        with pytest.raises(LookupError):
            _tree().descend(1)

    def test_no_dangling_single_child(self):
        """Packing never leaves a one-child internal node."""
        tree = _tree(fanout=4)
        leaf_ids = list(range(5))     # 5 = 4 + 1 would dangle
        tree.build([10, 20, 30, 40], leaf_ids)
        for node in tree.nodes.values():
            assert len(node.children) >= 2


class TestDescendIO:
    def test_charges_one_read_per_level(self):
        store = NodeStore(
            device=Device(SSD_PROFILE, SimulatedClock(), IOStats(), role="index")
        )
        tree = InnerTree(store, fanout=4)
        leaf_ids = list(range(100, 116))
        tree.build([i * 10 for i in range(1, 16)], leaf_ids)
        before = store.device.stats.index_reads
        _, path = tree.descend(55)
        assert store.device.stats.index_reads - before == len(path) == 2


class TestSplits:
    def test_degenerate_split_creates_root(self):
        tree = _tree(fanout=4)
        tree.register_single_leaf(0)
        tree.split_child(0, separator=50, new_leaf=1)
        assert tree.root_id is not None
        assert tree.descend(10, charge_io=False)[0] == 0
        assert tree.descend(50, charge_io=False)[0] == 1

    def test_split_inserts_separator(self):
        tree = _tree(fanout=4)
        tree.build([10, 20], [0, 1, 2])
        tree.split_child(1, separator=15, new_leaf=3)
        assert tree.descend(12, charge_io=False)[0] == 1
        assert tree.descend(16, charge_io=False)[0] == 3

    def test_cascading_splits_keep_routing(self):
        tree = _tree(fanout=4)
        tree.register_single_leaf(0)
        # Split leaves repeatedly: leaf i covers keys [i*10, i*10+10).
        next_leaf = 1
        for sep in range(10, 300, 10):
            victim = tree.descend(sep - 1, charge_io=False)[0]
            tree.split_child(victim, separator=sep, new_leaf=next_leaf)
            next_leaf += 1
        for i in range(30):
            leaf = tree.descend(i * 10 + 5, charge_io=False)[0]
            assert leaf == i
        for node in tree.nodes.values():
            assert len(node.children) <= 4
            assert len(node.keys) == len(node.children) - 1

    def test_registering_into_nonempty_fails(self):
        tree = _tree()
        tree.register_single_leaf(0)
        with pytest.raises(ValueError):
            tree.register_single_leaf(1)
