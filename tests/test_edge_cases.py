"""Edge cases across the stack: degenerate geometries, tiny relations,
extreme parameters, and failure injection."""

import numpy as np
import pytest

from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig, BloomFilter
from repro.core.bf_leaf import LEAF_HEADER_BYTES, BFLeafGeometry
from repro.storage import PAGE_SIZE, Relation, build_stack


class TestTinyRelations:
    def test_single_tuple(self):
        rel = Relation({"k": np.asarray([42], dtype=np.int64)}, tuple_size=256)
        tree = BFTree.bulk_load(rel, "k", unique=True)
        assert tree.n_leaves == 1
        assert tree.height == 1
        assert tree.search(42).found
        assert not tree.search(41).found

    def test_single_page(self):
        rel = Relation({"k": np.arange(16, dtype=np.int64)}, tuple_size=256)
        tree = BFTree.bulk_load(rel, "k", unique=True)
        for key in range(16):
            assert tree.search(key).found

    def test_one_tuple_per_page(self):
        """tuple_size == page size: every tuple is its own page."""
        rel = Relation(
            {"k": np.arange(32, dtype=np.int64)}, tuple_size=PAGE_SIZE
        )
        assert rel.tuples_per_page == 1
        assert rel.npages == 32
        tree = BFTree.bulk_load(rel, "k", unique=True)
        for key in (0, 15, 31):
            result = tree.search(key)
            assert result.found and result.tids == [key]

    def test_bptree_single_tuple(self):
        rel = Relation({"k": np.asarray([7], dtype=np.int64)}, tuple_size=256)
        tree = BPlusTree.bulk_load(rel, "k", unique=True)
        assert tree.search(7).found
        assert not tree.search(8).found

    def test_all_identical_keys(self):
        rel = Relation(
            {"k": np.zeros(256, dtype=np.int64)}, tuple_size=256
        )
        tree = BFTree.bulk_load(rel, "k")
        result = tree.search(0)
        assert result.matches == 256
        assert not tree.search(1).found


class TestExtremeParameters:
    def test_very_loose_fpp(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=0.9),
                                unique=True)
        assert tree.search(100).found    # correctness regardless of fpp

    def test_very_tight_fpp(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-20),
                                unique=True)
        stack = build_stack("MEM/SSD")
        tree.bind(stack)
        for key in range(0, 8192, 511):
            assert tree.search(key).found
        assert stack.stats.false_reads == 0

    def test_single_hash_function(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=0.01, hash_count=1),
            unique=True,
        )
        assert tree.search(4000).found

    def test_large_granularity(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=0.01, pages_per_bf=64),
            unique=True,
        )
        result = tree.search(4000)
        assert result.found
        # A matching group fetch reads up to 64 pages.
        assert result.pages_read <= 64 + result.false_pages + 1

    def test_nonstandard_page_size(self):
        rel = Relation({"k": np.arange(512, dtype=np.int64)}, tuple_size=256)
        config = BFTreeConfig(fpp=0.01, page_size=1024)
        tree = BFTree.bulk_load(rel, "k", config, unique=True)
        assert tree.search(77).found
        assert tree.size_bytes == tree.size_pages * 1024


class TestLeafGeometryBudget:
    def test_filters_fit_page_budget(self):
        for fpp in (0.3, 0.01, 1e-6, 1e-12):
            geo = BFLeafGeometry.plan(fpp, expected_keys_per_group=16)
            assert geo.max_filters * geo.bits_per_bf <= (
                (geo.page_size - LEAF_HEADER_BYTES) * 8
            )

    def test_counting_budget_includes_counter_bits(self):
        plain = BFLeafGeometry.plan(0.01, 16, filter_kind="plain")
        counting = BFLeafGeometry.plan(0.01, 16, filter_kind="counting")
        budget = (4096 - LEAF_HEADER_BYTES) * 8
        assert counting.max_filters * counting.bits_per_bf * 4 <= budget
        assert counting.max_filters < plain.max_filters

    def test_invalid_filter_kind(self):
        with pytest.raises(ValueError):
            BFLeafGeometry.plan(0.01, 16, filter_kind="cuckoo")


class TestStringKeys:
    def test_bloom_filter_string_keys(self):
        bf = BloomFilter(512, 5)
        words = [f"sensor-{i}" for i in range(40)]
        for word in words:
            bf.add(word)
        assert all(bf.might_contain(w) for w in words)

    def test_mixed_type_rejected(self):
        bf = BloomFilter(64, 3)
        with pytest.raises(TypeError):
            bf.add(3.14159)


class TestProbeRobustness:
    def test_search_far_outside_domain(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", unique=True)
        for key in (-(2**62), 2**62):
            assert not tree.search(key).found

    def test_range_scan_entire_domain(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-4),
                                unique=True)
        result = tree.range_scan(-100, 10**9)
        assert result.matches == 8192

    def test_range_scan_single_key(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-4),
                                unique=True)
        assert tree.range_scan(4000, 4000).matches == 1

    def test_rebind_to_other_stack(self, pk_relation):
        """A tree can move between storage stacks; counters stay separate."""
        tree = BFTree.bulk_load(pk_relation, "pk", unique=True)
        first = build_stack("MEM/SSD")
        second = build_stack("HDD/HDD")
        tree.bind(first)
        tree.search(10)
        tree.unbind()
        tree.bind(second)
        tree.search(10)
        assert first.stats.data_reads >= 1
        assert second.stats.data_reads >= 1
        assert second.clock.now() > first.clock.now()

    def test_repeated_bulk_loads_identical(self, pk_relation):
        a = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-3),
                             unique=True)
        b = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-3),
                             unique=True)
        assert a.size_pages == b.size_pages
        assert a.n_leaves == b.n_leaves
        la, lb = a.leaves_in_order(), b.leaves_in_order()
        assert [l.min_pid for l in la] == [l.min_pid for l in lb]
        assert all(
            x._bits == y._bits
            for p, q in zip(la, lb)
            for x, y in zip(p.filters, q.filters)
        )
