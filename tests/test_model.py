"""Tests for the analytical model: Equations 2-14 and the Figure 4 claims."""

import math

import pytest

from repro.model import (
    COMPRESSED_SIZE_RATIO,
    FIGURE4_PARAMS,
    ModelParams,
    bf_cost,
    bf_height,
    bf_keys_per_page,
    bf_leaves,
    bf_pages_per_leaf,
    bf_size,
    bp_cost,
    bp_height,
    bp_leaves,
    bp_size,
    compare_at,
    crossover_fpp,
    fanout,
    insert_series,
    matching_pages,
    smallest_at_equal_size,
    summarize,
    sustainable_insert_ratio,
    sweep_fpp,
    tradeoff_summary,
)
from repro.model.comparison import default_fpp_grid
from repro.model.inserts import figure14a_grid, figure14b_grid


class TestParams:
    def test_defaults_are_figure4(self):
        p = FIGURE4_PARAMS
        assert (p.pagesize, p.tuplesize, p.keysize, p.ptrsize) == (
            4096, 256, 32, 8,
        )
        assert (p.idxIO, p.dataIO, p.seqDtIO) == (1, 50, 5)
        assert p.relation_bytes == 1 << 30   # 1 GB

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelParams(fpp=0)
        with pytest.raises(ValueError):
            ModelParams(avgcard=0.5)
        with pytest.raises(ValueError):
            ModelParams(tuplesize=8192)

    def test_with_fpp(self):
        assert FIGURE4_PARAMS.with_fpp(0.5).fpp == 0.5

    def test_with_io(self):
        p = FIGURE4_PARAMS.with_io(1, 2, 3)
        assert (p.idxIO, p.dataIO, p.seqDtIO) == (1, 2, 3)


class TestEquations:
    def test_eq2_fanout(self):
        assert fanout(FIGURE4_PARAMS) == pytest.approx(4096 / 40)

    def test_eq3_bp_leaves(self):
        p = FIGURE4_PARAMS
        assert bp_leaves(p) == pytest.approx(p.notuples * 40 / 4096)

    def test_eq4_height(self):
        assert bp_height(FIGURE4_PARAMS) == 4

    def test_eq5_keys_per_page(self):
        p = FIGURE4_PARAMS.with_fpp(1e-3)
        expected = -4096 * 8 * math.log(2) ** 2 / math.log(1e-3)
        assert bf_keys_per_page(p) == pytest.approx(expected)

    def test_eq6_dedups_by_cardinality(self):
        p = FIGURE4_PARAMS.with_fpp(1e-3)
        p11 = ModelParams(**{**vars(p), "avgcard": 11.0})
        assert bf_leaves(p11) == pytest.approx(bf_leaves(p) / 11)

    def test_eq7_shorter_than_bp(self):
        p = FIGURE4_PARAMS.with_fpp(1e-3)
        assert bf_height(p) <= bp_height(p)

    def test_eq8_pages_per_leaf(self):
        p = FIGURE4_PARAMS.with_fpp(1e-3)
        expected = bf_keys_per_page(p) * 1.0 * 256 / 4096
        assert bf_pages_per_leaf(p) == pytest.approx(expected)

    def test_eq9_eq10_sizes(self):
        p = FIGURE4_PARAMS.with_fpp(1e-3)
        assert bf_size(p) < bp_size(p)

    def test_eq11_matching_pages(self):
        assert matching_pages(FIGURE4_PARAMS) == 1
        wide = ModelParams(**{**vars(FIGURE4_PARAMS), "avgcard": 100.0})
        assert matching_pages(wide) == math.ceil(100 * 256 / 4096)

    def test_eq12_cost(self):
        p = FIGURE4_PARAMS
        assert bp_cost(p) == bp_height(p) * 1 + 1 * 50

    def test_eq13_false_positive_term(self):
        cheap = bf_cost(FIGURE4_PARAMS.with_fpp(1e-9))
        pricey = bf_cost(FIGURE4_PARAMS.with_fpp(0.3))
        assert pricey > cheap

    def test_summarize_keys(self):
        summary = summarize(FIGURE4_PARAMS)
        for symbol in ("BPleaves", "BFleaves", "BPcost", "BFcost", "mP"):
            assert symbol in summary


class TestFigure4Claims:
    def test_crossover_near_1e_minus_3(self):
        """Paper: BF-Tree beats B+-Tree on time for fpp <= ~0.001."""
        crossing = crossover_fpp(FIGURE4_PARAMS)
        assert crossing is not None
        assert 1e-4 <= crossing <= 3e-3

    def test_silt_bands(self):
        """Paper: SILT 5% faster cached, 32% slower when trie loads."""
        point = compare_at(FIGURE4_PARAMS.with_fpp(1e-3))
        assert point.silt_time_cached == pytest.approx(0.95, abs=0.02)
        assert point.silt_time_loaded == pytest.approx(1.32, abs=0.03)

    def test_fd_size_equals_bp(self):
        assert compare_at(FIGURE4_PARAMS).fd_size == 1.0

    def test_fd_time_competitive(self):
        point = compare_at(FIGURE4_PARAMS.with_fpp(1e-3))
        assert abs(point.fd_time - point.bf_time) < 0.1

    def test_bf_size_meets_compressed_near_1e_minus_8(self):
        """Paper: BF-Tree matches the compressed B+-Tree at fpp = 1e-8."""
        fpp = smallest_at_equal_size(FIGURE4_PARAMS)
        assert 1e-10 < fpp < 1e-6
        point = compare_at(FIGURE4_PARAMS.with_fpp(fpp))
        assert point.bf_size == pytest.approx(COMPRESSED_SIZE_RATIO, rel=0.05)

    def test_smallest_index_in_band(self):
        """Paper: for fpp in [1e-8, 1e-3] BF-Tree is smallest with time
        within 5% of the fastest configuration.  At the 1e-8 edge the
        BF-Tree and the compressed B+-Tree sizes coincide (within ~25%)."""
        for exp in range(-8, -2):
            point = compare_at(FIGURE4_PARAMS.with_fpp(10.0**exp))
            assert point.bf_size <= COMPRESSED_SIZE_RATIO * 1.25
            assert point.bf_size < point.silt_size < point.fd_size
            fastest = min(point.fd_time, point.silt_time_cached, point.bf_time)
            assert point.bf_time <= fastest * 1.06

    def test_sweep_ordering(self):
        grid = default_fpp_grid()
        points = sweep_fpp(FIGURE4_PARAMS, grid)
        sizes = [pt.bf_size for pt in points]
        assert sizes == sorted(sizes, reverse=True)  # smaller fpp = bigger


class TestFigure14:
    def test_series_monotone(self):
        series = insert_series(1e-3, figure14a_grid())
        values = [pt.new_fpp for pt in series]
        assert values == sorted(values)

    def test_linear_regime_small_ratios(self):
        """Figure 14a: near-linear growth for ratios up to 12%."""
        series = insert_series(1e-4, [0.0, 0.06, 0.12])
        y0, y1, y2 = (pt.new_fpp for pt in series)
        slope1 = (y1 - y0) / 0.06
        slope2 = (y2 - y1) / 0.06
        assert slope2 == pytest.approx(slope1, rel=0.75)

    def test_converges_long_run(self):
        """Figure 14b: fpp converges toward 1 for very large ratios."""
        last = insert_series(1e-4, figure14b_grid())[-1]
        assert last.new_fpp > 0.2

    def test_paper_numeric_examples(self):
        """§7: fpp=0.01%, +1% -> ~0.011%; +10% -> ~0.023%."""
        assert insert_series(1e-4, [0.01])[0].new_fpp == pytest.approx(
            1.096e-4, rel=0.01
        )
        assert insert_series(1e-4, [0.10])[0].new_fpp == pytest.approx(
            2.31e-4, rel=0.01
        )

    def test_sustainable_ratio_inverts_eq14(self):
        ratio = sustainable_insert_ratio(1e-4, 1e-3)
        from repro.core.bloom import fpp_after_inserts

        assert fpp_after_inserts(1e-4, ratio) == pytest.approx(1e-3)

    def test_sustainable_ratio_validation(self):
        with pytest.raises(ValueError):
            sustainable_insert_ratio(1e-3, 1e-4)


class TestFigure2:
    def test_clusters_separate(self):
        """HDD cluster: cheap capacity, low IOPS; SSD the opposite."""
        summary = tradeoff_summary()
        assert summary["HDD"]["min_gb_per_dollar"] > summary["SSD"][
            "max_gb_per_dollar"
        ]
        assert summary["SSD"]["min_iops"] > summary["HDD"]["max_iops"]

    def test_iops_gap_orders_of_magnitude(self):
        summary = tradeoff_summary()
        assert summary["SSD"]["max_iops"] / summary["HDD"]["min_iops"] > 1000
