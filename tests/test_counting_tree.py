"""Tests for BF-Trees built on counting filters (in-place deletes, §7)."""

import numpy as np
import pytest

from repro.core import BFTree, BFTreeConfig
from repro.storage import Relation, build_stack


@pytest.fixture(scope="module")
def counting_tree(pk_relation):
    return BFTree.bulk_load(
        pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
        unique=True,
    )


class TestConstruction:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            BFTreeConfig(filter_kind="quotient")

    def test_fewer_filters_per_leaf(self, pk_relation):
        plain = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-3),
                                 unique=True)
        counting = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
            unique=True,
        )
        assert counting.geometry.max_filters < plain.geometry.max_filters
        # 4-bit counters -> roughly a quarter of the filters per page.
        ratio = plain.geometry.max_filters / counting.geometry.max_filters
        assert 3.0 < ratio < 5.0

    def test_space_cost_visible_in_size(self, pk_relation):
        plain = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-3),
                                 unique=True)
        counting = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
            unique=True,
        )
        assert counting.size_pages > plain.size_pages


class TestSearch:
    def test_all_keys_found(self, counting_tree):
        counting_tree.bind(build_stack("MEM/SSD"))
        for key in range(0, 8192, 149):
            result = counting_tree.search(key)
            assert result.found and result.matches == 1, key
        counting_tree.unbind()

    def test_miss(self, counting_tree):
        assert not counting_tree.search(10**7).found

    def test_false_rate_near_nominal(self, counting_tree):
        stack = build_stack("MEM/SSD")
        counting_tree.bind(stack)
        for key in range(0, 8192, 17):
            counting_tree.search(key)
        probes = 8192 // 17 + 1
        counting_tree.unbind()
        assert stack.stats.false_reads / probes < 1.0


class TestDeletes:
    def test_inplace_delete(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
            unique=True,
        )
        key = 500
        assert tree.search(key).found
        outcome = tree.delete(key, pid=pk_relation.page_of(key))
        assert outcome.removed and not outcome.tombstoned
        assert not tree.search(key).found

    def test_no_tombstone_created(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
            unique=True,
        )
        tree.delete(500, pid=pk_relation.page_of(500))
        assert all(not leaf.deleted_keys for leaf in tree.leaves.values())

    def test_neighbours_unaffected(self, pk_relation):
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
            unique=True,
        )
        tree.delete(500, pid=pk_relation.page_of(500))
        for key in (499, 501, 516, 484):
            assert tree.search(key).found, key

    def test_delete_without_pid_falls_back_to_tombstone(self, pk_relation):
        """No pid on a counting tree: the in-place decrement is
        impossible, and the outcome *surfaces* the tombstone fallback
        instead of silently skewing the §7 fpp accounting."""
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
            unique=True,
        )
        outcome = tree.delete(600)     # no pid: tombstone path
        assert outcome.removed and outcome.tombstoned
        assert not tree.search(600).found
        # The fallback grew a tombstone list, unlike the in-place path.
        assert any(leaf.deleted_keys for leaf in tree.leaves.values())

    def test_delete_outcome_distinguishes_mechanisms(self, pk_relation):
        """Both §7 delete branches, side by side, on one tree."""
        tree = BFTree.bulk_load(
            pk_relation, "pk", BFTreeConfig(fpp=1e-3, filter_kind="counting"),
            unique=True,
        )
        inplace = tree.delete(700, pid=pk_relation.page_of(700))
        fallback = tree.delete(701)
        missing = tree.delete(10**9)
        assert inplace.removed and not inplace.tombstoned
        assert fallback.removed and fallback.tombstoned
        assert not missing.removed and not missing.tombstoned
        assert not tree.search(700).found
        assert not tree.search(701).found

    def test_plain_tree_rejects_remove_key(self, pk_relation):
        tree = BFTree.bulk_load(pk_relation, "pk", BFTreeConfig(fpp=1e-3),
                                unique=True)
        leaf = tree.leaves_in_order()[0]
        with pytest.raises(ValueError):
            leaf.remove_key(1, 0)

    def test_mass_deletes_keep_fpp_flat(self):
        """Delete a third of the keys; the remaining probes' false-read
        rate must not exceed the pre-delete level (the §7 contrast with
        additive-fpp tombstone-free deletion)."""
        keys = np.arange(4096, dtype=np.int64)
        rel = Relation({"pk": keys}, tuple_size=256)
        tree = BFTree.bulk_load(
            rel, "pk", BFTreeConfig(fpp=1e-2, filter_kind="counting"),
            unique=True,
        )

        def false_rate():
            stack = build_stack("MEM/SSD")
            tree.bind(stack)
            for key in range(1, 4096, 9):   # surviving keys (odd start)
                if key % 3 != 0:
                    tree.search(key)
            tree.unbind()
            return stack.stats.false_reads

        before = false_rate()
        for key in range(0, 4096, 3):
            tree.delete(key, pid=rel.page_of(key))
        after = false_rate()
        assert after <= before + 2
