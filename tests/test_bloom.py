"""Unit tests for Bloom filters and the Equation-1 sizing math."""

import math
import random

import numpy as np
import pytest

from repro.core.bloom import (
    BloomFilter,
    bits_for_capacity,
    capacity_for_bits,
    expected_fpp,
    fpp_after_deletes,
    fpp_after_inserts,
    optimal_hash_count,
)


class TestEquationOne:
    def test_capacity_example(self):
        """One 4 KB page of bits at fpp 0.01 indexes ~4916 keys."""
        n = capacity_for_bits(4096 * 8, 0.01)
        assert n == pytest.approx(-4096 * 8 * math.log(2) ** 2 / math.log(0.01))
        assert 3300 < n < 3500

    def test_roundtrip(self):
        for fpp in (0.3, 0.01, 1e-6, 1e-12):
            n = 1000
            m = bits_for_capacity(n, fpp)
            assert capacity_for_bits(m, fpp) == pytest.approx(n)

    def test_lower_fpp_needs_more_bits(self):
        assert bits_for_capacity(100, 1e-6) > bits_for_capacity(100, 1e-2)

    def test_logarithmic_cost_of_accuracy(self):
        """Paper §3 property 2: halving fpp costs O(log) bits per element."""
        b1 = bits_for_capacity(1, 1e-2)
        b2 = bits_for_capacity(1, 1e-4)
        b3 = bits_for_capacity(1, 1e-8)
        # Cost per decade of accuracy is constant: (b2-b1) spans 2 decades,
        # (b3-b2) spans 4.
        assert b2 - b1 == pytest.approx((b3 - b2) / 2, rel=0.01)

    def test_invalid_fpp(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                bits_for_capacity(10, bad)

    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError):
            bits_for_capacity(-1, 0.01)

    def test_split_property(self):
        """Paper §3 property 1: splitting M bits / N keys into S filters
        preserves the bits-per-key ratio and hence the fpp."""
        m = bits_for_capacity(1024, 1e-3)
        per_filter = capacity_for_bits(m / 8, 1e-3)
        assert per_filter == pytest.approx(1024 / 8)


class TestOptimalHashCount:
    def test_textbook_value(self):
        # m/n = 10 bits per key -> k ~ 6.9 -> 7
        assert optimal_hash_count(1000, 100) == 7

    def test_at_least_one(self):
        assert optimal_hash_count(1, 1000) == 1
        assert optimal_hash_count(10, 0) == 1


class TestExpectedFpp:
    def test_empty_filter_never_false_positive(self):
        assert expected_fpp(100, 0, 3) == 0.0

    def test_zero_bits_always_positive(self):
        assert expected_fpp(0, 10, 3) == 1.0

    def test_monotone_in_keys(self):
        assert expected_fpp(100, 20, 3) > expected_fpp(100, 10, 3)


class TestBloomFilterBasics:
    def test_no_false_negatives(self):
        bf = BloomFilter(nbits=256, k=4)
        keys = random.Random(0).sample(range(10**9), 20)
        for key in keys:
            bf.add(key)
        assert all(bf.might_contain(k) for k in keys)

    def test_contains_operator(self):
        bf = BloomFilter(64, 3)
        bf.add(5)
        assert 5 in bf

    def test_empty_filter_rejects(self):
        bf = BloomFilter(64, 3)
        assert not bf.might_contain(1)

    def test_count_tracks_adds(self):
        bf = BloomFilter(64, 3)
        bf.add(1)
        bf.add(1)
        assert bf.count == 2

    def test_for_capacity_sizing(self):
        bf = BloomFilter.for_capacity(100, 0.01)
        assert bf.nbits == math.ceil(bits_for_capacity(100, 0.01))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 3)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)

    def test_clear(self):
        bf = BloomFilter(64, 3)
        bf.add(7)
        bf.clear()
        assert bf.count == 0 and not bf.might_contain(7)

    def test_string_keys(self):
        bf = BloomFilter(256, 4)
        bf.add("hello")
        assert bf.might_contain("hello")
        assert not bf.might_contain("warld-xyz-very-unlikely")

    def test_size_bytes(self):
        assert BloomFilter(100, 3).size_bytes() == 13

    def test_bulk_add_equivalent_to_scalar(self):
        keys = np.arange(100, 150, dtype=np.int64)
        a = BloomFilter(400, 5, seed=2)
        b = BloomFilter(400, 5, seed=2)
        for key in keys:
            a.add(int(key))
        b.bulk_add(keys)
        assert a._bits == b._bits
        assert a.count == b.count

    def test_bulk_add_empty(self):
        bf = BloomFilter(64, 3)
        bf.bulk_add(np.empty(0, dtype=np.int64))
        assert bf.count == 0


class TestMeasuredFpp:
    def test_tracks_nominal_rate(self):
        """Empirical false-positive rate lands near the design target."""
        rng = random.Random(42)
        for target in (0.1, 0.01):
            n = 200
            bf = BloomFilter.for_capacity(
                n, target, k=optimal_hash_count(bits_for_capacity(n, target), n)
            )
            members = rng.sample(range(10**9), n)
            for key in members:
                bf.add(key)
            probes = rng.sample(range(10**9, 2 * 10**9), 30_000)
            rate = sum(bf.might_contain(p) for p in probes) / len(probes)
            assert rate < 3 * target
            assert rate > target / 10

    def test_effective_fpp_from_fill(self):
        bf = BloomFilter.for_capacity(100, 0.01, k=7)
        for key in range(100):
            bf.add(key)
        assert bf.effective_fpp() == pytest.approx(bf.fill_fraction() ** 7)

    def test_fill_fraction_bounds(self):
        bf = BloomFilter(64, 3)
        assert bf.fill_fraction() == 0.0
        for key in range(1000):
            bf.add(key)
        assert bf.fill_fraction() <= 1.0


class TestUnion:
    def test_union_contains_both_sides(self):
        a = BloomFilter(256, 4, seed=1)
        b = BloomFilter(256, 4, seed=1)
        a.add(10)
        b.add(20)
        merged = a.union(b)
        assert merged.might_contain(10) and merged.might_contain(20)
        assert merged.count == 2

    def test_incompatible_geometry_rejected(self):
        a = BloomFilter(256, 4)
        for other in (BloomFilter(128, 4), BloomFilter(256, 3),
                      BloomFilter(256, 4, seed=9)):
            with pytest.raises(ValueError):
                a.union(other)


class TestDegradationFormulas:
    def test_eq14_identity_at_zero(self):
        assert fpp_after_inserts(0.01, 0.0) == pytest.approx(0.01)

    def test_eq14_example(self):
        """Paper §7: fpp=0.01% + 10% more elements -> ~0.023%."""
        new = fpp_after_inserts(1e-4, 0.10)
        assert new == pytest.approx(1e-4 ** (1 / 1.1))
        assert 2.0e-4 < new < 2.6e-4

    def test_eq14_monotone(self):
        values = [fpp_after_inserts(1e-3, r) for r in (0, 0.5, 1, 5)]
        assert values == sorted(values)

    def test_eq14_converges_to_one(self):
        assert fpp_after_inserts(1e-3, 1e6) == pytest.approx(1.0, abs=1e-4)

    def test_deletes_additive(self):
        assert fpp_after_deletes(0.01, 0.10) == pytest.approx(0.11)

    def test_deletes_capped(self):
        assert fpp_after_deletes(0.5, 0.9) == 1.0

    def test_delete_ratio_validated(self):
        with pytest.raises(ValueError):
            fpp_after_deletes(0.01, 1.5)

    def test_insert_ratio_validated(self):
        with pytest.raises(ValueError):
            fpp_after_inserts(0.01, -0.1)
