"""Unit tests for the B+-Tree baseline."""

import numpy as np
import pytest

from repro.baselines import BPlusTree, BPlusTreeConfig
from repro.storage import Relation, build_stack


def _tree(relation, unique=True, **kw):
    return BPlusTree.bulk_load(
        relation, "pk" if unique else "att1",
        BPlusTreeConfig(**kw) if kw else None, unique=unique,
    )


class TestConfig:
    def test_fill_factor_validated(self):
        with pytest.raises(ValueError):
            BPlusTreeConfig(fill_factor=0.01)

    def test_leaf_budget(self):
        assert BPlusTreeConfig(fill_factor=0.5).leaf_budget_bytes == 2048


class TestBulkLoad:
    def test_rejects_unsorted(self):
        rel = Relation({"k": np.asarray([2, 1], dtype=np.int64)}, tuple_size=256)
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(rel, "k")

    def test_rejects_empty(self):
        rel = Relation({"k": np.empty(0, dtype=np.int64)}, tuple_size=256)
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(rel, "k")

    def test_leaf_count_near_equation3(self, pk_relation):
        """Eq. 3 with fill factor: n*(key+ptr)/(page*fill)."""
        tree = _tree(pk_relation)
        expected = 8192 * 16 / (4096 * 0.8)
        assert tree.n_leaves == pytest.approx(expected, rel=0.05)

    def test_leaves_sorted_and_linked(self, pk_relation):
        chain = _tree(pk_relation).leaves_in_order()
        keys = [k for leaf in chain for k in leaf.keys]
        assert keys == sorted(keys)
        assert len(keys) == 8192

    def test_duplicates_grouped(self, dup_relation):
        tree = BPlusTree.bulk_load(
            dup_relation, "att1", BPlusTreeConfig(clustered=False)
        )
        att1 = np.asarray(dup_relation.columns["att1"])
        total_rids = sum(
            len(r) for leaf in tree.leaves.values() for r in leaf.ridlists
        )
        assert total_rids == len(att1)


class TestSearch:
    def test_all_keys_found(self, pk_relation):
        tree = _tree(pk_relation)
        tree.bind(build_stack("MEM/SSD"))
        for key in range(0, 8192, 131):
            result = tree.search(key)
            assert result.found and result.tids == [key]

    def test_miss(self, pk_relation):
        tree = _tree(pk_relation)
        tree.bind(build_stack("MEM/SSD"))
        assert not tree.search(9999).found
        assert not tree.search(-1).found

    def test_exactly_one_data_read_for_pk(self, pk_relation):
        tree = _tree(pk_relation)
        stack = build_stack("MEM/SSD")
        tree.bind(stack)
        before = stack.stats.data_reads
        tree.search(4000)
        assert stack.stats.data_reads - before == 1

    def test_duplicates_all_fetched(self, dup_relation):
        tree = BPlusTree.bulk_load(dup_relation, "att1")
        tree.bind(build_stack("MEM/SSD"))
        att1 = np.asarray(dup_relation.columns["att1"])
        key = int(att1[1000])
        assert tree.search(key).matches == int(np.count_nonzero(att1 == key))

    def test_heavy_duplicates_span_leaves(self):
        """A rid list longer than a page continues into the next leaf."""
        keys = np.repeat(np.arange(8, dtype=np.int64), 1024)
        rel = Relation({"k": keys}, tuple_size=256)
        tree = BPlusTree.bulk_load(rel, "k", BPlusTreeConfig(clustered=False))
        tree.bind(build_stack("MEM/SSD"))
        assert tree.n_leaves > 8 // 2
        result = tree.search(3)
        assert result.matches == 1024


class TestUpdates:
    def test_insert_new_key(self, pk_relation):
        tree = _tree(pk_relation)
        tree.insert(8192, 0)
        tree.bind(build_stack("MEM/SSD"))
        assert tree.search(8192).found

    def test_insert_duplicate_rid(self, pk_relation):
        tree = BPlusTree.bulk_load(
            pk_relation, "pk", BPlusTreeConfig(clustered=False), unique=False
        )
        tree.insert(5, 99)
        tree.bind(build_stack("MEM/SSD"))
        assert tree.search(5).matches == 2

    def test_insert_splits_full_leaf(self, pk_relation):
        tree = _tree(pk_relation)
        before = tree.n_leaves
        for i in range(400):
            tree.insert(10**6 + i, 0)
        assert tree.n_leaves > before
        tree.bind(build_stack("MEM/SSD"))
        for i in range(0, 400, 37):
            assert tree.search(10**6 + i).found

    def test_delete_entry(self, pk_relation):
        tree = _tree(pk_relation)
        assert tree.delete(77)
        tree.bind(build_stack("MEM/SSD"))
        assert not tree.search(77).found

    def test_delete_single_rid(self, pk_relation):
        tree = BPlusTree.bulk_load(
            pk_relation, "pk", BPlusTreeConfig(clustered=False), unique=False
        )
        tree.insert(5, 99)
        assert tree.delete(5, tid=99)
        tree.bind(build_stack("MEM/SSD"))
        assert tree.search(5).matches == 1

    def test_single_leaf_root_split(self):
        """Regression companion to the collapsed conditional in
        ``_split_leaf``: a tree whose directory is still the degenerate
        single leaf must grow its first internal root when that leaf
        splits, and keep every key findable on both sides."""
        rel = Relation({"pk": np.arange(100, dtype=np.int64)},
                       tuple_size=256)
        tree = BPlusTree.bulk_load(rel, "pk", unique=True)
        assert tree.n_leaves == 1
        assert tree.inner.root_id is None  # degenerate single-leaf tree
        i = 0
        while tree.n_leaves == 1:
            tree.insert(100 + i, i % rel.ntuples)
            i += 1
        assert tree.n_leaves == 2
        assert tree.inner.root_id is not None
        assert tree.inner._single_leaf is None
        # Descents route correctly to both split sides.
        for key in (0, 99, 100, 100 + i - 1):
            leaf = tree._descend_and_read(key)
            assert leaf is not None and leaf.find(key) is not None

    def test_delete_missing(self, pk_relation):
        tree = _tree(pk_relation)
        assert not tree.delete(10**9)
        assert not tree.delete(5, tid=12345)


class TestRangeScan:
    def test_matches_and_minimal_pages(self, pk_relation):
        tree = _tree(pk_relation)
        tree.bind(build_stack("MEM/SSD"))
        result = tree.range_scan(100, 299)
        assert result.matches == 200
        # 200 16-tuple-per-page keys -> at most 14 pages
        expected_pages = len({k // 16 for k in range(100, 300)})
        assert result.pages_read == expected_pages

    def test_invalid_range(self, pk_relation):
        with pytest.raises(ValueError):
            _tree(pk_relation).range_scan(5, 1)

    def test_empty_range_result(self, pk_relation):
        tree = _tree(pk_relation)
        tree.bind(build_stack("MEM/SSD"))
        result = tree.range_scan(100000, 100010)
        assert result.matches == 0 and result.pages_read == 0


class TestSize:
    def test_size_components(self, pk_relation):
        tree = _tree(pk_relation)
        assert tree.size_pages == tree.n_leaves + tree.inner.n_internal_nodes

    def test_clustered_much_smaller_on_duplicates(self, dup_relation):
        """The paper's ATT1 layout: one rid per distinct key, scan-forward
        probes -> the index shrinks by ~avgcard."""
        clustered = BPlusTree.bulk_load(dup_relation, "att1")
        per_rid = BPlusTree.bulk_load(
            dup_relation, "att1", BPlusTreeConfig(clustered=False)
        )
        assert per_rid.size_pages > 4 * clustered.size_pages

    def test_pk_index_larger_than_att1(self, dup_relation):
        """Eq. 3: higher cardinality amortizes key bytes -> smaller index."""
        pk = BPlusTree.bulk_load(dup_relation, "pk", unique=True)
        att1 = BPlusTree.bulk_load(dup_relation, "att1")
        assert att1.size_pages < pk.size_pages
