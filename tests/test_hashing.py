"""Unit tests for the deterministic hashing layer."""

import numpy as np
import pytest

from repro.core.hashing import (
    MASK64,
    bloom_positions,
    bloom_positions_batch,
    hash_pair,
    key_to_int,
    splitmix64,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_within_64_bits(self):
        for value in (0, 1, 2**63, MASK64):
            assert 0 <= splitmix64(value) <= MASK64

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        flips = bin(splitmix64(1000) ^ splitmix64(1001)).count("1")
        assert 16 <= flips <= 48

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000


class TestHashPair:
    def test_h2_is_odd(self):
        for key in range(100):
            _, h2 = hash_pair(key)
            assert h2 % 2 == 1

    def test_seed_changes_hashes(self):
        assert hash_pair(7, seed=0) != hash_pair(7, seed=1)

    def test_pair_components_differ(self):
        h1, h2 = hash_pair(12345)
        assert h1 != h2


class TestBloomPositions:
    def test_in_range(self):
        for key in (0, 5, 2**40):
            for pos in bloom_positions(key, k=8, nbits=101):
                assert 0 <= pos < 101

    def test_k_positions(self):
        assert len(bloom_positions(9, k=5, nbits=64)) == 5

    def test_deterministic(self):
        assert bloom_positions(9, 4, 256) == bloom_positions(9, 4, 256)

    def test_invalid_nbits(self):
        with pytest.raises(ValueError):
            bloom_positions(1, 3, 0)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**62, size=200)
        for k, nbits, seed in [(1, 31, 0), (3, 153, 5), (20, 460, 9)]:
            batch = bloom_positions_batch(keys, k, nbits, seed)
            for i in range(len(keys)):
                assert list(batch[i]) == bloom_positions(
                    int(keys[i]), k, nbits, seed
                )

    def test_batch_shape(self):
        batch = bloom_positions_batch(np.arange(10), k=4, nbits=77)
        assert batch.shape == (10, 4)

    def test_batch_empty(self):
        assert bloom_positions_batch(np.empty(0, dtype=np.int64), 3, 64).shape == (0, 3)


class TestKeyToInt:
    def test_int_passthrough(self):
        assert key_to_int(12345) == 12345

    def test_negative_int(self):
        assert key_to_int(-5) == -5

    def test_bool_is_int(self):
        assert key_to_int(True) == 1

    def test_str_and_bytes_agree(self):
        assert key_to_int("abc") == key_to_int(b"abc")

    def test_str_distinct(self):
        assert key_to_int("abc") != key_to_int("abd")

    def test_unhashable_type(self):
        with pytest.raises(TypeError):
            key_to_int(3.14)
