"""Durability subsystem unit tests: WAL framing, snapshot container,
manifest atomicity, and torn-tail crash tolerance at every byte offset.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.analysis.sanitize import StructuralCorruption, force
from repro.api import make_index
from repro.persist import (
    CorruptManifestError,
    CorruptSnapshotError,
    DurableIndex,
    WriteAheadLog,
    apply_record,
    read_manifest,
    read_snapshot,
    recover,
    replay_wal,
    truncate_wal,
    write_manifest,
    write_snapshot,
)
from repro.persist.errors import PersistError
from repro.storage import Relation


@pytest.fixture(scope="module")
def tiny_relation() -> Relation:
    """256 keys / 16 pages: small enough for per-byte crash sweeps."""
    return Relation(
        {"pk": np.arange(256, dtype=np.int64)}, tuple_size=256,
        name="tiny-rel",
    )


def _durable(relation, directory, **kw) -> DurableIndex:
    inner = make_index("bf", relation, "pk", unique=True, fpp=1e-3)
    return DurableIndex(inner, directory, kind="bf", column="pk",
                        unique=True, fpp=1e-3, **kw)


# ======================================================================
# WAL framing
# ======================================================================
class TestWal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        records = [
            {"op": "insert", "key": 5, "target": 2},
            {"op": "delete", "key": 9, "target": None},
            {"op": "insert_many", "keys": [1, 2], "targets": [0, 0]},
            {"op": "delete_many", "keys": [3, 4], "targets": None},
        ]
        wal = WriteAheadLog(path)
        for r in records:
            wal.append(r)
        wal.close()
        replayed, valid = replay_wal(path)
        assert replayed == records
        assert valid == path.stat().st_size

    def test_missing_file_is_empty_log(self, tmp_path):
        assert replay_wal(tmp_path / "absent.log") == ([], 0)

    def test_sync_every_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", sync_every=4)
        for i in range(3):
            wal.append({"op": "insert", "key": i, "target": 0})
        assert wal._pending == 3  # below the batch threshold
        wal.append({"op": "insert", "key": 3, "target": 0})
        assert wal._pending == 0  # batch filled -> fsynced
        wal.close()
        assert len(replay_wal(tmp_path / "wal.log")[0]) == 4

    def test_sync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="sync_every"):
            WriteAheadLog(tmp_path / "wal.log", sync_every=0)

    def test_corrupt_payload_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "insert", "key": 1, "target": 0})
        wal.append({"op": "insert", "key": 2, "target": 0})
        wal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the second frame's payload
        path.write_bytes(bytes(data))
        records, valid = replay_wal(path)
        assert [r["key"] for r in records] == [1]
        assert 0 < valid < len(data)

    def test_truncate_removes_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "insert", "key": 1, "target": 0})
        wal.close()
        good = path.stat().st_size
        with open(path, "ab") as f:
            f.write(b"\x07\x00\x00\x00garbage")
        _, valid = replay_wal(path)
        truncate_wal(path, valid)
        assert path.stat().st_size == good
        wal2 = WriteAheadLog(path)
        wal2.append({"op": "insert", "key": 2, "target": 0})
        wal2.close()
        assert [r["key"] for r in replay_wal(path)[0]] == [1, 2]

    def test_apply_record_rejects_unknown_op(self):
        with pytest.raises(PersistError, match="unknown WAL op"):
            apply_record(None, {"op": "compact"})


# ======================================================================
# snapshot container
# ======================================================================
class TestSnapshot:
    def test_round_trip_preserves_arrays_and_bytes(self, tmp_path):
        state = {
            "format": "test",
            "words": np.arange(7, dtype=np.uint64),
            "counters": b"\x01\x02\x03",
            "nested": {"grid": np.eye(2, dtype=np.float64), "n": 3},
            "list": [1, "two", None, True],
        }
        path = tmp_path / "snap.bin"
        nbytes, crc = write_snapshot(path, state)
        assert path.stat().st_size == nbytes
        out = read_snapshot(path)
        np.testing.assert_array_equal(out["words"], state["words"])
        assert out["words"].dtype == np.uint64
        assert out["counters"] == b"\x01\x02\x03"
        np.testing.assert_array_equal(out["nested"]["grid"],
                                      state["nested"]["grid"])
        assert out["list"] == [1, "two", None, True]

    def test_numpy_scalars_normalized(self, tmp_path):
        path = tmp_path / "snap.bin"
        write_snapshot(path, {"n": np.int64(7), "f": np.float64(0.5),
                              "b": np.bool_(True)})
        out = read_snapshot(path)
        assert out == {"n": 7, "f": 0.5, "b": True}
        assert type(out["n"]) is int

    def test_unserializable_state_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="unserializable"):
            write_snapshot(tmp_path / "s.bin", {"bad": object()})
        with pytest.raises(TypeError, match="keys must be str"):
            write_snapshot(tmp_path / "s.bin", {1: "x"})
        with pytest.raises(TypeError, match="reserved"):
            write_snapshot(tmp_path / "s.bin", {"__ndarray__": 0})

    def test_missing_file_diagnosed(self, tmp_path):
        with pytest.raises(CorruptSnapshotError, match="missing"):
            read_snapshot(tmp_path / "absent.bin")

    def test_bad_magic_diagnosed(self, tmp_path):
        path = tmp_path / "snap.bin"
        write_snapshot(path, {"a": 1})
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptSnapshotError, match="bad magic"):
            read_snapshot(path)

    def test_header_bitflip_diagnosed(self, tmp_path):
        path = tmp_path / "snap.bin"
        write_snapshot(path, {"a": 1})
        data = bytearray(path.read_bytes())
        data[20] ^= 0x01  # inside the JSON header
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptSnapshotError, match="header checksum"):
            read_snapshot(path)

    def test_blob_bitflip_diagnosed(self, tmp_path):
        path = tmp_path / "snap.bin"
        write_snapshot(path, {"words": np.arange(16, dtype=np.uint64)})
        data = bytearray(path.read_bytes())
        data[-5] ^= 0x40  # inside the blob region
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptSnapshotError, match="blob checksum"):
            read_snapshot(path)

    def test_truncation_diagnosed(self, tmp_path):
        path = tmp_path / "snap.bin"
        write_snapshot(path, {"words": np.arange(16, dtype=np.uint64)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 32])
        with pytest.raises(CorruptSnapshotError,
                           match="blob region|truncated"):
            read_snapshot(path)


# ======================================================================
# manifest
# ======================================================================
class TestManifest:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "MANIFEST.json"
        write_manifest(path, {"backend": "bf", "snapshot": {"bytes": 10}})
        data = read_manifest(path)
        assert data["backend"] == "bf"
        assert data["version"] == 1

    def test_missing_diagnosed(self, tmp_path):
        with pytest.raises(CorruptManifestError, match="missing"):
            read_manifest(tmp_path / "MANIFEST.json")

    def test_torn_json_diagnosed(self, tmp_path):
        path = tmp_path / "MANIFEST.json"
        path.write_text('{"version": 1, "backend": ')
        with pytest.raises(CorruptManifestError, match="not valid JSON"):
            read_manifest(path)

    def test_wrong_version_diagnosed(self, tmp_path):
        path = tmp_path / "MANIFEST.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(CorruptManifestError, match="version"):
            read_manifest(path)

    def test_no_temp_file_left_behind(self, tmp_path):
        write_manifest(tmp_path / "MANIFEST.json", {"backend": "bf"})
        assert [p.name for p in tmp_path.iterdir()] == ["MANIFEST.json"]


# ======================================================================
# recovery-path corruption and crash sweeps
# ======================================================================
class TestRecoveryIntegrity:
    def test_corrupted_snapshot_surfaces_through_recover(
        self, tiny_relation, tmp_path
    ):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        index.close()
        data = bytearray(index.snapshot_path.read_bytes())
        data[-3] ^= 0x10  # flip a filter bit in the blob region
        index.snapshot_path.write_bytes(bytes(data))
        with pytest.raises(CorruptSnapshotError, match="checksum"):
            recover(d, tiny_relation)

    def test_tampered_state_caught_by_sanitizer(self, tiny_relation):
        """Satellite (c): restore_state tails into the structural
        sanitizer, so a snapshot that passes its checksums but encodes
        an invalid tree still fails loudly with a precise diagnostic."""
        source = make_index("bf", tiny_relation, "pk", unique=True, fpp=1e-3)
        state = source.snapshot_state()
        state["leaves"][0]["nkeys"] = -1
        fresh = make_index("bf", tiny_relation, "pk", unique=True, fpp=1e-3)
        force(True)
        try:
            with pytest.raises(StructuralCorruption, match="negative nkeys"):
                fresh.restore_state(state)
        finally:
            force(None)

    def test_torn_tail_at_every_byte_offset(self, tiny_relation, tmp_path):
        """The WAL crash-tolerance property: for every possible torn
        tail length, recovery (a) never raises, (b) applies exactly the
        longest intact record prefix, and (c) never half-applies the
        op whose frame the crash tore."""
        d = tmp_path / "full"
        index = _durable(tiny_relation, d)
        ops = [("delete", k) for k in (3, 50, 99, 140, 200, 255)]
        for _, k in ops:
            index.delete(k)
        index.insert(50, index.write_target(50))
        index.close()
        full_records, full_bytes = replay_wal(index.wal_path)
        assert len(full_records) == len(ops) + 1

        checkpoint_files = [index.manifest_path.name,
                            index.snapshot_path.name]
        wal_name = index.wal_path.name
        wal_bytes = index.wal_path.read_bytes()
        assert full_bytes == len(wal_bytes)

        frame_ends = []
        offset = 0
        for _ in full_records:
            _, offset = replay_wal_prefix(wal_bytes, offset)
            frame_ends.append(offset)

        for cut in range(len(wal_bytes) + 1):
            crash_dir = tmp_path / "crash"
            if crash_dir.exists():
                shutil.rmtree(crash_dir)
            crash_dir.mkdir()
            for name in checkpoint_files:
                shutil.copy(d / name, crash_dir / name)
            (crash_dir / wal_name).write_bytes(wal_bytes[:cut])

            recovered = recover(crash_dir, tiny_relation)
            expect_n = sum(1 for end in frame_ends if end <= cut)
            survivors, valid = replay_wal(recovered.wal_path)
            assert survivors == full_records[:expect_n], cut
            assert valid == (frame_ends[expect_n - 1] if expect_n else 0)
            # The op after the torn frame must not be half-applied:
            # its key still resolves exactly as the prefix dictates.
            if expect_n < len(ops):
                _, key = ops[expect_n]
                assert recovered.search(key).found, cut
            recovered.close()

    def test_recovered_wal_accepts_new_appends(self, tiny_relation,
                                               tmp_path):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        index.delete(10)
        index.close()
        r1 = recover(d, tiny_relation)
        r1.delete(20)
        r1.close()
        r2 = recover(d, tiny_relation)
        assert not r2.search(10).found
        assert not r2.search(20).found
        assert r2.search(30).found
        r2.close()

    def test_checkpoint_rotates_generation(self, tiny_relation, tmp_path):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        gen1_wal = index.wal_path
        index.delete(5)
        manifest = index.checkpoint()
        assert manifest["wal"]["generation"] == 2
        assert not gen1_wal.exists()
        assert index.wal_path.name == manifest["wal"]["file"]
        index.delete(6)
        index.close()
        r = recover(d, tiny_relation)
        assert not r.search(5).found and not r.search(6).found
        assert len(replay_wal(r.wal_path)[0]) == 1  # only the post-rotation op
        r.close()

    def test_checkpoint_every_triggers_automatically(self, tiny_relation,
                                                     tmp_path):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d, checkpoint_every=3)
        for k in (1, 2, 3):
            index.delete(k)
        # Third op crossed the threshold: WAL rotated, log empty again.
        assert replay_wal(index.wal_path)[0] == []
        assert read_manifest(index.manifest_path)["ops_at_checkpoint"] == 3
        index.close()

    def test_batch_ops_replay_as_batches(self, tiny_relation, tmp_path):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        index.delete_many([7, 8, 9], [None, None, None])
        index.insert_many([8], [index.write_target(8)])
        index.close()
        ops = [r["op"] for r in replay_wal(index.wal_path)[0]]
        assert ops == ["delete_many", "insert_many"]
        r = recover(d, tiny_relation)
        assert not r.search(7).found and not r.search(9).found
        assert r.search(8).found
        r.close()


# ======================================================================
# review regressions: checkpoint atomicity, failed-op compensation,
# recorded build inputs, recovery counters, required build inputs
# ======================================================================
class TestCheckpointAtomicity:
    def test_snapshots_are_generation_named_and_rotated(self, tiny_relation,
                                                        tmp_path):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        first = index.snapshot_path
        assert first.name == "snapshot-00000001.bin"
        index.delete(5)
        index.checkpoint()
        assert index.snapshot_path.name == "snapshot-00000002.bin"
        assert index.snapshot_path.exists()
        assert not first.exists()  # stale generation unlinked post-commit
        index.close()

    def test_crash_between_snapshot_write_and_manifest_commit(
        self, tiny_relation, tmp_path, monkeypatch
    ):
        """A checkpoint that dies after writing the new snapshot but
        before the manifest replace must leave the directory fully
        recoverable to the *old* checkpoint + WAL tail."""
        import repro.persist.durable as durable_mod

        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        index.delete(42)

        def boom(path, data):
            raise RuntimeError("simulated crash before manifest commit")

        monkeypatch.setattr(durable_mod, "write_manifest", boom)
        with pytest.raises(RuntimeError, match="simulated crash"):
            index.checkpoint()
        monkeypatch.undo()

        r = recover(d, tiny_relation)
        assert not r.search(42).found  # the acknowledged op survived
        assert r.search(41).found
        r.close()


class TestFailedOpCompensation:
    def test_failed_op_is_rolled_out_of_the_wal(self, tiny_relation,
                                                tmp_path):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        index.delete(7)
        with pytest.raises(ValueError, match="below leaf range"):
            index.insert(5, -1)  # BFTree rejects the out-of-range pid
        index.delete(9)
        index.close()
        records, _ = replay_wal(index.wal_path)
        assert [r["op"] for r in records] == ["delete", "delete"]
        r = recover(d, tiny_relation)
        assert not r.search(7).found and not r.search(9).found
        assert r.search(5).found  # the failed insert left no trace
        r.close()

    def test_replay_skips_record_of_an_op_that_failed(self, tiny_relation,
                                                      tmp_path):
        """Crash inside the rollback window: the failed op's frame is
        still in the log.  Replay re-attempts it, it deterministically
        fails again, and recovery skips it instead of aborting."""
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        index.delete(3)
        index.close()
        wal = WriteAheadLog(index.wal_path)
        wal.append({"op": "insert", "key": 5, "target": -1})
        wal.close()
        r = recover(d, tiny_relation)
        assert not r.search(3).found
        assert r._ops_since_checkpoint == 1  # failed record doesn't count
        r.close()


class TestRecordedBuildInputs:
    def test_manifest_records_config_and_recovery_restores_it(
        self, tiny_relation, tmp_path
    ):
        from repro.core.bf_tree import BFTree, BFTreeConfig

        cfg = BFTreeConfig(fpp=0.02, pages_per_bf=2)
        inner = BFTree.bulk_load(tiny_relation, "pk", cfg, unique=True)
        d = tmp_path / "idx"
        index = DurableIndex(inner, d, kind="bf", column="pk", unique=True,
                             config=cfg)
        manifest = read_manifest(index.manifest_path)
        assert manifest["config"]["kind"] == "dataclass"
        assert manifest["config"]["fields"]["pages_per_bf"] == 2
        index.close()
        r = recover(d, tiny_relation)
        assert isinstance(r._config, BFTreeConfig)
        assert r._config == cfg
        r.close()

    def test_recorded_seed_reaches_the_builder_on_recovery(
        self, tiny_relation, tmp_path
    ):
        from repro.api import registry

        built_seeds: list[int | None] = []

        def _build_seeded(relation, column, *, unique=False, config=None,
                          fpp=None, seed=None):
            built_seeds.append(seed)
            return make_index("bf", relation, column, unique=unique, fpp=fpp)

        registry.register("seeded-bf-test", _build_seeded, replace=True)
        try:
            inner = _build_seeded(tiny_relation, "pk", unique=True, fpp=1e-3,
                                  seed=7)
            d = tmp_path / "idx"
            index = DurableIndex(inner, d, kind="seeded-bf-test", column="pk",
                                 unique=True, fpp=1e-3, seed=7)
            index.close()
            r = recover(d, tiny_relation)
            assert built_seeds[-1] == 7
            r.close()
        finally:
            # The registry has no public deregister; drop the test-only
            # backend so registry-sweeping tests don't see it.
            registry._REGISTRY.pop("seeded-bf-test", None)

    def test_unrecordable_config_rejected_before_checkpoint(
        self, tiny_relation, tmp_path
    ):
        inner = make_index("bf", tiny_relation, "pk", unique=True, fpp=1e-3)
        with pytest.raises(PersistError, match="not recordable"):
            DurableIndex(inner, tmp_path / "idx", kind="bf", column="pk",
                         config=object())
        assert not (tmp_path / "idx" / "MANIFEST.json").exists()


class TestRecoveryCounters:
    def test_replayed_tail_counts_toward_next_auto_checkpoint(
        self, tiny_relation, tmp_path
    ):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d, checkpoint_every=5)
        for k in (1, 2, 3):
            index.delete(k)
        index.close()
        r = recover(d, tiny_relation)
        assert r._ops_since_checkpoint == 3
        r.delete(4)
        r.delete(5)  # fifth op since the checkpoint -> rotation
        assert replay_wal(r.wal_path)[0] == []
        assert read_manifest(r.manifest_path)["ops_at_checkpoint"] == 5
        r.close()

    def test_recovery_checkpoints_when_tail_crosses_threshold(
        self, tiny_relation, tmp_path
    ):
        d = tmp_path / "idx"
        index = _durable(tiny_relation, d)
        for k in (1, 2, 3, 4):
            index.delete(k)
        index.close()
        r = recover(d, tiny_relation, checkpoint_every=3)
        assert replay_wal(r.wal_path)[0] == []  # checkpointed during recovery
        assert read_manifest(r.manifest_path)["ops_at_checkpoint"] == 4
        r.close()


class TestRequiredBuildInputs:
    def test_missing_or_empty_kind_and_column_rejected(self, tiny_relation,
                                                       tmp_path):
        inner = make_index("bf", tiny_relation, "pk", unique=True, fpp=1e-3)
        with pytest.raises(TypeError):
            DurableIndex(inner, tmp_path / "a")  # kind/column now required
        with pytest.raises(ValueError, match="backend kind"):
            DurableIndex(inner, tmp_path / "b", kind="", column="pk")
        with pytest.raises(ValueError, match="column"):
            DurableIndex(inner, tmp_path / "c", kind="bf", column="")
        # No unrecoverable directory was committed by any of the above.
        for name in ("a", "b", "c"):
            assert not (tmp_path / name / "MANIFEST.json").exists()


def replay_wal_prefix(data: bytes, offset: int) -> tuple[dict, int]:
    """Step one frame forward (test helper mirroring the WAL layout)."""
    import struct
    import zlib

    length, crc = struct.unpack_from("<II", data, offset)
    start = offset + 8
    payload = data[start:start + length]
    assert zlib.crc32(payload) == crc
    return json.loads(payload), start + length
