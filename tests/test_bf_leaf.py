"""Unit tests for BF-leaves (geometry, probing, updates)."""

import numpy as np
import pytest

from repro.core.bf_leaf import BFLeaf, BFLeafGeometry, LeafOverflow
from repro.core.bloom import bits_for_capacity


def _geometry(fpp=0.01, keys_per_group=16.0, pages_per_bf=1, max_filters=None):
    geo = BFLeafGeometry.plan(fpp, keys_per_group, pages_per_bf=pages_per_bf)
    if max_filters is not None:
        geo = BFLeafGeometry(
            fpp=geo.fpp, bits_per_bf=geo.bits_per_bf,
            pages_per_bf=geo.pages_per_bf, max_filters=max_filters,
            hash_count=geo.hash_count, page_size=geo.page_size,
        )
    return geo


def _leaf(min_pid=0, **kw):
    return BFLeaf(node_id=1, geometry=_geometry(**kw), min_pid=min_pid)


class TestGeometryPlan:
    def test_bits_follow_equation_one(self):
        geo = _geometry(fpp=0.01, keys_per_group=16)
        assert geo.bits_per_bf == round(bits_for_capacity(16, 0.01))

    def test_budget_respected(self):
        geo = _geometry()
        assert geo.max_filters * geo.bits_per_bf <= (4096 - 48) * 8

    def test_lower_fpp_fewer_filters(self):
        assert _geometry(fpp=1e-8).max_filters < _geometry(fpp=0.1).max_filters

    def test_key_capacity_close_to_eq5(self):
        """Leaf capacity tracks Equation 5 within the header overhead."""
        geo = _geometry(fpp=1e-3)
        eq5 = -4096 * 8 * np.log(2) ** 2 / np.log(1e-3)
        assert geo.key_capacity == pytest.approx(eq5, rel=0.1)

    def test_explicit_hash_count(self):
        geo = BFLeafGeometry.plan(0.01, 16, hash_count=3)
        assert geo.hash_count == 3

    def test_invalid_pages_per_bf(self):
        with pytest.raises(ValueError):
            BFLeafGeometry.plan(0.01, 16, pages_per_bf=0)

    def test_grouped_pages(self):
        geo = BFLeafGeometry.plan(0.01, 2.0, pages_per_bf=4)
        assert geo.max_pages == geo.max_filters * 4


class TestAdd:
    def test_tracks_key_range(self):
        leaf = _leaf()
        leaf.add(50, 0)
        leaf.add(10, 0)
        leaf.add(99, 1)
        assert (leaf.min_key, leaf.max_key) == (10, 99)
        assert leaf.nkeys == 3
        assert leaf.pages_covered == 2

    def test_grows_filters_to_cover_pid(self):
        leaf = _leaf()
        leaf.add(1, 5)
        assert leaf.nfilters == 6

    def test_overflow_beyond_budget(self):
        leaf = _leaf(max_filters=2)
        leaf.add(1, 0)
        with pytest.raises(LeafOverflow):
            leaf.add(2, 2)

    def test_pid_below_range_rejected(self):
        leaf = _leaf(min_pid=10)
        with pytest.raises(ValueError):
            leaf.add(1, 5)

    def test_covers_key(self):
        leaf = _leaf()
        assert not leaf.covers_key(5)
        leaf.add(5, 0)
        leaf.add(10, 0)
        assert leaf.covers_key(7)
        assert not leaf.covers_key(11)

    def test_add_page_keys_matches_scalar_adds(self):
        scalar, bulk = _leaf(), _leaf()
        keys = np.asarray([3, 5, 9], dtype=np.int64)
        for key in keys:
            scalar.add(int(key), 2)
        bulk.add_page_keys(keys, 2)
        assert scalar.nkeys == bulk.nkeys
        assert scalar.min_key == bulk.min_key
        assert scalar.max_key == bulk.max_key
        assert scalar.filters[2]._bits == bulk.filters[2]._bits

    def test_add_page_keys_empty(self):
        leaf = _leaf()
        leaf.add_page_keys(np.empty(0, dtype=np.int64), 0)
        assert leaf.nkeys == 0

    def test_duplicate_reinsert_does_not_inflate_nkeys(self):
        """Regression: re-adding an already-present (key, page) pair used
        to bump nkeys even though no filter bit changed, inflating the
        leaf toward a premature split."""
        leaf = _leaf()
        leaf.add(42, 0)
        bits = leaf.filters[0]._bits
        assert leaf.add(42, 0) is False       # did not grow
        assert leaf.nkeys == 1
        assert leaf.filters[0]._bits == bits  # bit-level no-op
        assert leaf.filters[0].count == 2     # multiplicity still recorded
        # A different page group is a new (key, group) insertion.
        assert leaf.add(42, 1) is True
        assert leaf.nkeys == 2

    def test_extra_inserts_reconciled_across_paths(self):
        """add and add_page_keys agree: overflow is always
        nkeys - key_capacity, however the leaf got there."""
        leaf = _leaf(max_filters=4)
        capacity = leaf.key_capacity
        bulk = np.arange(capacity + 5, dtype=np.int64)
        leaf.add_page_keys(bulk, 0)
        assert leaf.extra_inserts == leaf.nkeys - capacity
        for i in range(7):
            leaf.add(10**6 + i, 1)            # novel keys via scalar path
        assert leaf.extra_inserts == leaf.nkeys - capacity

    def test_add_many_matches_scalar_adds(self):
        scalar, batch = _leaf(), _leaf()
        keys = [5, 9, 5, 700, 9, 12, 5]
        pids = [0, 0, 0, 2, 1, 2, 0]
        grew_scalar = sum(scalar.add(k, p) for k, p in zip(keys, pids))
        grew_batch = batch.add_many(keys, pids)
        assert grew_batch == grew_scalar
        assert scalar.nkeys == batch.nkeys
        assert scalar.extra_inserts == batch.extra_inserts
        assert (scalar.min_key, scalar.max_key) == (batch.min_key,
                                                    batch.max_key)
        assert scalar.pages_covered == batch.pages_covered
        assert [(f.count, f._bits) for f in scalar.filters] == \
               [(f.count, f._bits) for f in batch.filters]


class TestProbing:
    def test_matching_groups_finds_inserted(self):
        leaf = _leaf()
        leaf.add(42, 3)
        assert 3 in leaf.matching_groups(42)

    def test_runs_merge_adjacent_groups(self):
        leaf = _leaf()
        leaf.add(7, 0)
        leaf.add(7, 1)
        leaf.add(7, 2)
        runs = leaf.matching_page_runs(7)
        assert runs[0] == (0, 3)

    def test_runs_respect_min_pid(self):
        leaf = _leaf(min_pid=100)
        leaf.add(7, 102)
        runs = leaf.matching_page_runs(7)
        assert any(first <= 102 < first + n for first, n in runs)

    def test_grouped_run_spans_group(self):
        geo = BFLeafGeometry.plan(0.01, 2.0, pages_per_bf=4)
        leaf = BFLeaf(node_id=1, geometry=geo, min_pid=0)
        leaf.add(5, 6)          # group 1 covers pages 4..7
        leaf.add(5, 7)
        runs = leaf.matching_page_runs(5)
        assert runs[0][0] == 4

    def test_group_page_range_clipped(self):
        geo = BFLeafGeometry.plan(0.01, 2.0, pages_per_bf=4)
        leaf = BFLeaf(node_id=1, geometry=geo, min_pid=0)
        leaf.add(5, 5)          # coverage ends mid-group
        first, npages = leaf.group_page_range(1)
        assert (first, npages) == (4, 2)


class TestDeletes:
    def test_deleted_key_not_matched(self):
        leaf = _leaf()
        leaf.add(42, 0)
        leaf.mark_deleted(42)
        assert leaf.matching_groups(42) == []

    def test_reinsert_clears_tombstone(self):
        leaf = _leaf()
        leaf.add(42, 0)
        leaf.mark_deleted(42)
        leaf.add(42, 1)
        assert leaf.matching_groups(42)


class TestEffectiveFpp:
    def test_empty_leaf(self):
        assert _leaf().effective_fpp() == 0.0

    def test_nominal_within_capacity(self):
        leaf = _leaf()
        leaf.add(1, 0)
        assert leaf.effective_fpp() == pytest.approx(0.01)

    def test_degrades_with_overflow(self):
        leaf = _leaf(max_filters=4)
        capacity = leaf.key_capacity
        for i in range(capacity + capacity // 10):
            leaf.add(i, min(3, i % 4))
        assert leaf.effective_fpp() > leaf.geometry.fpp
        # Equation 14 with ratio ~0.1: fpp^(1/1.1)
        expected = 0.01 ** (1 / (1 + leaf.extra_inserts / capacity))
        assert leaf.effective_fpp() == pytest.approx(expected, rel=0.01)

    def test_bits_used(self):
        leaf = _leaf()
        leaf.add(1, 2)
        assert leaf.bits_used() == 3 * leaf.geometry.bits_per_bf

    def test_measured_fill(self):
        leaf = _leaf()
        assert leaf.measured_fill() == 0.0
        leaf.add(1, 0)
        assert 0 < leaf.measured_fill() < 1
