#!/usr/bin/env python
"""Quickstart: build a BF-Tree, probe it, and compare against a B+-Tree.

Walks through the library's core loop:

1. generate an ordered relation (the paper's synthetic relation R),
2. bulk load a BF-Tree at a chosen false-positive probability,
3. bind it to a simulated storage stack (index in memory, data on SSD),
4. run point probes and a range scan,
5. compare size and latency against the exact B+-Tree baseline,
6. replay the probes through the vectorized batch-probe engine
   (``search_many`` / ``run_probes(..., batch=True)``), which produces
   the same simulated results orders of magnitude faster in wall-clock.

Run with::

    python examples/quickstart.py

See the root README.md for install instructions, the package-layout map
(core/storage/workloads/harness/service) and the sharded-service
quickstart (``repro serve-bench`` / ``run_service``).
"""

from repro import BFTree, BFTreeConfig, build_stack
from repro.baselines import BPlusTree
from repro.harness import run_probes, us
from repro.workloads import point_probes, synthetic


def main() -> None:
    # 1. An ordered relation: 64k tuples of 256 bytes, unique primary key.
    relation = synthetic.generate(n_tuples=65536)
    print(f"relation: {relation.ntuples} tuples, {relation.npages} pages "
          f"({relation.size_bytes / 2**20:.0f} MB)")

    # 2. A BF-Tree at 0.1% false-positive probability...
    bf_tree = BFTree.bulk_load(
        relation, "pk", BFTreeConfig(fpp=1e-3), unique=True
    )
    # ... and the exact baseline.
    bp_tree = BPlusTree.bulk_load(relation, "pk", unique=True)
    print(f"BF-Tree:  {bf_tree.size_pages} index pages, "
          f"height {bf_tree.height}")
    print(f"B+-Tree:  {bp_tree.size_pages} index pages, "
          f"height {bp_tree.height}")
    print(f"capacity gain: {bp_tree.size_pages / bf_tree.size_pages:.1f}x")

    # 3. A single probe, step by step, on an explicit storage stack.
    stack = build_stack("MEM/SSD")
    bf_tree.bind(stack)
    result = bf_tree.search(12345)
    print(f"\nsearch(12345): found={result.found} tid={result.tids} "
          f"pages_read={result.pages_read} "
          f"false_pages={result.false_pages} "
          f"latency={us(stack.clock.now()):.1f} us")
    bf_tree.unbind()

    # 4. A measured probe batch through the harness.
    probes = point_probes(relation, "pk", n_probes=500, hit_rate=1.0)
    for name, index in (("BF-Tree", bf_tree), ("B+-Tree", bp_tree)):
        stats = run_probes(index, probes, "MEM/SSD")
        print(f"{name}: avg latency {us(stats.avg_latency):.1f} us, "
              f"false reads/search {stats.false_reads_per_search:.3f}")

    # 5. Range scan: the BF-Tree walks its leaf chain; overhead is the
    #    boundary partitions read in full.
    bf_tree.bind(build_stack("MEM/SSD"))
    scan = bf_tree.range_scan(10_000, 12_000)
    print(f"\nrange_scan(10000, 12000): {scan.matches} tuples from "
          f"{scan.pages_read} pages across {scan.leaves_visited} leaves")
    bf_tree.unbind()

    # 6. The batch-probe engine: search_many probes all keys in one
    #    vectorized pass per leaf — identical SearchResults and simulated
    #    I/O to a per-key loop, with an order of magnitude less
    #    interpreter overhead (run_probes(..., batch=True) and the CLI's
    #    `probe --batch` use it).
    batch_stats = run_probes(bf_tree, probes, "MEM/SSD", batch=True)
    print(f"\nbatch replay (search_many): avg latency "
          f"{us(batch_stats.avg_latency):.1f} us over "
          f"{batch_stats.n_probes} probes, hit rate "
          f"{batch_stats.hit_rate:.0%}")


if __name__ == "__main__":
    main()
