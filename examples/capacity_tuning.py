#!/usr/bin/env python
"""Capacity tuning: choosing an fpp for your storage budget.

The BF-Tree's knob is the false-positive probability: looser means a
smaller index but more wasted page reads.  This example sweeps fpp on
the synthetic primary key, prints the size/latency frontier for each of
the paper's five storage configurations, and reports the break-even
capacity gain per configuration (the Figure 6 analysis) together with
the analytical model's prediction (Section 5) for the same setup.

Run with::

    python examples/capacity_tuning.py
"""

from repro.harness import (
    break_even_table,
    format_table,
    sweep_bf_tree,
    us,
)
from repro.model import ModelParams, bf_cost, bf_size, bp_cost, bp_size
from repro.workloads import point_probes, synthetic

FPPS = (0.2, 0.02, 2e-3, 2e-4, 2e-6, 1e-8)


def main() -> None:
    relation = synthetic.generate(n_tuples=32768)
    probes = point_probes(relation, "pk", n_probes=120, hit_rate=1.0)
    print("sweeping fpp over the five storage configurations "
          "(this builds one tree per fpp)...")
    sweep = sweep_bf_tree(relation, "pk", probes, fpps=FPPS, unique=True)

    rows = []
    for fpp in sweep.fpps:
        gain = sweep.capacity_gain(fpp)
        lat = {c: sweep.latency(fpp, c) for c in sweep.configs}
        rows.append(
            [f"{fpp:g}", f"{gain:.1f}x"]
            + [f"{us(lat[c]):.0f}" for c in sweep.configs]
        )
    print(format_table(
        ["fpp", "gain"] + [f"{c} (us)" for c in sweep.configs], rows,
        title="\nsize/latency frontier",
    ))

    table = break_even_table(sweep, threshold=0.98)
    print(format_table(
        ["config", "B+-Tree (us)", "break-even gain"],
        [
            [c, f"{us(sweep.baseline_latency[c]):.0f}",
             f"{g:.1f}x" if g else "never"]
            for c, g in table.items()
        ],
        title="\nbreak-even capacity gain per configuration (98% parity)",
    ))

    # The analytical model's view of the same trade-off (index on SSD,
    # data on HDD, the Figure 4 cost ratios).
    params = ModelParams(
        notuples=relation.ntuples, tuplesize=256, keysize=8, avgcard=1.0,
    )
    print("\nanalytical model (Eq. 12/13, index SSD / data HDD):")
    for fpp in FPPS:
        p = params.with_fpp(fpp)
        print(f"  fpp={fpp:<8g} predicted time ratio "
              f"{bf_cost(p) / bp_cost(p):5.2f}, size ratio "
              f"{bf_size(p) / bp_size(p):6.4f}")


if __name__ == "__main__":
    main()
