#!/usr/bin/env python
"""Monitoring scenario: the smart-home dataset of paper §6.5.

An electricity-monitoring feed appends timestamped readings from many
clients.  The timestamp cardinality is wildly variable (average 52 rows
per timestamp, tail to thousands), which is the stress case for a
BF-Tree's uniform per-filter sizing.  This example:

* builds BF-, B+- and FD-Trees on the timestamp,
* compares cold- and warm-cache probe latency (the Figure 12 setup),
* shows the update path: appending a fresh batch of readings with
  Algorithm 3 inserts and watching the effective fpp degrade along
  Equation 14, then splitting restores it.

Run with::

    python examples/smart_home_monitoring.py
"""

import numpy as np

from repro import BFTree, BFTreeConfig
from repro.baselines import BPlusTree, FDTree
from repro.harness import run_probes, us
from repro.workloads import point_probes, shd


def main() -> None:
    relation = shd.generate(n_tuples=65536)
    profile = shd.cardinality_profile(relation)
    print(f"smart-home feed: {relation.ntuples} readings, per-timestamp "
          f"cardinality mean {profile['mean']:.0f} "
          f"(min {profile['min']:.0f}, max {profile['max']:.0f})")

    fpp = 2e-3
    bf_tree = BFTree.bulk_load(relation, "timestamp", BFTreeConfig(fpp=fpp))
    bp_tree = BPlusTree.bulk_load(relation, "timestamp")
    fd_tree = FDTree.bulk_load(relation, "timestamp")
    print(f"BF-Tree {bf_tree.size_pages} pages | B+-Tree "
          f"{bp_tree.size_pages} pages | FD-Tree {fd_tree.size_pages} pages "
          f"(gain vs B+: {bp_tree.size_pages / bf_tree.size_pages:.1f}x)")

    # All probes hit (the paper's hardest case for BF-Trees).
    probes = point_probes(relation, "timestamp", 300, hit_rate=1.0)
    print("\ncold vs warm caches (100% hit rate):")
    for config in ("SSD/SSD", "SSD/HDD", "HDD/HDD"):
        parts = []
        for name, index in (("BF", bf_tree), ("B+", bp_tree),
                            ("FD", fd_tree)):
            cold = run_probes(index, probes, config).avg_latency
            warm = run_probes(index, probes, config, warm=True).avg_latency
            parts.append(f"{name} {us(cold):8.1f}/{us(warm):8.1f} us")
        print(f"  {config}: " + " | ".join(parts) + "   (cold/warm)")

    # Live ingest: index the next half hour of readings without growing
    # the tree, then check the accuracy debt (Equation 14).
    print(f"\nappending fresh readings (overflow inserts, no splits):")
    last_leaf = bf_tree.leaves_in_order()[-1]
    last_ts = int(np.asarray(relation.columns["timestamp"]).max())
    # Fill the leaf to capacity, then push 10% past it.
    batch = max(1, last_leaf.key_capacity - last_leaf.nkeys
                + last_leaf.key_capacity // 10)
    for i in range(batch):
        bf_tree.insert_overflow(last_ts + 1 + i, relation.npages - 1)
    ratio = last_leaf.extra_inserts / max(
        1, last_leaf.nkeys - last_leaf.extra_inserts
    )
    print(f"  indexed {batch} new timestamps into the last leaf "
          f"(+{ratio:.0%} past capacity)")
    print(f"  effective fpp: nominal {fpp:g} -> "
          f"{last_leaf.effective_fpp():.2e} "
          f"(Equation 14 predicts {fpp ** (1 / (1 + ratio)):.2e})")

    # A split (Algorithm 2) restores the accuracy budget.
    before = bf_tree.n_leaves
    bf_tree._split_leaf(last_leaf)
    print(f"  after split: {before} -> {bf_tree.n_leaves} leaves, "
          f"tree-wide effective fpp {bf_tree.effective_fpp():.2e}")


if __name__ == "__main__":
    main()
