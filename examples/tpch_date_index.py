#!/usr/bin/env python
"""Data-warehouse scenario: indexing TPCH lineitem's shipdate (paper §6.4).

Lineitem rows arrive in order-date order, so the three date columns are
implicitly clustered (Figure 1a).  A BF-Tree on shipdate exploits that
clustering: dates repeat ~2400 times each at scale factor 1, so the tree
is tiny and very short, and probes for *absent* dates (common in
report-style dashboards asking about days with no activity) resolve
without touching the table.

This example also demonstrates index intersection (paper §8): finding
rows matching both a shipdate and a receiptdate by probing two BF-Trees
and intersecting the candidate pages — the combined false-positive rate
is the product of the two trees'.

Run with::

    python examples/tpch_date_index.py
"""

import numpy as np

from repro import BFTree, BFTreeConfig, build_stack
from repro.baselines import BPlusTree
from repro.harness import run_probes, us
from repro.workloads import point_probes, tpch


def main() -> None:
    relation = tpch.generate(n_tuples=65536)
    avgcard = tpch.shipdate_cardinality(relation)
    print(f"lineitem: {relation.ntuples} rows, "
          f"~{avgcard:.0f} rows per shipdate")

    bf_tree = BFTree.bulk_load(relation, "shipdate", BFTreeConfig(fpp=1e-4))
    bp_tree = BPlusTree.bulk_load(relation, "shipdate")
    print(f"BF-Tree {bf_tree.size_pages} pages (height {bf_tree.height}) vs "
          f"B+-Tree {bp_tree.size_pages} pages (height {bp_tree.height}) -> "
          f"{bp_tree.size_pages / bf_tree.size_pages:.1f}x smaller")
    print(f"filter granularity: {bf_tree.geometry.pages_per_bf} "
          f"data pages per Bloom filter (auto-tuned to the cardinality)")

    # Hit-rate sensitivity: the Figure 11 effect.  Misses are dashboard
    # queries about days beyond the loaded window - they resolve in the
    # index without touching the table.
    print("\nprobe latency by hit rate (index on SSD, data on HDD):")
    for hit_rate in (0.0, 0.05, 0.5, 1.0):
        probes = point_probes(relation, "shipdate", 200, hit_rate=hit_rate,
                              miss_mode="outside")
        bf_stats = run_probes(bf_tree, probes, "SSD/HDD")
        bp_stats = run_probes(bp_tree, probes, "SSD/HDD")
        print(f"  hit rate {hit_rate:4.0%}: BF "
              f"{us(bf_stats.avg_latency):8.1f} us "
              f"({bf_stats.data_reads_per_search:5.1f} data reads) | B+ "
              f"{us(bp_stats.avg_latency):8.1f} us "
              f"({bp_stats.data_reads_per_search:5.1f} data reads)")

    # Indexing the *implicitly clustered* commitdate (Figure 1a): the
    # table is sorted on shipdate, so commitdate is only approximately
    # ordered - exactly the partitioned case of paper section 4.1.
    commit_tree = BFTree.bulk_load(
        relation, "commitdate", BFTreeConfig(fpp=1e-3), ordered=False
    )
    commit = np.asarray(relation.columns["commitdate"])
    key = int(commit[2000])
    stack = build_stack("MEM/SSD")
    commit_tree.bind(stack)
    result = commit_tree.search(key)
    expected = int(np.count_nonzero(commit == key))
    print(f"\npartitioned commitdate index: {commit_tree.size_pages} pages; "
          f"search({key}) -> {result.matches} rows "
          f"(ground truth {expected}), {result.false_pages} false pages")
    commit_tree.unbind()

    # Index intersection (paper section 8): rows matching a shipdate AND a
    # commitdate; the combined false-positive rate is the product of the
    # two trees' rates.
    bf_tree.bind(stack)
    commit_tree.bind(stack)
    ship = int(np.asarray(relation.columns["shipdate"])[2000])
    both = bf_tree.intersect_probe(commit_tree, ship, key)
    print(f"intersection shipdate={ship} & commitdate={key}: "
          f"{both.matches} rows from {both.pages_read} pages "
          f"({both.false_pages} false)")


if __name__ == "__main__":
    main()
