"""Ablation: Bloom filters per data page vs per group of pages.

§4.1 states that one BF per data page "gives the best results because an
index probe will be directed only to the pages containing the key", while
grouping pages per filter is the knob for loosely-ordered data.  The
split property keeps the fpp constant either way, so the probe-cost
difference is purely the extra pages fetched per matching group.
"""

from benchmarks.conftest import N_PROBES
from repro.core import BFTree, BFTreeConfig
from repro.harness import format_table, run_probes, us
from repro.workloads import point_probes

GRANULARITIES = (1, 2, 4, 8)
FPP = 1e-3


def _measure(relation):
    probes = point_probes(relation, "pk", N_PROBES, hit_rate=1.0)
    rows = []
    for g in GRANULARITIES:
        tree = BFTree.bulk_load(
            relation, "pk", BFTreeConfig(fpp=FPP, pages_per_bf=g), unique=True
        )
        stats = run_probes(tree, probes, "MEM/SSD")
        rows.append([
            g, tree.size_pages, stats.avg_latency,
            stats.data_reads_per_search, stats.false_reads_per_search,
        ])
    return rows


def test_ablation_pages_per_bf(benchmark, emit, synth_relation):
    rows = benchmark.pedantic(
        _measure, args=(synth_relation,), rounds=1, iterations=1
    )
    emit(format_table(
        ["pages/BF", "index pages", "latency (us)", "data reads/search",
         "false reads/search"],
        [
            [g, pages, f"{us(lat):.1f}", f"{reads:.2f}", f"{false:.2f}"]
            for g, pages, lat, reads, false in rows
        ],
        title=f"Ablation: indexing granularity (PK, fpp={FPP:g})",
    ))
    # Per-page filters fetch the fewest data pages per probe.
    data_reads = [reads for __, __, __, reads, __ in rows]
    assert data_reads[0] == min(data_reads)
    # Coarser granularity reads more pages per matching probe.
    assert data_reads[-1] > data_reads[0]


def test_ablation_hash_count(benchmark, emit, synth_relation):
    """The paper fixes k=3; the optimal k beats it at tight fpp."""

    def _measure_k():
        probes = point_probes(synth_relation, "pk", N_PROBES, hit_rate=1.0)
        rows = []
        for k in (1, 2, 3, 5, None):
            tree = BFTree.bulk_load(
                synth_relation, "pk",
                BFTreeConfig(fpp=1e-4, hash_count=k), unique=True,
            )
            stats = run_probes(tree, probes, "MEM/SSD")
            rows.append([
                "optimal" if k is None else k,
                tree.geometry.hash_count,
                f"{stats.false_reads_per_search:.3f}",
            ])
        return rows

    rows = benchmark.pedantic(_measure_k, rounds=1, iterations=1)
    emit(format_table(
        ["configured k", "effective k", "false reads/search"],
        rows,
        title="Ablation: Bloom-filter hash count at fpp=1e-4",
    ))
    false = {str(row[0]): float(row[2]) for row in rows}
    # One hash function is far off the design fpp; optimal k achieves it.
    assert false["1"] > false["optimal"]
    assert false["optimal"] <= false["3"] + 0.01
