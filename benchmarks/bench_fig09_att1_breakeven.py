"""Figure 9: break-even points for the ATT1 index.

Same analysis as Figure 6, on the non-unique attribute.  The paper's
reading: the curves look qualitatively like the PK ones but the
break-even points shift toward *smaller* capacity gains, because false
positives now cost whole data pages; HDD/HDD and SSD/SSD still show the
largest tolerable gains.
"""

from benchmarks.conftest import FPP_GRID, N_PROBES
from repro.harness import (
    break_even_curves,
    break_even_table,
    format_series,
    format_table,
    sweep_bf_tree,
)
from repro.workloads import point_probes

PARITY = 0.98
HIT_RATE = 0.14


def _sweep(relation, trees):
    probes = point_probes(relation, "att1", N_PROBES, hit_rate=HIT_RATE)
    return sweep_bf_tree(
        relation, "att1", probes, fpps=list(FPP_GRID),
        tree_factory=lambda fpp: trees[fpp],
    )


def test_fig9_att1_break_even(benchmark, emit, synth_relation, att1_bf_trees):
    sweep = benchmark.pedantic(
        _sweep, args=(synth_relation, att1_bf_trees), rounds=1, iterations=1
    )
    for curve in break_even_curves(sweep):
        emit(format_series(
            f"Fig 9 [{curve.config}] (gain, normalized perf)",
            [f"{g:.1f}" for g in curve.capacity_gains],
            [f"{p:.3f}" for p in curve.normalized_performance],
        ))
    table = break_even_table(sweep, threshold=PARITY)
    emit(format_table(
        ["config", "break-even capacity gain"],
        [[k, f"{v:.1f}x" if v else "none"] for k, v in table.items()],
        title=f"Figure 9: ATT1 break-even capacity gains (parity {PARITY})",
    ))

    reached = {k: v for k, v in table.items() if v is not None}
    assert reached, "BF-Tree never reaches parity on ATT1"
    # Device-resident index configurations tolerate the largest gains.
    assert table["HDD/HDD"] is not None and table["HDD/HDD"] > 3
    assert table["SSD/SSD"] is not None


def test_fig9_shifted_vs_pk(benchmark, emit, synth_relation, att1_bf_trees,
                            pk_bf_trees):
    """Break-evens shift toward smaller gains vs the PK index (Fig 6 vs 9)
    on the configuration where data I/O dominates (index in memory)."""
    att1_probes = point_probes(synth_relation, "att1", N_PROBES,
                               hit_rate=HIT_RATE, seed=5)
    pk_probes = point_probes(synth_relation, "pk", N_PROBES, hit_rate=1.0,
                             seed=5)

    def _both():
        from repro.storage import MEM_HDD

        att1 = sweep_bf_tree(
            synth_relation, "att1", att1_probes, fpps=list(FPP_GRID),
            configs=[MEM_HDD], tree_factory=lambda f: att1_bf_trees[f],
        )
        pk = sweep_bf_tree(
            synth_relation, "pk", pk_probes, fpps=list(FPP_GRID),
            configs=[MEM_HDD], unique=True,
            tree_factory=lambda f: pk_bf_trees[f],
        )
        return att1, pk

    att1_sweep, pk_sweep = benchmark.pedantic(_both, rounds=1, iterations=1)
    att1_gain = break_even_table(att1_sweep, threshold=PARITY)["MEM/HDD"]
    pk_gain = break_even_table(pk_sweep, threshold=PARITY)["MEM/HDD"]
    emit(f"Fig 9 vs Fig 6 (MEM/HDD): ATT1 break-even {att1_gain and round(att1_gain, 1)}x, "
         f"PK break-even {pk_gain and round(pk_gain, 1)}x")
    assert pk_gain is not None and att1_gain is not None
    assert att1_gain <= pk_gain * 1.1
