"""Ablation: ordered vs partitioned (implicitly clustered) indexing.

§4.1 claims BF-Trees only need *partitioned* data.  This bench builds the
shipdate index on the fully sorted column and the commitdate index on the
merely-clustered column of the same table (Figure 1a's implicit
clustering) and compares size and probe cost.  The partitioned index pays
for range overlap — occasional neighbour-leaf probes and a conservative
filter sizing — but stays within a small factor of the ordered one.
"""

from benchmarks.conftest import N_PROBES
from repro.core import BFTree, BFTreeConfig
from repro.harness import format_table, run_probes, us
from repro.workloads import point_probes

FPP = 1e-4


def _measure(relation):
    ship = BFTree.bulk_load(relation, "shipdate", BFTreeConfig(fpp=FPP))
    commit = BFTree.bulk_load(
        relation, "commitdate", BFTreeConfig(fpp=FPP), ordered=False
    )
    rows = []
    for name, tree, column in (
        ("shipdate (ordered)", ship, "shipdate"),
        ("commitdate (partitioned)", commit, "commitdate"),
    ):
        probes = point_probes(relation, column, N_PROBES, hit_rate=1.0)
        stats = run_probes(tree, probes, "SSD/SSD")
        rows.append([
            name, tree.size_pages, stats.avg_latency,
            stats.index_reads_per_search, stats.data_reads_per_search,
        ])
    return rows


def test_ablation_partitioned_vs_ordered(benchmark, emit, tpch_relation):
    rows = benchmark.pedantic(
        _measure, args=(tpch_relation,), rounds=1, iterations=1
    )
    emit(format_table(
        ["index", "pages", "latency (us)", "index reads", "data reads"],
        [
            [n, p, f"{us(lat):.1f}", f"{ir:.2f}", f"{dr:.2f}"]
            for n, p, lat, ir, dr in rows
        ],
        title=f"Ablation: ordered vs partitioned column (fpp={FPP:g})",
    ))
    ordered_row, partitioned_row = rows
    # The partitioned index works at a bounded overhead.  The extra data
    # reads are genuine scatter, not index waste: one commitdate's rows
    # really do spread across a ~180-day shipdate window of the file
    # (dbgen draws commitdate = orderdate + U(30,90) while the sort key is
    # shipdate = orderdate + U(1,121)).  Under Eq-13 per-run fetch
    # accounting each of those disjoint runs costs a random positioning
    # (the pre-fix charging rode them sequentially), so the latency gap
    # honestly reflects the scatter: ~7x on SSD/SSD.
    assert partitioned_row[2] < ordered_row[2] * 10
    assert partitioned_row[1] < ordered_row[1] * 10
