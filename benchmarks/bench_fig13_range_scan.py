"""Figure 13: range-scan I/O of BF-Trees normalized to B+-Trees.

Scans of 1%, 5%, 10% and 20% of the PK domain, sweeping fpp.  The
BF-Tree reads its boundary partitions in full — that is the overhead the
figure quantifies.  Paper claims checked:

* overhead shrinks as fpp decreases (partitions hold fewer values);
* for ranges >= 5% the overhead is negligible at fpp <= 1e-4;
* for 1% ranges the overhead stays under ~20% once fpp <= 1e-6.
"""

from benchmarks.conftest import FPP_GRID
from repro.harness import format_table
from repro.workloads import FIGURE13_FRACTIONS, range_queries

FPPS = [f for f in FPP_GRID if f <= 0.1]


def _measure(relation, bf_trees, bp_tree):
    results = {}
    for fraction in FIGURE13_FRACTIONS:
        queries = range_queries(relation, "pk", fraction, n_queries=8)
        bp_pages = sum(
            bp_tree.range_scan(q.lo, q.hi).pages_read for q in queries
        )
        for fpp in FPPS:
            bf_pages = sum(
                bf_trees[fpp].range_scan(q.lo, q.hi).pages_read
                for q in queries
            )
            results[(fraction, fpp)] = bf_pages / bp_pages
    return results


def test_fig13_range_scan_io(benchmark, emit, synth_relation, pk_bf_trees,
                             pk_bp_tree):
    ratios = benchmark.pedantic(
        _measure, args=(synth_relation, pk_bf_trees, pk_bp_tree),
        rounds=1, iterations=1,
    )
    emit(format_table(
        ["fpp"] + [f"{f:.0%} scan" for f in FIGURE13_FRACTIONS],
        [
            [f"{fpp:g}"] + [
                f"{ratios[(fraction, fpp)]:.3f}"
                for fraction in FIGURE13_FRACTIONS
            ]
            for fpp in FPPS
        ],
        title="Figure 13: range-scan data I/O normalized to B+-Tree",
    ))

    # Overhead decreases with fpp for the narrow scans.
    assert ratios[(0.01, 0.1)] >= ratios[(0.01, 1e-8)]
    # >=5% scans: negligible overhead at tight fpp.
    for fraction in (0.05, 0.10, 0.20):
        assert ratios[(fraction, 2e-4)] < 1.30
        assert ratios[(fraction, 1e-8)] < 1.15
    # 1% scans: bounded overhead once fpp is tight.
    assert ratios[(0.01, 1e-8)] < 1.6
    assert ratios[(0.01, 1e-15)] < 1.4
    # Wider scans always amortize better than narrow ones.
    assert ratios[(0.20, 2e-4)] <= ratios[(0.01, 2e-4)]
