"""Figure 10: ATT1 index with warm caches.

The paper's readings reproduced here:

* the B+-Tree again improves more than the BF-Tree;
* on SSD/SSD the B+-Tree is actually *faster* warm, because the false
  positive overhead outweighs the BF-Tree's lightweight indexing once
  height stops mattering;
* with data on HDD (SSD/HDD, HDD/HDD) the BF-Tree stays ahead or equal
  because extra work hides behind the data-page fetch.
"""

from benchmarks.conftest import N_PROBES
from repro.harness import format_table, run_probes, us
from repro.workloads import point_probes

CONFIGS = ("SSD/SSD", "SSD/HDD", "HDD/HDD")
HIT_RATE = 0.14
# §6.3 compares against the *optimal* BF-Tree per configuration; at 14%
# hit rate false positives on misses dominate, so tight fpps win.
FPP_CANDIDATES = (2e-3, 2e-4, 2e-6, 1e-8)


def _measure(relation, bf_trees, bp_tree):
    probes = point_probes(relation, "att1", N_PROBES, hit_rate=HIT_RATE)
    rows = []
    for config in CONFIGS:
        best_fpp, bf_warm = min(
            ((fpp, run_probes(bf_trees[fpp], probes, config,
                              warm=True).avg_latency)
             for fpp in FPP_CANDIDATES),
            key=lambda pair: pair[1],
        )
        bf_cold = run_probes(bf_trees[best_fpp], probes, config).avg_latency
        bp_cold = run_probes(bp_tree, probes, config).avg_latency
        bp_warm = run_probes(bp_tree, probes, config, warm=True).avg_latency
        rows.append([config, best_fpp, bf_cold, bf_warm, bp_cold, bp_warm])
    return rows


def test_fig10_att1_warm_caches(benchmark, emit, synth_relation,
                                att1_bf_trees, att1_bp_tree):
    raw = benchmark.pedantic(
        _measure, args=(synth_relation, att1_bf_trees, att1_bp_tree),
        rounds=1, iterations=1,
    )
    emit(format_table(
        ["config", "best fpp", "BF cold (us)", "BF warm (us)",
         "B+ cold (us)", "B+ warm (us)"],
        [
            [c, f"{f:g}", f"{us(a):.1f}", f"{us(b):.1f}", f"{us(x):.1f}",
             f"{us(y):.1f}"]
            for c, f, a, b, x, y in raw
        ],
        title="Figure 10: warm caches, ATT1 index (optimal BF-Tree per config)",
    ))
    rows = [[c, a, b, x, y] for c, __, a, b, x, y in raw]
    by_config = {row[0]: row[1:] for row in rows}

    # B+-Tree improves at least as much as the BF-Tree everywhere.
    for config, (bf_cold, bf_warm, bp_cold, bp_warm) in by_config.items():
        assert bp_cold / bp_warm >= (bf_cold / bf_warm) * 0.9, config

    # Data on HDD: BF-Tree warm stays at least competitive (paper: 2.5x
    # faster on SSD/HDD, 1.5x on HDD/HDD; our simulator gives rough
    # parity since both must fetch the same HDD data pages, and the
    # BF-Tree's residual skew-guarded false runs each cost a full seek
    # under Eq-13 per-run accounting — ~13% on SSD/HDD where that seek
    # is the only HDD traffic besides the true fetch).
    for config in ("SSD/HDD", "HDD/HDD"):
        bf_cold, bf_warm, bp_cold, bp_warm = by_config[config]
        assert bf_warm <= bp_warm * 1.20, config
