"""Figure 2: the capacity/performance storage trade-off.

Prints the device catalogue (GB/$ vs random-read IOPS) and asserts the
two-cluster structure the paper reads off the plot: HDDs offer cheaper
capacity than every SSD, while SSDs deliver one to four orders of
magnitude more random-read IOPS.
"""

from repro.harness import format_table
from repro.model import DEVICE_CATALOG, tradeoff_summary


def test_fig2_device_clusters(benchmark, emit):
    summary = benchmark.pedantic(tradeoff_summary, rounds=1, iterations=1)
    rows = [
        [d.kind, d.name, f"{d.gb_per_dollar:.2f}", f"{d.random_read_iops:,.0f}"]
        for d in DEVICE_CATALOG
    ]
    emit(format_table(
        ["class", "device", "GB/$", "random read IOPS"],
        rows,
        title="Figure 2: capacity/performance trade-off (end-2013 devices)",
    ))
    assert summary["HDD"]["min_gb_per_dollar"] > summary["SSD"]["max_gb_per_dollar"]
    ratio_lo = summary["SSD"]["min_iops"] / summary["HDD"]["max_iops"]
    ratio_hi = summary["SSD"]["max_iops"] / summary["HDD"]["min_iops"]
    assert ratio_lo > 10          # at least one order of magnitude
    assert ratio_hi < 10**5       # at most ~four orders
