"""Figure 4: analytical comparison of BF-Tree against B+-Tree, compressed
B+-Tree, FD-Tree and SILT (Section 5).

Sweeps the false-positive probability over the paper's x-axis and prints
both panels — response time and index size, normalized to the vanilla
B+-Tree — then asserts the paper's reading of the figure:

* BF-Tree beats the B+-Tree on probe time for fpp <= ~1e-3;
* SILT is ~5% faster with a cached trie, ~32% slower when it loads;
* FD-Tree matches the B+-Tree's size and probes competitively;
* at fpp = 1e-8 the BF-Tree's size meets the compressed B+-Tree's ~10%.
"""

import pytest

from repro.harness import format_table
from repro.model import (
    COMPRESSED_SIZE_RATIO,
    FIGURE4_PARAMS,
    compare_at,
    crossover_fpp,
    smallest_at_equal_size,
    sweep_fpp,
)

FPP_AXIS = [10.0**e for e in range(-8, 0)]


def test_fig4_analytic_comparison(benchmark, emit):
    points = benchmark.pedantic(
        sweep_fpp, args=(FIGURE4_PARAMS, FPP_AXIS), rounds=1, iterations=1
    )
    time_rows = [
        [f"{p.fpp:.0e}", f"{p.bf_time:.3f}", f"{p.fd_time:.3f}",
         f"{p.silt_time_cached:.3f}", f"{p.silt_time_loaded:.3f}"]
        for p in points
    ]
    emit(format_table(
        ["fpp", "BF-Tree", "FD-Tree", "SILT (cached)", "SILT (loaded)"],
        time_rows,
        title="Figure 4(a): response time normalized to B+-Tree",
    ))
    size_rows = [
        [f"{p.fpp:.0e}", f"{p.bf_size:.4f}", f"{p.compressed_size:.2f}",
         f"{p.silt_size:.2f}", f"{p.fd_size:.2f}"]
        for p in points
    ]
    emit(format_table(
        ["fpp", "BF-Tree", "compressed B+", "SILT", "FD-Tree"],
        size_rows,
        title="Figure 4(b): index size normalized to B+-Tree",
    ))

    crossing = crossover_fpp(FIGURE4_PARAMS)
    assert crossing is not None and 1e-4 <= crossing <= 3e-3

    mid = compare_at(FIGURE4_PARAMS.with_fpp(1e-4))
    assert mid.silt_time_cached == pytest.approx(0.95, abs=0.02)
    assert mid.silt_time_loaded == pytest.approx(1.32, abs=0.03)
    assert abs(mid.fd_time - mid.bf_time) < 0.1
    assert mid.fd_size == 1.0

    equal_size_fpp = smallest_at_equal_size(FIGURE4_PARAMS)
    assert 1e-10 < equal_size_fpp < 1e-6
    edge = compare_at(FIGURE4_PARAMS.with_fpp(equal_size_fpp))
    assert edge.bf_size == pytest.approx(COMPRESSED_SIZE_RATIO, rel=0.05)
    emit(
        f"Fig 4 claims: BF beats B+ for fpp <= {crossing:g}; "
        f"BF size meets compressed B+ at fpp ~ {equal_size_fpp:.1e}"
    )
