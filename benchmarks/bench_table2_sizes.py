"""Table 2: B+-Tree and BF-Tree index sizes (pages) for PK and ATT1.

The paper's table, at 1 GB scale::

    Variation   fpp      PK      ATT1
    B+-Tree     -        19296   1748
    BF-Tree     0.2      406     38      (48x / 46x smaller)
    BF-Tree     0.1      578     54
    BF-Tree     1.5e-7   3928    358
    BF-Tree     1e-15    8565    786     (2.25x / 2.22x smaller)

Sizes scale linearly with the relation, so at our scale the page counts
are proportionally smaller; the capacity-gain *ratios* are the scale-free
quantity the assertions check: ~2.2x at fpp=1e-15 up to tens of x at
fpp=0.2.
"""

from repro.harness import format_table


def _size_table(pk_trees, att1_trees, pk_bp, att1_bp):
    rows = [["B+-Tree", "-", pk_bp.size_pages, att1_bp.size_pages, "-", "-"]]
    for fpp, tree in pk_trees.items():
        att1_tree = att1_trees[fpp]
        rows.append([
            "BF-Tree", f"{fpp:g}", tree.size_pages, att1_tree.size_pages,
            f"{pk_bp.size_pages / tree.size_pages:.2f}x",
            f"{att1_bp.size_pages / att1_tree.size_pages:.2f}x",
        ])
    return rows


def test_table2_index_sizes(benchmark, emit, pk_bf_trees, att1_bf_trees,
                            pk_bp_tree, att1_bp_tree):
    rows = benchmark.pedantic(
        _size_table,
        args=(pk_bf_trees, att1_bf_trees, pk_bp_tree, att1_bp_tree),
        rounds=1, iterations=1,
    )
    emit(format_table(
        ["variation", "fpp", "PK pages", "ATT1 pages", "PK gain", "ATT1 gain"],
        rows,
        title="Table 2: index size in pages (scaled relation)",
    ))
    pk_gain_loose = pk_bp_tree.size_pages / pk_bf_trees[0.2].size_pages
    pk_gain_tight = pk_bp_tree.size_pages / pk_bf_trees[1e-15].size_pages
    att1_gain_loose = att1_bp_tree.size_pages / att1_bf_trees[0.2].size_pages
    att1_gain_tight = att1_bp_tree.size_pages / att1_bf_trees[1e-15].size_pages

    # Paper: 48x .. 2.25x (PK) and 46x .. 2.22x (ATT1) across the sweep.
    assert pk_gain_loose > 15
    assert 1.5 < pk_gain_tight < 6
    assert att1_gain_loose > 10
    assert 1.5 < att1_gain_tight < 6

    # Size grows monotonically as fpp tightens.
    pk_sizes = [pk_bf_trees[f].size_pages for f in sorted(pk_bf_trees, reverse=True)]
    assert pk_sizes == sorted(pk_sizes)
