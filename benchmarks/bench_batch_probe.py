"""Batch-probe engine: wall-clock speedup of ``search_many`` vs per-key probes.

Not a paper figure — this benchmark validates the vectorized batch-probe
engine that makes every *other* figure benchmark faster to run.  It
replays 10k point probes against one BF-Tree twice, once through the
scalar ``search`` loop and once through ``search_many``, and checks the
engine's contract:

* the two replays produce **bit-identical** ``SearchResult`` lists and
  ``IOStats`` counters (simulated clock equal up to float summation
  order);
* ``search_many`` is at least **5x** faster in interpreter wall-clock.

The measured numbers are emitted as a JSON blob (alongside the usual
table) so CI can track the speedup over time.
"""

from __future__ import annotations

import json
import math
import time

from benchmarks.conftest import SYNTH_TUPLES
from repro.core import BFTree, BFTreeConfig
from repro.harness import format_table
from repro.storage import build_stack
from repro.workloads import point_probes

N_BATCH_PROBES = 10_000
MIN_SPEEDUP = 5.0


def _replay(tree, keys, batch: bool):
    """One replay on a fresh MEM/SSD stack; returns (results, io, clock, secs)."""
    stack = build_stack("MEM/SSD")
    tree.bind(stack)
    try:
        t0 = time.perf_counter()
        if batch:
            results = tree.search_many(keys)
        else:
            results = [tree.search(key) for key in keys]
        wall_secs = time.perf_counter() - t0
    finally:
        tree.unbind()
    return results, stack.stats.snapshot(), stack.clock.now(), wall_secs


def _measure(relation):
    tree = BFTree.bulk_load(
        relation, "pk", BFTreeConfig(fpp=1e-3), unique=True
    )
    probes = point_probes(relation, "pk", N_BATCH_PROBES, hit_rate=0.9)
    keys = [key.item() for key in probes.keys]
    scalar, io_scalar, clock_scalar, scalar_secs = _replay(tree, keys, False)
    batch, io_batch, clock_batch, batch_secs = _replay(tree, keys, True)
    return {
        "n_probes": len(keys),
        "tuples": relation.ntuples,
        "fpp": tree.config.fpp,
        "scalar_secs": scalar_secs,
        "batch_secs": batch_secs,
        "speedup": scalar_secs / batch_secs,
        "results_identical": scalar == batch,
        "iostats_identical": io_scalar == io_batch,
        "clock_close": math.isclose(
            clock_scalar, clock_batch, rel_tol=1e-9
        ),
        "simulated_clock_secs": clock_scalar,
    }


def test_batch_probe_speedup(benchmark, emit, synth_relation):
    report = benchmark.pedantic(
        _measure, args=(synth_relation,), rounds=1, iterations=1,
    )
    emit(format_table(
        ["metric", "value"],
        [[k, f"{v:.4g}" if isinstance(v, float) else str(v)]
         for k, v in report.items()],
        title=f"Batch-probe engine: search_many vs per-key search "
              f"({N_BATCH_PROBES} probes, {SYNTH_TUPLES} tuples)",
    ))
    emit("bench_batch_probe JSON: " + json.dumps(report))

    assert report["results_identical"], "search_many diverged from search"
    assert report["iostats_identical"], "IOStats diverged between replays"
    assert report["clock_close"], "simulated clock diverged between replays"
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"batch engine only {report['speedup']:.1f}x faster "
        f"(contract: >= {MIN_SPEEDUP}x)"
    )
