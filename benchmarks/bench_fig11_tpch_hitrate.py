"""Figure 11: TPCH shipdate point probes, varying the hit rate.

The lineitem table is partitioned on shipdate; every date repeats ~2400
times at SF1 (proportionally fewer here), so the BF-Tree is very short
("the high cardinality of each date results in short trees").  The paper
varies the fraction of probes that match:

* 0% hit rate: the BF-Tree wins decisively — misses are resolved in the
  (short) index without touching the data;
* 5%: BF-Tree still ahead, but data-fetch time starts to dominate;
* >=10%: the B+-Tree generally wins, except on the same-medium
  configurations where index traversal dominates and the shorter BF-Tree
  stays competitive;
* the BF-Trees measured are 1.6x-4x smaller.
"""

import pytest

from benchmarks.conftest import N_PROBES
from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig
from repro.harness import format_table, run_probes, us
from repro.storage import FIVE_CONFIGS
from repro.workloads import point_probes

HIT_RATES = (0.0, 0.05, 0.10, 0.50, 1.0)
FPP = 1e-4


def _measure(relation):
    bf = BFTree.bulk_load(relation, "shipdate", BFTreeConfig(fpp=FPP))
    bp = BPlusTree.bulk_load(relation, "shipdate")
    rows = []
    for hit_rate in HIT_RATES:
        # The paper's misses are dates with no data at all; in a dense
        # date domain those live outside the loaded window.
        probes = point_probes(relation, "shipdate", N_PROBES,
                              hit_rate=hit_rate, miss_mode="outside")
        for cfg in FIVE_CONFIGS:
            bf_lat = run_probes(bf, probes, cfg).avg_latency
            bp_lat = run_probes(bp, probes, cfg).avg_latency
            rows.append([hit_rate, cfg.name, bf_lat, bp_lat])
    return bf, bp, rows


def test_fig11_tpch_hit_rate(benchmark, emit, tpch_relation):
    bf, bp, rows = benchmark.pedantic(
        _measure, args=(tpch_relation,), rounds=1, iterations=1
    )
    emit(format_table(
        ["hit rate", "config", "BF (us)", "B+ (us)", "BF/B+ (norm.)"],
        [
            [f"{hr:.0%}", cfg, f"{us(a):.1f}", f"{us(b):.1f}", f"{b / a:.2f}"]
            for hr, cfg, a, b in rows
        ],
        title="Figure 11: TPCH shipdate probes vs hit rate "
              f"(BF-Tree fpp={FPP:g}, {bp.size_pages / bf.size_pages:.1f}x smaller)",
    ))
    table = {(hr, cfg): (a, b) for hr, cfg, a, b in rows}

    # 0% hit rate: the BF-Tree is never behind, and misses are resolved
    # for a tiny fraction of a hit probe's cost (no data pages touched).
    # The paper's 20x factor over the B+-Tree does not emerge from pure
    # I/O counts — at TPCH's cardinality both trees are equally short —
    # but the direction does (see EXPERIMENTS.md).
    for cfg in [c.name for c in FIVE_CONFIGS]:
        bf_lat, bp_lat = table[(0.0, cfg)]
        assert bf_lat <= bp_lat * 1.01, cfg
    assert table[(0.0, "MEM/HDD")][0] < table[(1.0, "MEM/HDD")][0] / 100

    # 100% hit rate: data fetch dominates; B+-Tree at least matches the
    # BF-Tree except on same-medium configs, where the shorter tree keeps
    # the BF-Tree close (within 25%).
    for cfg in ("MEM/SSD", "MEM/HDD", "SSD/HDD"):
        bf_lat, bp_lat = table[(1.0, cfg)]
        assert bf_lat >= bp_lat * 0.95, cfg
    bf_lat, bp_lat = table[(1.0, "SSD/SSD")]
    assert bf_lat <= bp_lat * 1.25

    # Size band: the paper reports 1.6x-4x smaller for TPCH.
    assert 1.3 < bp.size_pages / bf.size_pages < 8
