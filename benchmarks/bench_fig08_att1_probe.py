"""Figure 8: probe latency for the non-unique ATT1 index (avgcard ~11).

Like Figure 5, but on the timestamp-like attribute where each value
repeats ~11 times and only ~14% of probes match in the paper's setup.
The paper's observations reproduced here:

* false positives now cost more (each false group is a page read), so
  response times are higher than PK at loose fpp;
* the BF-Tree's height changes across the sweep, visible as a response
  time step on the configurations where index I/O dominates (SSD/SSD and
  HDD/HDD);
* with data on HDD benefits require near-zero false positives.
"""

from benchmarks.conftest import FPP_GRID, N_PROBES
from repro.baselines import HashIndex
from repro.harness import format_table, run_probes, us
from repro.storage import FIVE_CONFIGS
from repro.workloads import point_probes

HIT_RATE = 0.14      # §6.3: "14% of the index probes, on average, match"


def _measure(att1_trees, bp_tree, relation):
    probes = point_probes(relation, "att1", N_PROBES, hit_rate=HIT_RATE)
    bf_rows = {
        fpp: {
            cfg.name: run_probes(tree, probes, cfg).avg_latency
            for cfg in FIVE_CONFIGS
        }
        for fpp, tree in att1_trees.items()
    }
    bp_row = {
        cfg.name: run_probes(bp_tree, probes, cfg).avg_latency
        for cfg in FIVE_CONFIGS
    }
    hash_lat = run_probes(
        HashIndex.build(relation, "att1"), probes, "MEM/SSD"
    ).avg_latency
    heights = {fpp: tree.height for fpp, tree in att1_trees.items()}
    return bf_rows, bp_row, hash_lat, heights


def test_fig8_att1_probe_latency(benchmark, emit, att1_bf_trees,
                                 att1_bp_tree, synth_relation):
    bf_rows, bp_row, hash_lat, heights = benchmark.pedantic(
        _measure, args=(att1_bf_trees, att1_bp_tree, synth_relation),
        rounds=1, iterations=1,
    )
    config_names = [cfg.name for cfg in FIVE_CONFIGS]
    emit(format_table(
        ["fpp", "height"] + config_names,
        [
            [f"{fpp:g}", heights[fpp]]
            + [f"{us(lat[c]):.1f}" for c in config_names]
            for fpp, lat in bf_rows.items()
        ],
        title="Figure 8(a): BF-Tree ATT1 probe latency (us), 14% hit rate",
    ))
    emit(format_table(
        ["index"] + config_names + ["hash (mem)"],
        [["B+-Tree"] + [f"{us(bp_row[c]):.1f}" for c in config_names]
         + [f"{us(hash_lat):.1f}"]],
        title="Figure 8(b): B+-Tree / hash index reference",
    ))

    # Loose fpp hurts much more than on the PK index.
    for config in config_names:
        assert bf_rows[0.2][config] > bf_rows[2e-4][config]

    # Data on HDD: benefits require near-zero false positives (§6.3).
    # Eq-13 run accounting charges each residual false-positive run a
    # full 5ms seek, and on this skewed column the skew guard floors the
    # realized rate at a few 1e-4 — so convergence bottoms out around
    # fpp=2e-4 within ~25% on MEM/HDD and within 5% on HDD/HDD (where
    # index seeks dominate both trees equally).
    assert bf_rows[2e-4]["MEM/HDD"] <= bp_row["MEM/HDD"] * 1.25
    assert bf_rows[2e-4]["HDD/HDD"] <= bp_row["HDD/HDD"] * 1.05

    # The height step: trees get taller as fpp tightens.
    hs = [heights[f] for f in sorted(heights, reverse=True)]
    assert hs[0] <= hs[-1]
