"""Ablation: the §7 boundary-partition enumeration for range scans.

For narrow scans, the dominant BF-Tree cost is reading boundary
partitions in full.  The optimization enumerates the range's values on
the boundary leaves and probes their filters to fetch only useful pages
— practical only for small integer domains, which the paper notes.
"""

from repro.core import BFTree, BFTreeConfig
from repro.harness import format_table
from repro.workloads import range_queries


def _measure(relation, fpp=1e-4):
    tree = BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=fpp),
                            unique=True)
    rows = []
    for fraction in (0.01, 0.05):
        queries = range_queries(relation, "pk", fraction, n_queries=6)
        plain = sum(tree.range_scan(q.lo, q.hi).pages_read for q in queries)
        enum = sum(
            tree.range_scan(q.lo, q.hi, enumerate_boundaries=True).pages_read
            for q in queries
        )
        matches = sum(tree.range_scan(q.lo, q.hi).matches for q in queries)
        rows.append([f"{fraction:.0%}", plain, enum, matches])
    return rows


def test_ablation_boundary_enumeration(benchmark, emit, synth_relation):
    rows = benchmark.pedantic(
        _measure, args=(synth_relation,), rounds=1, iterations=1
    )
    emit(format_table(
        ["scan width", "pages (full boundary)", "pages (enumerated)",
         "matching tuples"],
        rows,
        title="Ablation: boundary-partition enumeration (paper §7)",
    ))
    for __, plain, enum, __ in rows:
        assert enum <= plain
    # The narrow scan gains the most.
    assert rows[0][2] < rows[0][1]
