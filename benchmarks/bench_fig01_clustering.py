"""Figure 1: implicit clustering in TPCH and the smart-home dataset.

Reproduces the two data series the paper plots to motivate BF-Trees:
(a) the three date columns of lineitem's first 10 000 rows stay close to
each other in creation order; (b) SHD timestamps increase and aggregate
energy climbs per client.  The bench prints summary statistics of both
series and asserts the clustering signatures.
"""

import numpy as np

from repro.harness import format_table
from repro.workloads import shd, tpch


def _tpch_summary(relation):
    series = tpch.clustering_series(relation, first_n=10_000)
    ship = series["shipdate"]
    rows = []
    for name, values in series.items():
        offset = np.abs(values - ship)
        rows.append([
            name, int(values.min()), int(values.max()),
            float(offset.mean()), float(offset.max()),
        ])
    return rows


def test_fig1a_tpch_clustering(benchmark, emit, tpch_relation):
    creation_order = tpch.generate(tpch_relation.ntuples, sort_on=None)
    rows = benchmark.pedantic(
        _tpch_summary, args=(creation_order,), rounds=1, iterations=1
    )
    emit(format_table(
        ["column", "min_day", "max_day", "mean |col - shipdate|", "max"],
        rows,
        title="Figure 1(a): TPCH implicit clustering (first 10k rows)",
    ))
    # The three dates of a row differ by days, not by the 2526-day span.
    mean_offsets = {row[0]: row[3] for row in rows}
    assert mean_offsets["commitdate"] < 0.05 * tpch.ORDER_DATE_SPAN_DAYS
    assert mean_offsets["receiptdate"] < 0.05 * tpch.ORDER_DATE_SPAN_DAYS


def test_fig1b_shd_clustering(benchmark, emit, shd_relation):
    series = benchmark.pedantic(
        shd.clustering_series, args=(shd_relation,),
        kwargs={"first_n": 100_000}, rounds=1, iterations=1,
    )
    ts = series["timestamp"]
    profile = shd.cardinality_profile(shd_relation)
    emit(format_table(
        ["metric", "value"],
        [
            ["rows plotted", len(ts)],
            ["timestamps monotone", bool(np.all(np.diff(ts) >= 0))],
            ["avg cardinality", profile["mean"]],
            ["cardinality min", profile["min"]],
            ["cardinality max", profile["max"]],
            ["99.7% quantile", profile["p997"]],
        ],
        title="Figure 1(b): SHD implicit clustering (timestamp, energy)",
    ))
    assert np.all(np.diff(ts) >= 0)
    assert 35 < profile["mean"] < 75   # paper: average 52
