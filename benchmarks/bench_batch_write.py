#!/usr/bin/env python
"""Batch write engine: wall-clock speedup of ``insert_many`` vs per-key inserts.

Not a paper figure — this benchmark validates the vectorized batch write
path that lets mixed workloads keep pace with the batched probe engine.
It replays the same insert stream against two identically bulk-loaded
BF-Trees, once through the scalar ``insert`` loop and once through
``insert_many``, and checks the engine's contract:

* the two replays leave **bit-identical** trees — the same leaf chain,
  filter bitsets, nkeys/tombstone bookkeeping and split points — and
  equal ``IOStats`` counters (simulated clock equal up to float
  summation order);
* ``insert_many`` is at least **5x** faster in interpreter wall-clock
  over 10k inserts.

A second, non-gating section reports the same identity for
``delete_many``.  The measured numbers are emitted as a JSON report so
CI can track the speedup over time.

Run standalone (also the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_batch_write.py --smoke
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import numpy as np

from repro.core import BFTree, BFTreeConfig
from repro.storage import build_stack
from repro.workloads import derive_seed, synthetic

N_BATCH_INSERTS = 10_000
MIN_SPEEDUP = 5.0


def _tree_fingerprint(tree):
    """The full write-visible state: leaf chain, filter bits, bookkeeping."""
    out = []
    for leaf in tree.leaves_in_order():
        out.append((
            leaf.node_id, leaf.min_pid, leaf.min_key, leaf.max_key,
            leaf.nkeys, leaf.extra_inserts, leaf.pages_covered,
            sorted(leaf.deleted_keys),
            [(f.count, f._bits) for f in leaf.filters],
        ))
    return out


def _insert_stream(relation, n_ops, seed, novel_share=0.02):
    """Mixed-workload-style inserts: re-index live keys at their true
    pages (the only write the immutable relation admits, and the hot
    path of ``repro serve-bench`` traces), plus a small slice of novel
    keys beyond the domain to exercise nkeys growth."""
    rng = np.random.default_rng(seed)
    values = np.asarray(relation.columns["pk"])
    hi = int(values.max())
    keys, pids = [], []
    novel = hi + 1
    spread = min(16, relation.npages)
    for _ in range(n_ops):
        if rng.random() < novel_share:
            keys.append(novel)
            pids.append(relation.npages - 1 - (novel - hi) % spread)
            novel += 1
        else:
            key = int(rng.integers(0, hi + 1))
            keys.append(key)
            pids.append(relation.page_of(key))
    return keys, pids


def _replay(tree, keys, pids, batch, config):
    stack = build_stack(config)
    tree.bind(stack)
    try:
        t0 = time.perf_counter()
        if batch:
            tree.insert_many(keys, pids)
        else:
            for key, pid in zip(keys, pids):
                tree.insert(key, pid)
        wall_secs = time.perf_counter() - t0
    finally:
        tree.unbind()
    return stack.stats.snapshot(), stack.clock.now(), wall_secs


def _insert_section(relation, args):
    keys, pids = _insert_stream(
        relation, args.ops, derive_seed(args.seed, "trace")
    )
    # Wall-clock gate: best-of-N fresh-tree replays per side, so a
    # scheduler hiccup on a shared CI runner can't flunk the contract.
    scalar_times, batch_times = [], []
    scalar_tree = batch_tree = None
    io_scalar = io_batch = clock_scalar = clock_batch = None
    for _ in range(args.trials):
        scalar_tree = BFTree.bulk_load(
            relation, "pk", BFTreeConfig(fpp=args.fpp), unique=True
        )
        batch_tree = BFTree.bulk_load(
            relation, "pk", BFTreeConfig(fpp=args.fpp), unique=True
        )
        io_scalar, clock_scalar, scalar_secs = _replay(
            scalar_tree, keys, pids, False, args.config
        )
        io_batch, clock_batch, batch_secs = _replay(
            batch_tree, keys, pids, True, args.config
        )
        scalar_times.append(scalar_secs)
        batch_times.append(batch_secs)
    return {
        "n_inserts": len(keys),
        "tuples": relation.ntuples,
        "fpp": args.fpp,
        "trials": args.trials,
        "scalar_secs": min(scalar_times),
        "batch_secs": min(batch_times),
        "speedup": min(scalar_times) / min(batch_times),
        "tree_identical":
            _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree),
        "iostats_identical": io_batch == io_scalar,
        "clock_close": math.isclose(clock_scalar, clock_batch,
                                    rel_tol=1e-9),
        "simulated_clock_secs": clock_scalar,
        "leaves_after": batch_tree.n_leaves,
    }


def _delete_section(relation, args):
    rng = np.random.default_rng(derive_seed(args.seed, "probes"))
    targets = rng.integers(0, relation.ntuples + 500,
                           size=args.ops // 4).tolist()
    scalar_tree = BFTree.bulk_load(
        relation, "pk", BFTreeConfig(fpp=args.fpp), unique=True
    )
    batch_tree = BFTree.bulk_load(
        relation, "pk", BFTreeConfig(fpp=args.fpp), unique=True
    )
    stack_s, stack_b = build_stack(args.config), build_stack(args.config)
    scalar_tree.bind(stack_s)
    batch_tree.bind(stack_b)
    t0 = time.perf_counter()
    scalar_out = [scalar_tree.delete(k) for k in targets]
    scalar_secs = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_out = batch_tree.delete_many(targets)
    batch_secs = time.perf_counter() - t0
    scalar_tree.unbind()
    batch_tree.unbind()
    return {
        "n_deletes": len(targets),
        "scalar_secs": scalar_secs,
        "batch_secs": batch_secs,
        "outcomes_identical": batch_out == scalar_out,
        "tree_identical":
            _tree_fingerprint(batch_tree) == _tree_fingerprint(scalar_tree),
        "iostats_identical":
            stack_b.stats.snapshot() == stack_s.stats.snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small relation for CI (seconds, not minutes)")
    parser.add_argument("--tuples", type=int, default=65536)
    parser.add_argument("--ops", type=int, default=N_BATCH_INSERTS)
    parser.add_argument("--trials", type=int, default=3,
                        help="fresh-tree replays per side; the gate "
                             "takes best-of to shrug off CI scheduler "
                             "noise")
    parser.add_argument("--fpp", type=float, default=1e-3)
    parser.add_argument("--config", default="MEM/SSD")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.tuples = min(args.tuples, 32768)

    relation = synthetic.generate(
        args.tuples, seed=derive_seed(args.seed, "relation")
    )
    report = {
        "params": {
            "tuples": args.tuples,
            "ops": args.ops,
            "fpp": args.fpp,
            "config": args.config,
            "smoke": args.smoke,
            "contract_min_speedup": MIN_SPEEDUP,
        },
        "inserts": _insert_section(relation, args),
        "deletes": _delete_section(relation, args),
    }

    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    failures = []
    ins = report["inserts"]
    if not ins["tree_identical"]:
        failures.append("insert_many left a different tree state than "
                        "the scalar loop")
    if not ins["iostats_identical"]:
        failures.append("insert_many IOStats diverged from the scalar loop")
    if not ins["clock_close"]:
        failures.append("insert_many simulated clock diverged")
    if ins["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"batch write engine only {ins['speedup']:.1f}x faster "
            f"(contract: >= {MIN_SPEEDUP}x)"
        )
    dels = report["deletes"]
    if not (dels["outcomes_identical"] and dels["tree_identical"]
            and dels["iostats_identical"]):
        failures.append("delete_many diverged from the scalar loop")
    if failures:
        print("\n".join("FAIL: " + f for f in failures), file=sys.stderr)
        return 1
    print(
        f"OK: {ins['n_inserts']} batched inserts bit-identical to the "
        f"scalar loop at {ins['speedup']:.1f}x wall-clock "
        f"(contract: >= {MIN_SPEEDUP}x); delete_many identical",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
