"""Figure 5: PK index probe latency vs fpp, five storage configurations.

Panel (a): the BF-Tree's average response time as fpp sweeps from 0.2 to
1e-15, one line per (index placement, data placement) pair.  Panel (b):
the B+-Tree under the same configurations plus the in-memory hash index.

Shape assertions (paper §6.2):
* latency falls as fpp tightens, then flattens (with a mild uptick once
  the taller tree costs more index I/O);
* with the index in memory and data on SSD the BF-Tree matches the
  B+-Tree for fpp <= ~2e-4 (each false-positive run costs a full random
  read under the Eq-13 per-run fetch accounting, which moves parity one
  grid step tighter than the pre-fix sequential undercharge suggested);
* the in-memory hash index performs like the memory-resident B+-Tree.
"""

import pytest

from benchmarks.conftest import FPP_GRID, N_PROBES
from repro.baselines import HashIndex
from repro.harness import format_table, run_probes, us
from repro.storage import FIVE_CONFIGS
from repro.workloads import point_probes


def _measure(pk_trees, bp_tree, relation):
    probes = point_probes(relation, "pk", N_PROBES, hit_rate=1.0)
    bf_rows = {}
    for fpp, tree in pk_trees.items():
        bf_rows[fpp] = {
            cfg.name: run_probes(tree, probes, cfg).avg_latency
            for cfg in FIVE_CONFIGS
        }
    bp_row = {
        cfg.name: run_probes(bp_tree, probes, cfg).avg_latency
        for cfg in FIVE_CONFIGS
    }
    hash_index = HashIndex.build(relation, "pk", unique=True)
    hash_lat = run_probes(hash_index, probes, "MEM/SSD").avg_latency
    return bf_rows, bp_row, hash_lat


def test_fig5_pk_probe_latency(benchmark, emit, pk_bf_trees, pk_bp_tree,
                               synth_relation):
    bf_rows, bp_row, hash_lat = benchmark.pedantic(
        _measure, args=(pk_bf_trees, pk_bp_tree, synth_relation),
        rounds=1, iterations=1,
    )
    config_names = [cfg.name for cfg in FIVE_CONFIGS]
    rows = [
        [f"{fpp:g}"] + [f"{us(lat[c]):.1f}" for c in config_names]
        for fpp, lat in bf_rows.items()
    ]
    emit(format_table(
        ["fpp"] + config_names, rows,
        title="Figure 5(a): BF-Tree PK probe latency (us), cold caches",
    ))
    emit(format_table(
        ["index"] + config_names + ["hash (mem)"],
        [["B+-Tree"] + [f"{us(bp_row[c]):.1f}" for c in config_names]
         + [f"{us(hash_lat):.1f}"]],
        title="Figure 5(b): B+-Tree / hash index reference",
    ))

    # Latency improves as fpp tightens (compare loosest vs mid sweep).
    for config in config_names:
        assert bf_rows[0.2][config] > bf_rows[2e-4][config]

    # MEM/SSD: BF-Tree matches B+-Tree at low fpp.  Eq-13 run accounting
    # charges every false-positive run one random SSD read (90us, vs the
    # 25us sequential ride it got before the _fetch_runs fix), so the
    # ~0.19 false runs/probe at fpp=2e-3 keep it ~18% behind there;
    # parity (within 10%) lands one grid step tighter, at 2e-4.
    assert bf_rows[2e-4]["MEM/SSD"] <= bp_row["MEM/SSD"] * 1.10
    assert bf_rows[2e-3]["MEM/SSD"] <= bp_row["MEM/SSD"] * 1.25

    # Hash index performs like the memory-resident B+-Tree (both are a
    # single data-page read plus CPU).
    assert hash_lat == pytest.approx(bp_row["MEM/SSD"], rel=0.2)

    # Config ordering: slower storage, slower probes.
    assert bf_rows[2e-3]["MEM/SSD"] < bf_rows[2e-3]["MEM/HDD"]
    assert bf_rows[2e-3]["SSD/HDD"] < bf_rows[2e-3]["HDD/HDD"]
