#!/usr/bin/env python
"""Batch scan engine: wall-clock speedup of Router scan batching vs scalar scans.

Not a paper figure — this benchmark validates the vectorized batch scan
path that completes the serving stack's batching story (PR 1 batched
point reads, PR 3 batched writes, this batches range scans).  It replays
one seeded ``scan_mix`` trace (YCSB-E-style: 75% reads / 5% inserts /
20% scans) through two identically built 4-shard services, once with
scan batching disabled (every scan flushes the read buffer and runs
through the scalar ``range_scan`` loop) and once with scans riding the
shared read-phase buffer into ``range_scan_many``, and checks the
engine's contract:

* the two replays produce **bit-identical** per-op results and equal
  merged ``IOStats`` (per-op simulated latencies and clocks equal up to
  float summation order);
* scan batching is at least **3x** faster in interpreter wall-clock
  over a 10k-op trace at 4 shards.

A second, gating-for-identity section compares ``BFTree.range_scan_many``
directly against the scalar ``range_scan`` loop on one unsharded tree.
The measured numbers are emitted as a JSON report so CI can track the
speedup over time.

Run standalone (also the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_scan_batch.py --smoke
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import numpy as np

from repro.core import BFTree, BFTreeConfig
from repro.harness import run_service
from repro.service import ShardedIndex
from repro.storage import build_stack
from repro.workloads import derive_seed, generate_trace, synthetic

N_OPS = 10_000
N_SHARDS = 4
MIN_SPEEDUP = 3.0


def _build_service(relation, args):
    return ShardedIndex.build(
        relation, "pk", n_shards=N_SHARDS, kind="bf",
        config=BFTreeConfig(fpp=args.fpp), unique=True,
    )


def _service_section(relation, args):
    trace = generate_trace(
        relation, "pk", mix="scan_mix", n_ops=args.ops, skew="zipfian",
        seed=derive_seed(args.seed, "trace"),
    )
    # Wall-clock gate: best-of-N fresh-service replays per side, so a
    # scheduler hiccup on a shared CI runner can't flunk the contract.
    scalar_times, batch_times = [], []
    rep_scalar = rep_batch = None
    for _ in range(args.trials):
        rep_scalar = run_service(
            _build_service(relation, args), trace, args.config,
            scan_batch=False,
        )
        rep_batch = run_service(
            _build_service(relation, args), trace, args.config,
        )
        scalar_times.append(rep_scalar.stats.wall_secs)
        batch_times.append(rep_batch.stats.wall_secs)
    scans = rep_batch.latency("scan")
    return {
        "n_ops": len(trace),
        "n_scans": int(np.count_nonzero(trace.ops == 2)),
        "n_shards": N_SHARDS,
        "tuples": relation.ntuples,
        "fpp": args.fpp,
        "trials": args.trials,
        "scalar_secs": min(scalar_times),
        "batch_secs": min(batch_times),
        "speedup": min(scalar_times) / min(batch_times),
        "results_identical": rep_batch.results == rep_scalar.results,
        "iostats_identical": rep_batch.io == rep_scalar.io,
        "latencies_close": bool(np.allclose(
            rep_batch.stats.op_latencies, rep_scalar.stats.op_latencies,
            rtol=1e-9,
        )),
        "makespan_close": math.isclose(
            rep_batch.stats.makespan, rep_scalar.stats.makespan,
            rel_tol=1e-9,
        ),
        "scan_p50_us": scans.p50 * 1e6,
        "scan_p99_us": scans.p99 * 1e6,
    }


def _engine_section(relation, args):
    """Unsharded BFTree.range_scan_many vs the scalar range_scan loop."""
    rng = np.random.default_rng(derive_seed(args.seed, "probes"))
    n = max(200, args.ops // 10)
    los = rng.integers(0, relation.ntuples, size=n)
    widths = rng.integers(1, 101, size=n)
    windows = [(int(lo), int(lo + w - 1)) for lo, w in zip(los, widths)]

    def build():
        return BFTree.bulk_load(
            relation, "pk", BFTreeConfig(fpp=args.fpp), unique=True
        )

    scalar_tree, batch_tree = build(), build()
    stack_s, stack_b = build_stack(args.config), build_stack(args.config)
    scalar_tree.bind(stack_s)
    batch_tree.bind(stack_b)
    t0 = time.perf_counter()
    scalar_out = [scalar_tree.range_scan(lo, hi) for lo, hi in windows]
    scalar_secs = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_out = batch_tree.range_scan_many(windows)
    batch_secs = time.perf_counter() - t0
    scalar_tree.unbind()
    batch_tree.unbind()
    return {
        "n_scans": len(windows),
        "scalar_secs": scalar_secs,
        "batch_secs": batch_secs,
        "speedup": scalar_secs / batch_secs,
        "results_identical": batch_out == scalar_out,
        "iostats_identical":
            stack_b.stats.snapshot() == stack_s.stats.snapshot(),
        "clock_close": math.isclose(stack_s.clock.now(), stack_b.clock.now(),
                                    rel_tol=1e-9),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small relation for CI (seconds, not minutes)")
    parser.add_argument("--tuples", type=int, default=65536)
    parser.add_argument("--ops", type=int, default=N_OPS)
    parser.add_argument("--trials", type=int, default=3,
                        help="fresh-service replays per side; the gate "
                             "takes best-of to shrug off CI scheduler "
                             "noise")
    parser.add_argument("--fpp", type=float, default=1e-3)
    parser.add_argument("--config", default="MEM/SSD")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.tuples = min(args.tuples, 16384)

    relation = synthetic.generate(
        args.tuples, seed=derive_seed(args.seed, "relation")
    )
    report = {
        "params": {
            "tuples": args.tuples,
            "ops": args.ops,
            "fpp": args.fpp,
            "config": args.config,
            "smoke": args.smoke,
            "contract_min_speedup": MIN_SPEEDUP,
        },
        "service": _service_section(relation, args),
        "engine": _engine_section(relation, args),
    }

    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    failures = []
    svc = report["service"]
    if not svc["results_identical"]:
        failures.append("scan-batched replay returned different results "
                        "than the scalar scan path")
    if not svc["iostats_identical"]:
        failures.append("scan-batched IOStats diverged from the scalar "
                        "scan path")
    if not (svc["latencies_close"] and svc["makespan_close"]):
        failures.append("scan-batched simulated latencies/makespan "
                        "diverged")
    if svc["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"batch scan engine only {svc['speedup']:.1f}x faster "
            f"(contract: >= {MIN_SPEEDUP}x)"
        )
    eng = report["engine"]
    if not (eng["results_identical"] and eng["iostats_identical"]
            and eng["clock_close"]):
        failures.append("range_scan_many diverged from the scalar loop")
    if failures:
        print("\n".join("FAIL: " + f for f in failures), file=sys.stderr)
        return 1
    print(
        f"OK: {svc['n_scans']} batched scans in a {svc['n_ops']}-op "
        f"scan_mix trace bit-identical to the scalar path at "
        f"{svc['speedup']:.1f}x wall-clock (contract: >= {MIN_SPEEDUP}x); "
        f"unsharded range_scan_many identical at {eng['speedup']:.1f}x",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
