"""Figure 12: smart-home dataset — BF-Tree vs B+-Tree vs FD-Tree.

The index is built on the SHD timestamp (average cardinality 52, heavy
tail to thousands), probed with 100% hit rate — the hardest case for
BF-Trees per §6.4.  Panel (a): cold caches, five configurations, optimal
BF-Tree vs B+-Tree with the capacity gain.  Panel (b): warm caches with
FD-Tree included.

Paper claims checked: BF-Tree matches the B+-Tree at a 2x-3x capacity
gain; FD-Tree performs like both when data is on HDD and trails on
SSD/SSD.
"""

from benchmarks.conftest import N_PROBES
from repro.baselines import BPlusTree, FDTree
from repro.core import BFTree, BFTreeConfig
from repro.harness import format_table, run_probes, us
from repro.storage import FIVE_CONFIGS
from repro.workloads import point_probes

FPP_CANDIDATES = (2e-2, 2e-3, 2e-4, 2e-5)
WARM_CONFIGS = ("SSD/SSD", "SSD/HDD", "HDD/HDD")


def _measure(relation):
    probes = point_probes(relation, "timestamp", N_PROBES, hit_rate=1.0)
    bp = BPlusTree.bulk_load(relation, "timestamp")
    fd = FDTree.bulk_load(relation, "timestamp")
    trees = {
        fpp: BFTree.bulk_load(relation, "timestamp", BFTreeConfig(fpp=fpp))
        for fpp in FPP_CANDIDATES
    }
    cold_rows = []
    for cfg in FIVE_CONFIGS:
        bp_lat = run_probes(bp, probes, cfg).avg_latency
        best_fpp, best_lat = min(
            ((fpp, run_probes(tree, probes, cfg).avg_latency)
             for fpp, tree in trees.items()),
            key=lambda pair: pair[1],
        )
        gain = bp.size_pages / trees[best_fpp].size_pages
        cold_rows.append([cfg.name, best_fpp, best_lat, bp_lat, gain])
    warm_rows = []
    for name in WARM_CONFIGS:
        bp_lat = run_probes(bp, probes, name, warm=True).avg_latency
        fd_lat = run_probes(fd, probes, name, warm=True).avg_latency
        best_fpp, best_lat = min(
            ((fpp, run_probes(tree, probes, name, warm=True).avg_latency)
             for fpp, tree in trees.items()),
            key=lambda pair: pair[1],
        )
        gain = bp.size_pages / trees[best_fpp].size_pages
        warm_rows.append([name, best_fpp, best_lat, bp_lat, fd_lat, gain])
    return cold_rows, warm_rows


def test_fig12_shd(benchmark, emit, shd_relation):
    cold_rows, warm_rows = benchmark.pedantic(
        _measure, args=(shd_relation,), rounds=1, iterations=1
    )
    emit(format_table(
        ["config", "best fpp", "BF (us)", "B+ (us)", "capacity gain"],
        [
            [c, f"{f:g}", f"{us(a):.1f}", f"{us(b):.1f}", f"{g:.1f}x"]
            for c, f, a, b, g in cold_rows
        ],
        title="Figure 12(a): SHD timestamp probes, cold caches",
    ))
    emit(format_table(
        ["config", "best fpp", "BF (us)", "B+ (us)", "FD (us)",
         "capacity gain"],
        [
            [c, f"{f:g}", f"{us(a):.1f}", f"{us(b):.1f}", f"{us(d):.1f}",
             f"{g:.1f}x"]
            for c, f, a, b, d, g in warm_rows
        ],
        title="Figure 12(b): SHD with warm caches (FD-Tree included)",
    ))

    # Cold: the optimal BF-Tree stays close to the B+-Tree while being at
    # least 2x smaller (paper: gains 2x-3x with matching latency).  Our
    # simulator charges the BF-Tree ~1 extra page per probe of
    # group-granularity overfetch plus a few tenths of a skew-guarded
    # false page, and under Eq-13 per-run accounting each of those costs
    # a full random positioning — up to ~0.6 extra random reads per
    # probe on this heavy-tailed feed, hence the wider bands.
    for config, __, bf_lat, bp_lat, gain in cold_rows:
        tolerance = 1.55 if config.endswith("SSD") else 1.45
        assert bf_lat <= bp_lat * tolerance, config
        assert gain >= 2.0, config

    # Warm: FD-Tree ~ B+-Tree when data on HDD (paper's headline for
    # Fig 12b); on SSD/SSD it cannot beat the B+-Tree.
    warm = {row[0]: row for row in warm_rows}
    for config in ("SSD/HDD", "HDD/HDD"):
        __, __, bf_lat, bp_lat, fd_lat, __ = warm[config]
        assert abs(fd_lat - bp_lat) / bp_lat < 0.15, config
    __, __, bf_lat, bp_lat, fd_lat, __ = warm["SSD/SSD"]
    assert fd_lat >= bp_lat * 0.95
