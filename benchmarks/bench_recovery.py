"""Recovery benchmark: checkpoint size and recovery time, bf vs. bplus.

The paper's Table 2 story measured as bytes on disk: a BF-Tree's
checkpoint serializes Bloom filter bit arrays plus per-leaf fences,
while a B+-Tree's checkpoint must serialize every key and rid list —
so the BF-Tree checkpoint should come in well under half the B+-Tree's
on the same relation (the gate below enforces < 0.5x).  Also reported:
wall-clock checkpoint and recovery (snapshot restore + WAL-tail replay)
times with a burst of logged deletes in the tail.

Runs standalone (CI artifact mode) or under pytest:

    python benchmarks/bench_recovery.py --smoke --out recovery.json
    pytest benchmarks/bench_recovery.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api import make_index                      # noqa: E402
from repro.harness import format_table                # noqa: E402
from repro.persist import DurableIndex, recover       # noqa: E402
from repro.storage import Relation                    # noqa: E402

SMOKE_TUPLES = 8192
FULL_TUPLES = 65536
N_TAIL_OPS = 64
FPP = 1e-3


def _measure_backend(relation: Relation, kind: str, directory: Path) -> dict:
    """Checkpoint one backend, mutate, recover, and time every phase."""
    inner = make_index(kind, relation, "pk", unique=True, fpp=FPP)

    t0 = time.perf_counter()
    index = DurableIndex(inner, directory, sync_every=N_TAIL_OPS, kind=kind,
                         column="pk", unique=True, fpp=FPP)
    checkpoint_s = time.perf_counter() - t0
    checkpoint_bytes = index.snapshot_path.stat().st_size

    n = relation.ntuples
    step = max(1, n // N_TAIL_OPS)
    deleted = list(range(0, n, step))[:N_TAIL_OPS]
    for key in deleted:
        index.delete(key)
    index.close()
    wal_bytes = index.wal_path.stat().st_size

    t0 = time.perf_counter()
    recovered = recover(directory, relation)
    recovery_s = time.perf_counter() - t0

    assert not recovered.search(deleted[0]).found
    assert not recovered.search(deleted[-1]).found
    assert recovered.search(deleted[0] + 1 if step > 1 else n - 1).found \
        or step == 1
    assert recovered.n_leaves == index.n_leaves
    recovered.close()

    return {
        "kind": kind,
        "checkpoint_bytes": checkpoint_bytes,
        "wal_bytes": wal_bytes,
        "checkpoint_seconds": round(checkpoint_s, 6),
        "recovery_seconds": round(recovery_s, 6),
        "tail_ops": len(deleted),
    }


def run(n_tuples: int) -> dict:
    relation = Relation(
        {"pk": np.arange(n_tuples, dtype=np.int64)}, tuple_size=256,
        name="recovery-rel",
    )
    results = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as tmp:
        for kind in ("bf", "bplus"):
            results[kind] = _measure_backend(relation, kind,
                                             Path(tmp) / kind)
    ratio = results["bf"]["checkpoint_bytes"] / max(
        1, results["bplus"]["checkpoint_bytes"]
    )
    return {
        "relation_tuples": n_tuples,
        "fpp": FPP,
        "backends": results,
        "bf_over_bplus_checkpoint_ratio": round(ratio, 4),
        "gate": "bf checkpoint bytes < 0.5x bplus checkpoint bytes",
        "gate_passed": ratio < 0.5,
    }


def report_table(report: dict) -> str:
    rows = [
        [
            r["kind"],
            f"{r['checkpoint_bytes']:,}",
            f"{r['wal_bytes']:,}",
            f"{r['checkpoint_seconds'] * 1e3:.1f}",
            f"{r['recovery_seconds'] * 1e3:.1f}",
        ]
        for r in report["backends"].values()
    ]
    return format_table(
        ["backend", "checkpoint B", "WAL tail B", "checkpoint ms",
         "recovery ms"],
        rows,
        title=(f"Durability: checkpoint size & recovery time "
               f"({report['relation_tuples']:,} tuples, ratio "
               f"{report['bf_over_bplus_checkpoint_ratio']:.2f})"),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help=f"small relation ({SMOKE_TUPLES} tuples) for CI")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    report = run(SMOKE_TUPLES if args.smoke else FULL_TUPLES)
    print(report_table(report))
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    if not report["gate_passed"]:
        print("GATE FAILED: BF-Tree checkpoint is not < 0.5x the "
              "B+-Tree's", file=sys.stderr)
        return 1
    return 0


def test_bf_checkpoint_under_half_of_bplus(benchmark, emit):
    report = benchmark.pedantic(run, args=(SMOKE_TUPLES,), rounds=1,
                                iterations=1)
    emit(report_table(report))
    assert report["gate_passed"], report["bf_over_bplus_checkpoint_ratio"]
    for r in report["backends"].values():
        assert r["recovery_seconds"] < 60


if __name__ == "__main__":
    raise SystemExit(main())
