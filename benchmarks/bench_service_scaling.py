#!/usr/bin/env python
"""Sharded service scaling: throughput and tail latency vs shard count.

Not a paper figure — this benchmark validates the serving layer built on
top of the reproduction: a :class:`~repro.service.sharded.ShardedIndex`
driven by Zipfian/uniform YCSB-style mixes through the vectorized
batch-probe engine.  It reports, as one JSON document:

* **scaling** — p50/p95/p99 simulated latency (per op type) and
  throughput for shards in {1, 2, 4, 8} under at least three operation
  mixes (shards own independent device stacks, so simulated throughput
  is ops / slowest-shard-clock — the makespan a parallel service
  achieves);
* **equivalence** — the sharded service's probe results and summed
  per-shard IOStats are **bit-identical** to a single unsharded index
  replaying the same trace, across uniform and Zipfian key popularity
  (the contract the leaf-slicing construction guarantees);
* **speedup** — wall-clock throughput of the batched sharded service at
  4 shards over the unsharded scalar probe loop (contract: >= 2x; in
  practice far higher, since the batch engine alone is ~35x);
* **executors** — the cores-vs-throughput curve: serial, thread and
  process executors replay the same trace at a fixed shard count, the
  process executor sweeping worker counts.  All three must stay
  bit-identical in results and merged IOStats (gated always); the
  process executor at 4 workers must beat serial by >= 2x — gated only
  on machines with >= 4 cores, recorded as skipped (with the core
  count) elsewhere, since the GIL-free speedup physically needs cores.

Run standalone (also the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_service_scaling.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import BFTree, BFTreeConfig
from repro.harness import run_service
from repro.service import ShardedIndex
from repro.storage import build_stack
from repro.workloads import derive_seed, generate_trace, synthetic

MIN_SPEEDUP = 2.0
MIN_PROCESS_SPEEDUP = 2.0
MIN_CORES_FOR_PROCESS_GATE = 4
DEFAULT_MIXES = ("read_heavy", "balanced", "insert_heavy", "scan_mix")


def _build_service(relation, column, n_shards, fpp, unique):
    return ShardedIndex.build(
        relation, column, n_shards=n_shards, kind="bf",
        config=BFTreeConfig(fpp=fpp), unique=unique,
    )


def _scaling_section(relation, column, unique, args):
    """Latency percentiles + throughput per (mix, shard count)."""
    out = {}
    for mix in args.mixes:
        trace = generate_trace(
            relation, column, mix=mix, n_ops=args.ops, skew=args.skew,
            theta=args.theta, seed=derive_seed(args.seed, "trace"),
        )
        points = []
        for n_shards in args.shards:
            service = _build_service(relation, column, n_shards, args.fpp,
                                     unique)
            report = run_service(service, trace, args.config,
                                 threads=args.threads)
            points.append(report.to_dict())
        out[mix] = points
    return out


def _unsharded_scalar_replay(tree, keys, config):
    """Per-key probe loop on one stack; returns (results, io, wall secs)."""
    stack = build_stack(config)
    tree.bind(stack)
    try:
        t0 = time.perf_counter()
        results = [tree.search(k) for k in keys]
        wall = time.perf_counter() - t0
    finally:
        tree.unbind()
    return results, stack.stats.snapshot(), wall


def _equivalence_section(relation, column, unique, args):
    """Bit-identity of sharded vs unsharded probes + the speedup gate."""
    out = {"traces": {}, "speedup": {}}
    # The throughput contract is stated at 4 shards; when the caller's
    # shard list omits 4, measure at the largest requested count instead
    # of spuriously failing the gate.
    speedup_shards = 4 if 4 in args.shards else max(args.shards)
    for skew in ("uniform", "zipfian"):
        trace = generate_trace(
            relation, column, mix="read_only", n_ops=args.ops, skew=skew,
            theta=args.theta, seed=derive_seed(args.seed, "trace"),
            hit_rate=0.9,
        )
        keys = [k.item() for k in trace.keys]
        tree = BFTree.bulk_load(
            relation, column, BFTreeConfig(fpp=args.fpp), unique=unique
        )
        ref_results, ref_io, scalar_wall = _unsharded_scalar_replay(
            tree, keys, args.config
        )
        checks = []
        for n_shards in args.shards:
            service = _build_service(relation, column, n_shards, args.fpp,
                                     unique)
            report = run_service(service, trace, args.config,
                                 threads=args.threads)
            identical_results = report.results == ref_results
            identical_io = report.io == ref_io
            checks.append({
                "shards": report.n_shards,
                "requested_shards": n_shards,
                "results_identical": identical_results,
                "iostats_identical": identical_io,
                "uniform_height": service.uniform_height,
            })
            if skew == "zipfian" and n_shards == speedup_shards:
                batched_wall = report.stats.wall_secs
                out["speedup"] = {
                    "shards_measured": speedup_shards,
                    "scalar_unsharded_secs": scalar_wall,
                    "batched_sharded_secs": batched_wall,
                    "speedup": scalar_wall / batched_wall,
                    "contract_min": MIN_SPEEDUP,
                }
        out["traces"][skew] = checks
    return out


def _executor_section(relation, column, unique, args):
    """Executor equivalence + the process-worker cores-vs-throughput curve.

    Every run builds a fresh service from the same relation and replays
    the same seeded balanced trace, so the serial run is the bit-exact
    reference for every executor and worker count.
    """
    n_shards = 4 if 4 in args.shards else max(args.shards)
    trace = generate_trace(
        relation, column, mix="balanced", n_ops=args.ops, skew=args.skew,
        theta=args.theta, seed=derive_seed(args.seed, "trace"),
    )

    def replay(executor, workers=None, threads=None):
        service = _build_service(relation, column, n_shards, args.fpp,
                                 unique)
        return run_service(service, trace, args.config, executor=executor,
                           workers=workers, threads=threads)

    cores = os.cpu_count() or 1
    out = {"cores": cores, "shards": n_shards, "equivalence": [],
           "curve": [], "gate": {}}
    ref = replay("serial")
    serial_wall = ref.stats.wall_secs
    for executor, kwargs in (
        ("serial", {}),
        ("thread", {"threads": min(4, n_shards)}),
        ("process", {"workers": min(4, n_shards)}),
    ):
        report = ref if executor == "serial" else replay(executor, **kwargs)
        out["equivalence"].append({
            "executor": executor,
            **kwargs,
            "results_identical": report.results == ref.results,
            "iostats_identical": report.io == ref.io,
            "latencies_identical": bool(np.array_equal(
                report.stats.op_latencies, ref.stats.op_latencies
            )),
            "wall_secs": report.stats.wall_secs,
        })
    for workers in sorted({1, 2, min(4, n_shards), n_shards}):
        report = replay("process", workers=workers)
        wall = report.stats.wall_secs
        out["curve"].append({
            "workers": workers,
            "wall_secs": wall,
            "ops_per_wall_sec": len(trace) / wall if wall > 0 else 0.0,
            "speedup_vs_serial": serial_wall / wall if wall > 0 else 0.0,
        })
    at_four = next((p for p in out["curve"]
                    if p["workers"] == min(4, n_shards)), out["curve"][-1])
    out["gate"] = {
        "cores": cores,
        "required": cores >= MIN_CORES_FOR_PROCESS_GATE,
        "min_cores": MIN_CORES_FOR_PROCESS_GATE,
        "min_speedup": MIN_PROCESS_SPEEDUP,
        "workers_measured": at_four["workers"],
        "speedup": at_four["speedup_vs_serial"],
    }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("--tuples", type=int, default=65536)
    parser.add_argument("--ops", type=int, default=3000)
    parser.add_argument("--shards", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    parser.add_argument("--mixes", nargs="+", default=list(DEFAULT_MIXES))
    parser.add_argument("--skew", default="zipfian",
                        choices=["zipfian", "uniform"])
    parser.add_argument("--theta", type=float, default=0.99)
    parser.add_argument("--fpp", type=float, default=1e-3)
    parser.add_argument("--config", default="MEM/SSD")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.tuples = min(args.tuples, 16384)
        args.ops = min(args.ops, 600)
        args.mixes = args.mixes[:3]

    relation = synthetic.generate(
        args.tuples, seed=derive_seed(args.seed, "relation")
    )
    column = "pk"
    unique = True

    report = {
        "params": {
            "tuples": args.tuples,
            "ops": args.ops,
            "shards": args.shards,
            "mixes": list(args.mixes),
            "skew": args.skew,
            "theta": args.theta,
            "fpp": args.fpp,
            "config": args.config,
            "threads": args.threads,
            "smoke": args.smoke,
        },
        "scaling": _scaling_section(relation, column, unique, args),
        "equivalence": _equivalence_section(relation, column, unique, args),
        "executors": _executor_section(relation, column, unique, args),
    }

    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    # Gate the contracts (exit non-zero so CI fails loudly).
    failures = []
    for skew, checks in report["equivalence"]["traces"].items():
        for check in checks:
            if not (check["results_identical"] and check["iostats_identical"]):
                failures.append(f"{skew}/{check['requested_shards']} shards "
                                "diverged from the unsharded index")
    speedup = report["equivalence"]["speedup"].get("speedup", 0.0)
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"batched sharded throughput only {speedup:.1f}x the scalar "
            f"loop (contract: >= {MIN_SPEEDUP}x)"
        )
    for check in report["executors"]["equivalence"]:
        if not (check["results_identical"] and check["iostats_identical"]
                and check["latencies_identical"]):
            failures.append(f"{check['executor']} executor diverged from "
                            "the serial reference")
    gate = report["executors"]["gate"]
    if gate["required"] and gate["speedup"] < MIN_PROCESS_SPEEDUP:
        failures.append(
            f"process executor at {gate['workers_measured']} workers only "
            f"{gate['speedup']:.2f}x serial on a {gate['cores']}-core "
            f"machine (contract: >= {MIN_PROCESS_SPEEDUP}x)"
        )
    if failures:
        print("\n".join("FAIL: " + f for f in failures), file=sys.stderr)
        return 1
    measured = report["equivalence"]["speedup"].get("shards_measured")
    if gate["required"]:
        process_note = (f"process executor {gate['speedup']:.1f}x serial "
                        f"at {gate['workers_measured']} workers")
    else:
        process_note = (f"process speedup gate skipped "
                        f"({gate['cores']} < {gate['min_cores']} cores)")
    print(
        f"OK: bit-identical across shard counts and executors; "
        f"{measured}-shard batched replay {speedup:.1f}x the scalar loop; "
        f"{process_note}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
