"""Figure 7: PK index with warm caches.

With internal nodes memory-resident, only the leaf access (and the data
pages) cost I/O, so tree height stops mattering.  The paper's reading:

* the taller B+-Tree improves more from warm caches than the BF-Tree
  (~2x vs ~25-33% on same-medium configurations);
* the BF-Tree stays at least competitive in every configuration because
  of its lightweight leaf-level indexing.

Only the three configurations with a device-resident index are shown
(the MEM/* configurations are trivially identical to Figure 5).
"""

from benchmarks.conftest import N_PROBES
from repro.harness import format_table, run_probes, us
from repro.workloads import point_probes

CONFIGS = ("SSD/SSD", "SSD/HDD", "HDD/HDD")
BEST_FPP = 2e-4     # the optimal BF-Tree of the Figure 5 sweep


def _measure(relation, bf_tree, bp_tree):
    probes = point_probes(relation, "pk", N_PROBES, hit_rate=1.0)
    rows = []
    for config in CONFIGS:
        bf_cold = run_probes(bf_tree, probes, config).avg_latency
        bf_warm = run_probes(bf_tree, probes, config, warm=True).avg_latency
        bp_cold = run_probes(bp_tree, probes, config).avg_latency
        bp_warm = run_probes(bp_tree, probes, config, warm=True).avg_latency
        rows.append([config, bf_cold, bf_warm, bp_cold, bp_warm])
    return rows


def test_fig7_pk_warm_caches(benchmark, emit, synth_relation, pk_bf_trees,
                             pk_bp_tree):
    rows = benchmark.pedantic(
        _measure, args=(synth_relation, pk_bf_trees[BEST_FPP], pk_bp_tree),
        rounds=1, iterations=1,
    )
    emit(format_table(
        ["config", "BF cold (us)", "BF warm (us)", "B+ cold (us)",
         "B+ warm (us)", "B+ gain", "BF gain"],
        [
            [c, f"{us(a):.1f}", f"{us(b):.1f}", f"{us(x):.1f}", f"{us(y):.1f}",
             f"{x / y:.2f}x", f"{a / b:.2f}x"]
            for c, a, b, x, y in rows
        ],
        title=f"Figure 7: warm caches, PK index (BF-Tree fpp={BEST_FPP:g})",
    ))
    for config, bf_cold, bf_warm, bp_cold, bp_warm in rows:
        bp_gain = bp_cold / bp_warm
        bf_gain = bf_cold / bf_warm
        # The taller B+-Tree benefits more from warm caches.
        assert bp_gain >= bf_gain * 0.95, config
        # The BF-Tree stays competitive warm (within 10%).
        assert bf_warm <= bp_warm * 1.10, config
    # Same-medium (HDD/HDD): B+ improves ~2x, BF by less (paper: ~33%).
    hdd = rows[-1]
    assert hdd[3] / hdd[4] > 1.6
    assert hdd[1] / hdd[2] < hdd[3] / hdd[4]
