"""Figure 6: break-even points for the PK index.

Plots normalized performance (B+-Tree latency / BF-Tree latency) against
capacity gain (B+-Tree pages / BF-Tree pages) for the five storage
configurations, and reports where each curve crosses 1.0 — the largest
capacity gain at which the BF-Tree still matches the B+-Tree.

Paper claim: the break-even shifts toward *larger* capacity gains as the
storage gets slower (memory -> SSD -> HDD), because false reads and extra
CPU amortize against expensive index I/O.
"""

from benchmarks.conftest import FPP_GRID, N_PROBES
from repro.harness import (
    break_even_curves,
    break_even_table,
    format_series,
    format_table,
    sweep_bf_tree,
)
from repro.workloads import point_probes

#: BF-Trees on memory-resident indexes approach the B+-Tree from below;
#: the paper's crossings for those configurations are parity points.
PARITY = 0.98


def _sweep(relation, trees):
    probes = point_probes(relation, "pk", N_PROBES, hit_rate=1.0)
    return sweep_bf_tree(
        relation, "pk", probes, fpps=list(FPP_GRID), unique=True,
        tree_factory=lambda fpp: trees[fpp],
    )


def test_fig6_pk_break_even(benchmark, emit, synth_relation, pk_bf_trees):
    sweep = benchmark.pedantic(
        _sweep, args=(synth_relation, pk_bf_trees), rounds=1, iterations=1
    )
    curves = break_even_curves(sweep)
    for curve in curves:
        emit(format_series(
            f"Fig 6 [{curve.config}] (gain, normalized perf)",
            [f"{g:.1f}" for g in curve.capacity_gains],
            [f"{p:.3f}" for p in curve.normalized_performance],
        ))
    table = break_even_table(sweep, threshold=PARITY)
    emit(format_table(
        ["config", "break-even capacity gain"],
        [[k, f"{v:.1f}x" if v else "none"] for k, v in table.items()],
        title=f"Figure 6: break-even capacity gains (parity {PARITY})",
    ))

    # Every configuration reaches parity somewhere.
    assert all(v is not None for v in table.values())
    # Slower index storage tolerates larger capacity gains.
    assert table["HDD/HDD"] >= table["SSD/SSD"] >= table["MEM/SSD"] * 0.9
    assert table["HDD/HDD"] >= table["MEM/HDD"]
    # The paper's strongest case is HDD/HDD (its prototype breaks even
    # beyond 30x).  With Eq-13 per-run fetch accounting every
    # false-positive run costs a full 5ms seek instead of a 38us
    # sequential ride, which roughly halves the crossing in our
    # simulator — still far beyond every other configuration.
    assert table["HDD/HDD"] > 12
