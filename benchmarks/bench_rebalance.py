#!/usr/bin/env python
"""Elastic rebalancing under a moving hotspot: on vs off, gated.

Not a paper figure — this benchmark validates the dynamic-topology
subsystem built on top of the reproduction.  A Zipfian hotspot drifts
across the key space in phases (``skew="hotspot"``); a static partition
melts one shard at a time, while the :class:`~repro.service.rebalance.
Rebalancer` splits the hot shard and re-merges cooled neighbours.  The
two runs replay the *same* seeded trace through the same windowed loop
(:func:`~repro.service.rebalance.run_elastic_service`), differing only
in whether the control loop is attached.

Simulated per-op service times are load-independent, so the tail-latency
comparison is made under the open-loop FIFO queueing model
(:func:`~repro.service.stats.queued_response_times`): ops arrive at a
fixed rate and queue behind their shard's backlog.  The arrival rate is
derived from the static run's own mean service time at utilisation
``rho`` per shard, so the melted hot shard's queue diverges while a
balanced topology keeps queues short.

Gates (exit 1 on failure, so CI fails loudly):

* rebalancing ON performs at least one split (the hotspot is hot enough
  to trip the controller);
* ON beats OFF on queued p99 latency;
* ON beats OFF on mean per-window load-balance ratio (max/mean shard
  clock; 1.0 is perfect balance);
* per-op results of both runs are bit-identical (topology changes never
  change answers).

Run standalone (also the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_rebalance.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import BFTreeConfig
from repro.service import (
    Rebalancer,
    RebalancerConfig,
    ShardedIndex,
    run_elastic_service,
)
from repro.workloads import derive_seed, generate_trace, synthetic

RHO = 0.7                       # per-shard utilisation for the arrival rate
MIN_INITIAL_SHARDS = 4          # the contract is stated at >= 4 shards


def _build_service(relation, column, n_shards, fpp):
    return ShardedIndex.build(
        relation, column, n_shards=n_shards, kind="bf",
        config=BFTreeConfig(fpp=fpp), unique=True,
    )


def _run(relation, column, trace, args, rebalance: bool):
    service = _build_service(relation, column, args.shards, args.fpp)
    rebalancer = None
    if rebalance:
        rebalancer = Rebalancer(service, RebalancerConfig(
            hot_factor=args.hot_factor,
            cold_factor=args.cold_factor,
            sustain=args.sustain,
            cooldown=args.cooldown,
            max_shards=args.max_shards,
        ))
    report = run_elastic_service(
        service, trace, args.config,
        rebalancer=rebalancer,
        window_ops=args.window_ops,
        threads=args.threads,
    )
    return report


def _side(report, arrival_rate) -> dict:
    return {
        "initial_shards": report.initial_shards,
        "final_shards": report.final_shards,
        "final_epoch": report.final_epoch,
        "service_latency": report.latency_summary().to_dict(),
        "queued_latency": (
            report.queued_latency_summary(arrival_rate).to_dict()
        ),
        "mean_load_balance": report.windows.mean_load_balance(),
        "worst_load_balance": report.windows.worst_load_balance(),
        "rebalance": report.log.to_dict(),
        "wall_secs": report.wall_secs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("--tuples", type=int, default=65536)
    parser.add_argument("--ops", type=int, default=16384)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--phases", type=int, default=4)
    parser.add_argument("--hotspot-width", type=float, default=0.25)
    parser.add_argument("--theta", type=float, default=0.99)
    parser.add_argument("--mix", default="read_heavy")
    parser.add_argument("--window-ops", type=int, default=512)
    parser.add_argument("--hot-factor", type=float, default=1.7)
    parser.add_argument("--cold-factor", type=float, default=0.6)
    parser.add_argument("--sustain", type=int, default=1)
    parser.add_argument("--cooldown", type=int, default=1)
    parser.add_argument("--max-shards", type=int, default=16)
    parser.add_argument("--rho", type=float, default=RHO,
                        help="per-shard utilisation for the arrival rate")
    parser.add_argument("--fpp", type=float, default=1e-3)
    parser.add_argument("--config", default="MEM/SSD")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.tuples = min(args.tuples, 32768)
        args.ops = min(args.ops, 8192)
        args.window_ops = min(args.window_ops, 256)
    if args.shards < MIN_INITIAL_SHARDS:
        parser.error(f"--shards must be >= {MIN_INITIAL_SHARDS} "
                     "(the acceptance contract is stated there)")

    relation = synthetic.generate(
        args.tuples, seed=derive_seed(args.seed, "relation")
    )
    column = "pk"
    trace = generate_trace(
        relation, column, mix=args.mix, n_ops=args.ops, skew="hotspot",
        theta=args.theta, phases=args.phases,
        hotspot_width=args.hotspot_width,
        seed=derive_seed(args.seed, "trace"),
    )

    off = _run(relation, column, trace, args, rebalance=False)
    on = _run(relation, column, trace, args, rebalance=True)

    # One arrival rate for both sides, anchored to the *static* run:
    # rho per shard at the initial shard count.
    mean_service = float(off.latency_summary().mean)
    arrival_rate = (
        args.rho * off.initial_shards / mean_service
        if mean_service > 0 else 1.0
    )

    report = {
        "params": {
            "tuples": args.tuples,
            "ops": args.ops,
            "shards": args.shards,
            "phases": args.phases,
            "hotspot_width": args.hotspot_width,
            "theta": args.theta,
            "mix": args.mix,
            "window_ops": args.window_ops,
            "hot_factor": args.hot_factor,
            "cold_factor": args.cold_factor,
            "sustain": args.sustain,
            "cooldown": args.cooldown,
            "max_shards": args.max_shards,
            "rho": args.rho,
            "arrival_rate": arrival_rate,
            "fpp": args.fpp,
            "config": args.config,
            "threads": args.threads,
            "smoke": args.smoke,
        },
        "off": _side(off, arrival_rate),
        "on": _side(on, arrival_rate),
        "results_identical": on.results == off.results,
    }
    report["gates"] = {
        "split_fired": on.log.n_splits >= 1,
        "queued_p99_improved": (
            report["on"]["queued_latency"]["p99"]
            < report["off"]["queued_latency"]["p99"]
        ),
        "load_balance_improved": (
            report["on"]["mean_load_balance"]
            < report["off"]["mean_load_balance"]
        ),
        "results_identical": report["results_identical"],
    }

    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    failures = [name for name, ok in report["gates"].items() if not ok]
    if failures:
        print("\n".join(f"FAIL: gate {name}" for name in failures),
              file=sys.stderr)
        return 1
    print(
        "OK: rebalancing ON ({}->{} shards, {} splits / {} merges) beat "
        "OFF on queued p99 ({:.3g}s vs {:.3g}s) and load balance "
        "({:.2f} vs {:.2f})".format(
            on.initial_shards, on.final_shards,
            on.log.n_splits, on.log.n_merges,
            report["on"]["queued_latency"]["p99"],
            report["off"]["queued_latency"]["p99"],
            report["on"]["mean_load_balance"],
            report["off"]["mean_load_balance"],
        ),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
