"""Shared fixtures for the paper-reproduction benchmarks.

Scale note: the paper's synthetic relation is 1 GB (4M x 256 B tuples).
Simulated time is linear in tuple count and every size ratio is scale-free
(the paper itself notes the capacity gain "remains the same for any file
size"), so the benchmarks default to a 32 MB relation (131072 tuples,
8192 data pages) to keep wall-clock time reasonable.  Set the environment
variable ``REPRO_SCALE`` to scale tuple counts up or down.

Every benchmark prints the paper-style rows/series through
``emit`` (bypassing pytest capture) so that
``pytest benchmarks/ --benchmark-only`` output contains the reproduction
tables alongside pytest-benchmark's wall-clock table.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig
from repro.workloads import shd, synthetic, tpch

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

SYNTH_TUPLES = int(131072 * SCALE)
TPCH_TUPLES = int(65536 * SCALE)
SHD_TUPLES = int(65536 * SCALE)

#: The fpp sweep of Figures 5-10 / Tables 2-3 (paper: 0.2 down to 1e-15).
FPP_GRID = (0.2, 0.1, 0.02, 2e-3, 2e-4, 2e-6, 1e-8, 1e-15)

N_PROBES = max(50, int(200 * min(1.0, SCALE)))


@pytest.fixture(scope="session")
def emit(request):
    """Print a reproduction table to the real terminal (uncaptured)."""
    capmanager = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print("\n" + text, flush=True)
        else:  # pragma: no cover - no capture plugin
            print("\n" + text, flush=True)

    return _emit


@pytest.fixture(scope="session")
def synth_relation():
    return synthetic.generate(SYNTH_TUPLES)


@pytest.fixture(scope="session")
def tpch_relation():
    return tpch.generate(TPCH_TUPLES)


@pytest.fixture(scope="session")
def shd_relation():
    return shd.generate(SHD_TUPLES)


@pytest.fixture(scope="session")
def pk_bf_trees(synth_relation):
    """One BF-Tree per fpp on the primary key (shared across benches)."""
    return {
        fpp: BFTree.bulk_load(
            synth_relation, "pk", BFTreeConfig(fpp=fpp), unique=True
        )
        for fpp in FPP_GRID
    }


@pytest.fixture(scope="session")
def att1_bf_trees(synth_relation):
    """One BF-Tree per fpp on the non-unique ATT1 column."""
    return {
        fpp: BFTree.bulk_load(synth_relation, "att1", BFTreeConfig(fpp=fpp))
        for fpp in FPP_GRID
    }


@pytest.fixture(scope="session")
def pk_bp_tree(synth_relation):
    return BPlusTree.bulk_load(synth_relation, "pk", unique=True)


@pytest.fixture(scope="session")
def att1_bp_tree(synth_relation):
    return BPlusTree.bulk_load(synth_relation, "att1")
