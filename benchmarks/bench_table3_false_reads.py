"""Table 3: false reads per search for the PK and ATT1 indexes.

The paper's 1 GB numbers::

    fpp        PK      ATT1
    0.2        13.58   701.15
    0.1        1.23    80.93
    1.9e-2     0.11    4.75
    1.8e-3     0       0.36
    1.72e-4    0.01    0.04

The scale-free shape: false reads drop steeply (faster than linearly in
fpp, because tighter filters also mean fewer filters probed per leaf) and
are essentially zero by fpp ~ 1e-3 for PK; the non-unique ATT1 column
sees roughly an order of magnitude more false reads at every fpp.
"""

from benchmarks.conftest import FPP_GRID, N_PROBES
from repro.harness import format_table, run_probes
from repro.workloads import point_probes

FPPS = [f for f in FPP_GRID if f >= 2e-6]


def _false_read_rows(pk_trees, att1_trees, relation):
    pk_probes = point_probes(relation, "pk", N_PROBES, hit_rate=1.0)
    att1_probes = point_probes(relation, "att1", N_PROBES, hit_rate=1.0)
    rows = []
    for fpp in FPPS:
        pk_stats = run_probes(pk_trees[fpp], pk_probes, "MEM/SSD")
        att1_stats = run_probes(att1_trees[fpp], att1_probes, "MEM/SSD")
        rows.append([
            f"{fpp:g}",
            round(pk_stats.false_reads_per_search, 3),
            round(att1_stats.false_reads_per_search, 3),
        ])
    return rows


def test_table3_false_reads(benchmark, emit, pk_bf_trees, att1_bf_trees,
                            synth_relation):
    rows = benchmark.pedantic(
        _false_read_rows,
        args=(pk_bf_trees, att1_bf_trees, synth_relation),
        rounds=1, iterations=1,
    )
    emit(format_table(
        ["fpp", "false reads (PK)", "false reads (ATT1)"],
        rows,
        title="Table 3: false reads per search",
    ))
    pk = [row[1] for row in rows]
    att1 = [row[2] for row in rows]
    # Steeply decreasing in fpp, for both columns.
    assert pk[0] > pk[1] > pk[2]
    assert att1[0] > att1[1] > att1[2]
    # Near-zero by the 2e-4 row (paper: 0-0.01 by 1.8e-3 for PK).
    assert pk[-2] < 0.5 and pk[-1] < 0.1
    # ATT1 suffers roughly an order of magnitude more false reads.
    assert att1[0] > 3 * pk[0]
