"""Ablation: the three delete strategies of paper §7.

1. **Naive in-filter deletion** would add the deleted fraction straight
   to the fpp (``new_fpp = fpp + d``) — modeled analytically.
2. **Tombstone list** (the paper's default): fpp preserved, but the list
   grows with every delete and must eventually trigger a rebuild.
3. **Counting filters** (§7's "variations of BFs that support deletes"):
   true in-place deletes at 4x the filter space.

The bench deletes 10% of the keys under each strategy and reports the
false reads per surviving-key probe plus the space cost.
"""

from repro.core import BFTree, BFTreeConfig
from repro.core.bloom import fpp_after_deletes
from repro.harness import format_table, run_probes
from repro.workloads import point_probes

FPP = 1e-2
DELETE_FRACTION = 0.10


def _survivor_false_reads(tree, relation, deleted: set) -> float:
    survivors = [
        int(k) for k in point_probes(relation, "pk", 300, hit_rate=1.0).keys
        if int(k) not in deleted
    ]
    stats = run_probes(tree, survivors, "MEM/SSD")
    return stats.false_reads_per_search


def _measure(relation):
    step = int(1 / DELETE_FRACTION)
    doomed = set(range(0, relation.ntuples, step))

    tombstone_tree = BFTree.bulk_load(relation, "pk", BFTreeConfig(fpp=FPP),
                                      unique=True)
    counting_tree = BFTree.bulk_load(
        relation, "pk", BFTreeConfig(fpp=FPP, filter_kind="counting"),
        unique=True,
    )
    baseline = _survivor_false_reads(tombstone_tree, relation, doomed)
    for key in doomed:
        tombstone_tree.delete(key)
        counting_tree.delete(key, pid=relation.page_of(key))
    rows = [
        ["no deletes (baseline)", tombstone_tree.size_pages, baseline, "-"],
        [
            "naive in-filter (analytic)", tombstone_tree.size_pages,
            None, f"fpp -> {fpp_after_deletes(FPP, DELETE_FRACTION):.3f}",
        ],
        [
            "tombstone list", tombstone_tree.size_pages,
            _survivor_false_reads(tombstone_tree, relation, doomed),
            f"{sum(len(l.deleted_keys) for l in tombstone_tree.leaves.values())} tombstones",
        ],
        [
            "counting filters", counting_tree.size_pages,
            _survivor_false_reads(counting_tree, relation, doomed),
            "in-place",
        ],
    ]
    return rows


def test_ablation_delete_strategies(benchmark, emit, synth_relation):
    rows = benchmark.pedantic(
        _measure, args=(synth_relation,), rounds=1, iterations=1
    )
    emit(format_table(
        ["strategy", "index pages", "false reads/search", "notes"],
        [[s, p, "-" if f is None else f"{f:.3f}", n] for s, p, f, n in rows],
        title=f"Ablation: delete strategies, {DELETE_FRACTION:.0%} deleted "
              f"(fpp={FPP:g})",
    ))
    baseline = rows[0][2]
    tombstone = rows[2][2]
    counting = rows[3][2]
    # Both real strategies keep survivors' false reads near the baseline,
    # far below the naive +10% degradation.
    assert tombstone < baseline + 0.5
    assert counting < baseline + 0.5
    # Counting filters pay the space cost.
    assert rows[3][1] > rows[2][1]
    # Tombstones accumulated; counting left none.
    assert "tombstones" in rows[2][3]
