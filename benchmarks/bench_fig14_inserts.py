"""Figure 14: false-positive degradation under inserts.

Panel (a): insert ratios 0-12% — near-linear fpp growth.  Panel (b):
0-600% — convergence toward 1.  Beyond printing the Equation-14 curves,
this bench *validates the equation empirically*: it overfills real Bloom
filters and compares the measured false-positive rate against the
analytical prediction.
"""

import random

import pytest

from repro.core import BloomFilter
from repro.core.bloom import bits_for_capacity, optimal_hash_count
from repro.harness import format_series, format_table
from repro.model import (
    FIGURE14_INITIAL_FPPS,
    figure14a_grid,
    figure14b_grid,
    insert_series,
    sustainable_insert_ratio,
)


def test_fig14_analytic_curves(benchmark, emit):
    def _curves():
        return {
            fpp: (
                insert_series(fpp, figure14a_grid(13)),
                insert_series(fpp, figure14b_grid(13)),
            )
            for fpp in FIGURE14_INITIAL_FPPS
        }

    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    for fpp, (small, large) in curves.items():
        emit(format_series(
            f"Fig 14(a) initial fpp={fpp:g}",
            [f"{p.insert_ratio:.0%}" for p in small],
            [f"{p.new_fpp:.2e}" for p in small],
        ))
        emit(format_series(
            f"Fig 14(b) initial fpp={fpp:g}",
            [f"{p.insert_ratio:.0%}" for p in large],
            [f"{p.new_fpp:.2e}" for p in large],
        ))
    # Paper's examples: 0.01% -> ~0.011% (+1%), ~0.023% (+10%).
    series = insert_series(1e-4, [0.01, 0.10])
    assert series[0].new_fpp == pytest.approx(1.1e-4, rel=0.05)
    assert series[1].new_fpp == pytest.approx(2.3e-4, rel=0.05)
    # ~15% sustainable-insert rule of thumb (one decade of degradation
    # tolerated from 1e-4 to 1e-3 allows more; from 0.01 to 0.02 less).
    assert sustainable_insert_ratio(1e-4, 1e-3) == pytest.approx(1 / 3, rel=0.01)


def test_fig14_empirical_validation(benchmark, emit):
    """Overfill real filters; measured fpp must track Equation 14."""

    def _measure():
        rng = random.Random(17)
        rows = []
        n = 400
        initial_fpp = 0.01
        nbits = round(bits_for_capacity(n, initial_fpp))
        k = optimal_hash_count(nbits, n)
        for ratio in (0.0, 0.25, 0.5, 1.0):
            bf = BloomFilter(nbits=nbits, k=k)
            total = int(n * (1 + ratio))
            for key in rng.sample(range(10**9), total):
                bf.add(key)
            probes = rng.sample(range(10**9, 2 * 10**9), 60_000)
            measured = sum(bf.might_contain(p) for p in probes) / len(probes)
            predicted = insert_series(initial_fpp, [ratio])[0].new_fpp
            rows.append([f"{ratio:.0%}", f"{predicted:.4f}", f"{measured:.4f}"])
        return rows

    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(format_table(
        ["insert ratio", "Eq. 14 prediction", "measured fpp"],
        rows,
        title="Figure 14 validation: real Bloom filters vs Equation 14",
    ))
    # Equation 14 assumes the hash count is re-optimized for the grown
    # element count; a real filter keeps its original k, which drifts the
    # measured rate somewhat above the prediction as the overfill grows
    # (exactly (1 - e^{-k n'/m})^k).  The trend and order of magnitude
    # must still match.
    values = [(float(p), float(m)) for __, p, m in rows]
    assert [m for __, m in values] == sorted(m for __, m in values)
    for predicted, measured in values:
        assert measured == pytest.approx(predicted, rel=0.75, abs=5e-3)
