"""Equations 2-13 of the paper's analytical model (Section 5).

Every function takes a :class:`~repro.model.params.ModelParams` and
returns the derived quantity named after the paper's symbol.  The
Bloom-filter identity (Equation 1) lives in :mod:`repro.core.bloom`.
"""

from __future__ import annotations

import math

from repro.core.bloom import LN2_SQ
from repro.model.params import ModelParams


# ----------------------------------------------------------------------
# shared geometry
# ----------------------------------------------------------------------
def fanout(p: ModelParams) -> float:
    """Equation 2: internal-node fanout."""
    return p.pagesize / (p.ptrsize + p.keysize)


# ----------------------------------------------------------------------
# B+-Tree
# ----------------------------------------------------------------------
def bp_leaves(p: ModelParams) -> float:
    """Equation 3: leaf pages of the baseline B+-Tree."""
    return p.notuples * (p.keysize / p.avgcard + p.ptrsize) / p.pagesize

def bp_height(p: ModelParams) -> int:
    """Equation 4: B+-Tree height (including the leaf level)."""
    leaves = max(bp_leaves(p), 1.0)
    return math.ceil(math.log(leaves, fanout(p))) + 1 if leaves > 1 else 1

def bp_size(p: ModelParams) -> float:
    """Equation 9: B+-Tree bytes (leaves + one internal level estimate)."""
    leaves = bp_leaves(p)
    return p.pagesize * (leaves + leaves / fanout(p))


# ----------------------------------------------------------------------
# BF-Tree
# ----------------------------------------------------------------------
def bf_keys_per_page(p: ModelParams) -> float:
    """Equation 5: distinct keys one BF-leaf indexes at the target fpp."""
    return -p.pagesize * 8 * LN2_SQ / math.log(p.fpp)

def bf_leaves(p: ModelParams) -> float:
    """Equation 6: BF-leaf count (duplicate keys stored once)."""
    return p.notuples / (p.avgcard * bf_keys_per_page(p))

def bf_height(p: ModelParams) -> int:
    """Equation 7: BF-Tree height (including the leaf level)."""
    leaves = max(bf_leaves(p), 1.0)
    return math.ceil(math.log(leaves, fanout(p))) + 1 if leaves > 1 else 1

def bf_pages_per_leaf(p: ModelParams) -> float:
    """Equation 8: data pages one BF-leaf covers."""
    return bf_keys_per_page(p) * p.avgcard * p.tuplesize / p.pagesize

def bf_size(p: ModelParams) -> float:
    """Equation 10: BF-Tree bytes."""
    leaves = bf_leaves(p)
    return p.pagesize * (leaves + leaves / fanout(p))


# ----------------------------------------------------------------------
# probe costs
# ----------------------------------------------------------------------
def matching_pages(p: ModelParams) -> int:
    """Equation 11: data pages a positive probe must fetch (mP)."""
    return math.ceil(p.avgcard * p.tuplesize / p.pagesize)

def bp_cost(p: ModelParams) -> float:
    """Equation 12: B+-Tree probe cost in relative I/O units."""
    return bp_height(p) * p.idxIO + matching_pages(p) * p.dataIO

def bf_cost(p: ModelParams) -> float:
    """Equation 13: BF-Tree probe cost, false positives charged seqDtIO."""
    return (
        bf_height(p) * p.idxIO
        + matching_pages(p) * p.dataIO
        + p.fpp * bf_pages_per_leaf(p) * p.seqDtIO
    )


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------
def summarize(p: ModelParams) -> dict[str, float]:
    """All derived quantities, keyed by the paper's symbol names."""
    return {
        "fanout": fanout(p),
        "BPleaves": bp_leaves(p),
        "BPh": bp_height(p),
        "BPsize": bp_size(p),
        "BFkeysperpage": bf_keys_per_page(p),
        "BFleaves": bf_leaves(p),
        "BFh": bf_height(p),
        "BFpagesleaf": bf_pages_per_leaf(p),
        "BFsize": bf_size(p),
        "mP": matching_pages(p),
        "BPcost": bp_cost(p),
        "BFcost": bf_cost(p),
    }
