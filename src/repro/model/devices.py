"""Figure 2: the capacity/performance storage trade-off.

The paper plots eight devices (as of end 2013) by capacity per dollar
(GB/$) against advertised random-read IOPS; HDD and SSD form two distinct
clusters — HDD cheap and slow, SSD fast and expensive.  The catalogue
below reconstructs representative devices of each class with
end-of-2013-era figures; exact models were not named in the paper, so
these are calibrated to land inside the clusters the figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CatalogDevice:
    """One point of the Figure 2 scatter plot."""

    name: str
    kind: str                 # "E-HDD", "C-HDD", "E-SSD", "C-SSD"
    capacity_gb: float
    price_usd: float
    random_read_iops: float

    @property
    def gb_per_dollar(self) -> float:
        return self.capacity_gb / self.price_usd

    @property
    def is_ssd(self) -> bool:
        return self.kind.endswith("SSD")


#: Two enterprise + two consumer HDD, four enterprise + two consumer SSD
#: (the mix the paper's Figure 2 shows).
DEVICE_CATALOG: tuple[CatalogDevice, ...] = (
    CatalogDevice("15K SAS 600GB", "E-HDD", 600, 220, 210),
    CatalogDevice("10K SAS 1.2TB", "E-HDD", 1200, 280, 160),
    CatalogDevice("7.2K SATA 3TB", "C-HDD", 3000, 130, 90),
    CatalogDevice("5.4K SATA 4TB", "C-HDD", 4000, 150, 60),
    CatalogDevice("PCIe NAND 1.2TB", "E-SSD", 1200, 4800, 450_000),
    CatalogDevice("SAS SLC 400GB", "E-SSD", 400, 2400, 180_000),
    CatalogDevice("SATA eMLC 800GB", "E-SSD", 800, 1900, 90_000),
    CatalogDevice("SATA MLC 480GB", "E-SSD", 480, 800, 75_000),
    CatalogDevice("SATA consumer 256GB", "C-SSD", 256, 180, 80_000),
    CatalogDevice("SATA consumer 512GB", "C-SSD", 512, 330, 85_000),
)


def clusters() -> dict[str, list[CatalogDevice]]:
    """Devices grouped into the two technology clusters of Figure 2."""
    out: dict[str, list[CatalogDevice]] = {"HDD": [], "SSD": []}
    for device in DEVICE_CATALOG:
        out["SSD" if device.is_ssd else "HDD"].append(device)
    return out


def tradeoff_summary() -> dict[str, dict[str, float]]:
    """Cluster-level ranges: the quantitative content of Figure 2."""
    summary: dict[str, dict[str, float]] = {}
    for kind, devices in clusters().items():
        summary[kind] = {
            "min_gb_per_dollar": min(d.gb_per_dollar for d in devices),
            "max_gb_per_dollar": max(d.gb_per_dollar for d in devices),
            "min_iops": min(d.random_read_iops for d in devices),
            "max_iops": max(d.random_read_iops for d in devices),
        }
    return summary
