"""Figure 14: false-positive degradation under inserts (Equation 14).

If a Bloom filter sized for N elements at false-positive probability
``fpp`` absorbs ``inserts`` additional elements without growing, the
effective rate becomes::

    new_fpp = fpp ** (1 / (1 + inserts / N))

independently of the filter size and the absolute element count — only
the initial fpp and the *relative* growth matter (paper §7).  The same
module covers deletes, which add their removed fraction directly to the
false-positive rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bloom import fpp_after_deletes, fpp_after_inserts


@dataclass(frozen=True)
class InsertPoint:
    """One x/y point of Figure 14."""

    insert_ratio: float
    new_fpp: float


def insert_series(initial_fpp: float, ratios: list[float]) -> list[InsertPoint]:
    """Equation-14 curve for one initial fpp over ``ratios``."""
    return [InsertPoint(r, fpp_after_inserts(initial_fpp, r)) for r in ratios]


def figure14a_grid(points: int = 25) -> list[float]:
    """Insert ratios 0..12% (Figure 14a's x axis)."""
    return [0.12 * i / (points - 1) for i in range(points)]


def figure14b_grid(points: int = 25) -> list[float]:
    """Insert ratios 0..600% (Figure 14b's x axis)."""
    return [6.0 * i / (points - 1) for i in range(points)]


#: The three initial fpps Figure 14 plots.
FIGURE14_INITIAL_FPPS = (1e-4, 1e-3, 1e-2)


def sustainable_insert_ratio(initial_fpp: float, max_fpp: float) -> float:
    """Largest insert ratio keeping the effective fpp below ``max_fpp``.

    Inverts Equation 14: ratio = ln(fpp)/ln(max_fpp) - 1.  The paper's
    rule of thumb: a BF-Tree sustains ~15% inserts before the index
    should be updated.
    """
    import math

    if not 0 < initial_fpp < max_fpp < 1:
        raise ValueError("need 0 < initial_fpp < max_fpp < 1")
    return math.log(initial_fpp) / math.log(max_fpp) - 1.0


def delete_series(initial_fpp: float, ratios: list[float]) -> list[InsertPoint]:
    """fpp after deleting a fraction of entries (linear additive, §7)."""
    return [InsertPoint(r, fpp_after_deletes(initial_fpp, r)) for r in ratios]
