"""Figure 4: analytical comparison of BF-Tree vs B+-Tree, compressed
B+-Tree, FD-Tree and SILT.

The paper sweeps the false-positive probability and plots, normalized to
the vanilla B+-Tree:

* (a) point-probe response time — BF-Tree, SILT (trie cached / loaded),
  FD-Tree (optimal k);
* (b) index size — BF-Tree, compressed B+-Tree, SILT, FD-Tree.

For FD-Tree and SILT the paper plugs in those systems' own published
models; we encode the resulting behaviour: FD-Tree with the optimal k
probes like a short tree and matches the BF-Tree's cost, SILT resolves a
key with a single store read (±trie-load overhead, the 5%-faster /
32%-slower band of §5), and the compressed B+-Tree shrinks to roughly a
tenth of the vanilla tree for the modeled 32-byte keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model import equations as eq
from repro.model.params import ModelParams

#: SILT's index occupies about this fraction of the B+-Tree (paper §5).
SILT_SIZE_RATIO = 0.28
#: Prefix compression shrinks the modeled 32-byte-key B+-Tree to ~10%.
COMPRESSED_SIZE_RATIO = 0.10
#: Levels an FD-Tree with the optimal size ratio probes (head in memory).
FD_LEVELS = 2


@dataclass(frozen=True)
class ComparisonPoint:
    """Normalized response time and size at one fpp value."""

    fpp: float
    bf_time: float
    fd_time: float
    silt_time_cached: float
    silt_time_loaded: float
    bf_size: float
    compressed_size: float
    silt_size: float
    fd_size: float


def silt_cost(p: ModelParams, trie_cached: bool = True) -> float:
    """SILT point-probe cost: one store read (+ trie load when uncached).

    The uncached overhead is calibrated so the loaded-trie probe lands
    ~32% above the B+-Tree, the band the paper reports.
    """
    base = p.idxIO + eq.matching_pages(p) * p.dataIO
    if trie_cached:
        return base
    trie_load = 0.37 * eq.bp_cost(p)   # reproduces the paper's +32% band
    return base + trie_load


def fd_cost(p: ModelParams) -> float:
    """FD-Tree probe cost with the optimal size ratio (head in memory)."""
    return FD_LEVELS * p.idxIO + eq.matching_pages(p) * p.dataIO


def compare_at(p: ModelParams) -> ComparisonPoint:
    """All Figure-4 series at one parameterization, normalized to B+-Tree."""
    bp_time = eq.bp_cost(p)
    bp_size = eq.bp_size(p)
    return ComparisonPoint(
        fpp=p.fpp,
        bf_time=eq.bf_cost(p) / bp_time,
        fd_time=fd_cost(p) / bp_time,
        silt_time_cached=silt_cost(p, trie_cached=True) / bp_time,
        silt_time_loaded=silt_cost(p, trie_cached=False) / bp_time,
        bf_size=eq.bf_size(p) / bp_size,
        compressed_size=COMPRESSED_SIZE_RATIO,
        silt_size=SILT_SIZE_RATIO,
        fd_size=1.0,
    )


def sweep_fpp(p: ModelParams, fpps: list[float]) -> list[ComparisonPoint]:
    """Figure 4's x-axis sweep."""
    return [compare_at(p.with_fpp(f)) for f in fpps]


def default_fpp_grid(lo_exp: int = -8, hi_exp: int = 0, per_decade: int = 2
                     ) -> list[float]:
    """Log-spaced fpp grid like the paper's x axis (1e-8 .. ~0.5)."""
    grid: list[float] = []
    for e in range(lo_exp, hi_exp):
        for i in range(per_decade):
            value = 10.0 ** (e + i / per_decade)
            if value < 1.0:
                grid.append(value)
    return grid


def crossover_fpp(p: ModelParams, fpps: list[float] | None = None
                  ) -> float | None:
    """Largest fpp at which the BF-Tree beats the B+-Tree on probe time.

    The paper's headline from Figure 4(a): BF-Tree wins for
    ``fpp <= ~1e-3`` under the default parameters.
    """
    grid = sorted(fpps or default_fpp_grid(-10, 0, 4))
    best = None
    for f in grid:
        point = compare_at(p.with_fpp(f))
        if point.bf_time <= 1.0:
            best = f
    return best


def smallest_at_equal_size(p: ModelParams) -> float | None:
    """fpp at which the BF-Tree matches the compressed B+-Tree's size.

    Figure 4(b): roughly fpp = 1e-8 for the default parameters.
    """
    lo, hi = 1e-12, 0.5
    for _ in range(80):
        mid = math.sqrt(lo * hi)
        point = compare_at(p.with_fpp(mid))
        if point.bf_size > COMPRESSED_SIZE_RATIO:
            lo = mid        # index still too large: relax accuracy upward
        else:
            hi = mid
    return math.sqrt(lo * hi)
