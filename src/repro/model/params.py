"""Table 1: the parameters of the paper's analytical model (Section 5).

:class:`ModelParams` bundles every input parameter of the model; derived
quantities (leaf counts, heights, sizes, probe costs) live in
:mod:`repro.model.equations`.  Defaults reproduce the workload of the
paper's Figure 4: 1 GB relation, 4 KB pages, 256-byte tuples, 32-byte
keys, 8-byte pointers, index on SSD and data on HDD with
``idxIO=1, dataIO=50, seqDtIO=5``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelParams:
    """Input parameters of the analytical model (paper Table 1)."""

    pagesize: int = 4096          # bytes, data and index pages
    tuplesize: int = 256          # fixed bytes per tuple
    notuples: int = 4 * 1024 * 1024   # 1 GB relation of 256 B tuples
    avgcard: float = 1.0          # average occurrences of an indexed value
    keysize: int = 32             # bytes of the indexed attribute
    ptrsize: int = 8              # bytes per pointer
    fpp: float = 1e-3             # BF-Tree false positive probability
    # Relative I/O costs (Figure 4 uses 1 / 50 / 5: index on SSD, data on
    # HDD, sequential data accesses five times cheaper than random).
    idxIO: float = 1.0
    dataIO: float = 50.0
    seqDtIO: float = 5.0

    def __post_init__(self) -> None:
        if self.pagesize <= 0 or self.tuplesize <= 0 or self.notuples <= 0:
            raise ValueError("sizes and counts must be positive")
        if self.tuplesize > self.pagesize:
            raise ValueError("tuple larger than a page")
        if self.avgcard < 1:
            raise ValueError("avgcard must be >= 1")
        if not 0.0 < self.fpp < 1.0:
            raise ValueError(f"fpp must be in (0, 1), got {self.fpp}")
        if min(self.idxIO, self.dataIO, self.seqDtIO) < 0:
            raise ValueError("I/O costs must be non-negative")

    def with_fpp(self, fpp: float) -> "ModelParams":
        """Copy with a different false-positive probability."""
        return replace(self, fpp=fpp)

    def with_io(self, idxIO: float, dataIO: float, seqDtIO: float) -> "ModelParams":
        """Copy with different relative I/O costs (storage placement)."""
        return replace(self, idxIO=idxIO, dataIO=dataIO, seqDtIO=seqDtIO)

    @property
    def relation_bytes(self) -> int:
        return self.notuples * self.tuplesize

    @property
    def tuples_per_page(self) -> int:
        return self.pagesize // self.tuplesize


#: The exact parameterization behind the paper's Figure 4.
FIGURE4_PARAMS = ModelParams()
