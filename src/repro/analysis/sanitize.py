"""Runtime structural sanitizer for index and service state.

Static lint (:mod:`repro.analysis.lint`) guards the source; this
module guards the *objects*.  Each ``check_*`` function walks one
structure — pure Python traversal, no device charges, so enabling it
never perturbs IOStats or the simulated clock — and raises
:class:`StructuralCorruption` with a precise diagnostic on the first
violated invariant:

* :func:`check_tree` — BF-Tree leaf-chain pointer integrity and key
  ordering, per-leaf ``nkeys``/filter-count/capacity consistency,
  filter-parameter uniformity, directory ↔ chain agreement;
* :func:`check_bplus` — B+-Tree chain pointers, in-leaf key order,
  key/ridlist pairing, cross-leaf span ordering;
* :func:`check_fd` — FD-Tree head/level sort order, merge-level
  tombstone annihilation, tombstone victim range;
* :func:`check_sharded` — routing-table ↔ shard ``lo_key`` agreement,
  boundary monotonicity, leaf spans confined to their shard's slice,
  then each shard's index recursively.

Enablement: set ``REPRO_SANITIZE=1`` (any value other than ``0``/
``false``), pass ``--sanitize`` to the CLI, or call :func:`force` from
code.  When enabled, :func:`maybe_check` — wired into every batch
mutation path (``insert_many``/``delete_many`` on the fallback mixin,
the BF-Tree and B+-Tree overrides, and the sharded service) — validates
the mutated structure after each batch.  When disabled it is a single
``if`` per batch.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

ENV_VAR = "REPRO_SANITIZE"

_FORCED: bool | None = None


class StructuralCorruption(AssertionError):
    """An index or service structure violates a structural invariant."""


def force(on: bool | None) -> None:
    """Override the environment switch: True/False force, None defers."""
    global _FORCED
    _FORCED = on


def forced() -> bool | None:
    """Current override state (for propagating into worker processes:
    the process executor re-applies it via :func:`force` so sanitizer
    settings survive the fork under any start method)."""
    return _FORCED


def enabled() -> bool:
    """True when sanitizer checks should run."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(ENV_VAR, "0").lower() not in ("", "0", "false", "no")


def maybe_check(obj: Any) -> None:
    """Validate ``obj`` if sanitizing is enabled; no-op otherwise."""
    if enabled():
        check(obj)


def check(obj: Any) -> None:
    """Dispatch to the matching ``check_*`` validator (unknown types pass)."""
    # Imports are lazy so low-level modules can import this one freely.
    from repro.baselines.bptree import BPlusTree
    from repro.baselines.fd_tree import FDTree
    from repro.core.bf_tree import BFTree
    from repro.persist.durable import DurableIndex
    from repro.service.sharded import ShardedIndex

    if isinstance(obj, DurableIndex):
        # Durability is a wrapper concern; the structure lives inside.
        check(obj.inner)
    elif isinstance(obj, ShardedIndex):
        check_sharded(obj)
    elif isinstance(obj, BFTree):
        check_tree(obj)
    elif isinstance(obj, BPlusTree):
        check_bplus(obj)
    elif isinstance(obj, FDTree):
        check_fd(obj)


def _fail(structure: str, message: str) -> None:
    raise StructuralCorruption(f"{structure}: {message}")


def _walk_chain(structure: str, leaves_by_id: dict[int, Any]) -> list[Any]:
    """Strictly validate a doubly-linked leaf chain; return it in order."""
    if not leaves_by_id:
        return []
    targets = {
        l.next_leaf_id
        for l in leaves_by_id.values()
        if l.next_leaf_id is not None
    }
    heads = [l for lid, l in leaves_by_id.items() if lid not in targets]
    if not heads:
        _fail(structure, "leaf chain has no head (next-pointer cycle)")
    if len(heads) > 1:
        ids = sorted(l.node_id for l in heads)
        _fail(structure, f"leaf chain has {len(heads)} heads {ids} "
                         "(broken next pointers)")
    chain = [heads[0]]
    seen = {heads[0].node_id}
    while chain[-1].next_leaf_id is not None:
        nid = chain[-1].next_leaf_id
        if nid in seen:
            _fail(structure,
                  f"leaf {chain[-1].node_id} next pointer re-enters the "
                  f"chain at leaf {nid} (cycle)")
        nxt = leaves_by_id.get(nid)
        if nxt is None:
            _fail(structure,
                  f"leaf {chain[-1].node_id} next pointer names unknown "
                  f"leaf {nid}")
        chain.append(nxt)
        seen.add(nid)
    if len(chain) != len(leaves_by_id):
        missing = sorted(set(leaves_by_id) - seen)
        _fail(structure,
              f"{len(missing)} leaves unreachable from the chain head: "
              f"{missing[:8]}")
    if chain[0].prev_leaf_id is not None:
        _fail(structure,
              f"head leaf {chain[0].node_id} has prev pointer "
              f"{chain[0].prev_leaf_id} (expected None)")
    for left, right in zip(chain, chain[1:]):
        if right.prev_leaf_id != left.node_id:
            _fail(structure,
                  f"leaf {right.node_id} prev pointer "
                  f"{right.prev_leaf_id} disagrees with chain "
                  f"predecessor {left.node_id}")
    return chain


# ---------------------------------------------------------------------------
# BF-Tree


def check_tree(tree: Any) -> None:
    """Validate a :class:`~repro.core.bf_tree.BFTree`."""
    name = "BFTree"
    chain = _walk_chain(name, tree.leaves)
    for leaf in chain:
        _check_bf_leaf(name, leaf)
    if tree.ordered:
        for left, right in zip(chain, chain[1:]):
            if (
                left.max_key is not None
                and right.min_key is not None
                and right.min_key < left.max_key
            ):
                _fail(name,
                      f"key order inverted across leaves {left.node_id} -> "
                      f"{right.node_id}: max_key {left.max_key!r} > "
                      f"min_key {right.min_key!r}")
            if right.min_pid < left.min_pid:
                _fail(name,
                      f"page order inverted across leaves {left.node_id} "
                      f"-> {right.node_id}: min_pid {right.min_pid} < "
                      f"{left.min_pid}")
    directory = list(tree.inner.iter_leaf_ids())
    chain_ids = [l.node_id for l in chain]
    if directory != chain_ids:
        _fail(name,
              f"directory leaf order {directory[:8]}... disagrees with "
              f"chain order {chain_ids[:8]}...")
    fences, _, _ = tree.inner.routing_table()
    if any(b < a for a, b in zip(fences, fences[1:])):
        _fail(name, f"directory fences not sorted: {fences[:8]}...")


def _check_bf_leaf(name: str, leaf: Any) -> None:
    where = f"leaf {leaf.node_id}"
    if (
        leaf.min_key is not None
        and leaf.max_key is not None
        and leaf.max_key < leaf.min_key
    ):
        _fail(name, f"{where}: min_key {leaf.min_key!r} > max_key "
                    f"{leaf.max_key!r}")
    if leaf.nkeys < 0:
        _fail(name, f"{where}: negative nkeys {leaf.nkeys}")
    if leaf.extra_inserts < 0:
        _fail(name, f"{where}: negative extra_inserts {leaf.extra_inserts}")
    # Deletes shrink nkeys without reclaiming extra_inserts (set bits are
    # permanent), so the bound is one-sided.
    over = leaf.nkeys - leaf.key_capacity
    if over > 0 and leaf.extra_inserts < over:
        _fail(name,
              f"{where}: nkeys {leaf.nkeys} exceeds capacity "
              f"{leaf.key_capacity} but extra_inserts "
              f"{leaf.extra_inserts} < {over} (overflow unaccounted)")
    if leaf.filters:
        total = sum(f.count for f in leaf.filters)
        if leaf.nkeys > total:
            _fail(name,
                  f"{where}: nkeys {leaf.nkeys} exceeds total filter "
                  f"insert count {total} (keys unindexed by any filter)")
        first = leaf.filters[0]
        for i, f in enumerate(leaf.filters[1:], start=1):
            if (f.nbits, f.k, f.seed) != (first.nbits, first.k, first.seed):
                _fail(name,
                      f"{where}: filter {i} parameters (nbits={f.nbits}, "
                      f"k={f.k}, seed={f.seed}) diverge from filter 0 "
                      f"(nbits={first.nbits}, k={first.k}, "
                      f"seed={first.seed})")
    elif leaf.nkeys:
        _fail(name, f"{where}: {leaf.nkeys} keys but no filters")


# ---------------------------------------------------------------------------
# B+-Tree


def check_bplus(tree: Any) -> None:
    """Validate a :class:`~repro.baselines.bptree.BPlusTree`."""
    name = "BPlusTree"
    chain = _walk_chain(name, tree.leaves)
    for leaf in chain:
        if len(leaf.keys) != len(leaf.ridlists):
            _fail(name,
                  f"leaf {leaf.node_id}: {len(leaf.keys)} keys but "
                  f"{len(leaf.ridlists)} rid lists")
        if any(b <= a for a, b in zip(leaf.keys, leaf.keys[1:])):
            _fail(name,
                  f"leaf {leaf.node_id}: keys not strictly increasing")
    occupied = [l for l in chain if l.keys]
    for left, right in zip(occupied, occupied[1:]):
        if right.keys[0] < left.keys[-1]:
            _fail(name,
                  f"key order inverted across leaves {left.node_id} -> "
                  f"{right.node_id}: {left.keys[-1]!r} > {right.keys[0]!r}")


# ---------------------------------------------------------------------------
# FD-Tree


def _check_sorted_run(name: str, label: str,
                      run: Iterable[tuple[Any, int]]) -> None:
    run = list(run)
    if any(b < a for a, b in zip(run, run[1:])):
        _fail(name, f"{label} is not sorted")


def check_fd(fd: Any) -> None:
    """Validate a :class:`~repro.baselines.fd_tree.FDTree`."""
    name = "FDTree"
    _check_sorted_run(name, "head run", fd.head)
    _check_tombstones(name, "head run", fd.head, fd)
    for i, level in enumerate(fd.levels):
        label = f"level {i + 1}"
        _check_sorted_run(name, label, level)
        _check_tombstones(name, label, level, fd)
        # _sorted_merge annihilates tombstone/entry pairs, so a
        # merge-produced level may never hold both (the head may: a
        # delete of an entry still buffered there coexists until the
        # next merge).
        start = 0
        while start < len(level):
            end = start
            key = level[start][0]
            while end < len(level) and level[end][0] == key:
                end += 1
            group = level[start:end]
            tombs = {-t - 1 for _, t in group if t < 0}
            live = {t for _, t in group if t >= 0}
            stuck = tombs & live
            if stuck:
                _fail(name,
                      f"{label}: key {key!r} holds tombstone/entry pairs "
                      f"for tids {sorted(stuck)} that a merge should have "
                      "annihilated")
            start = end


def _check_tombstones(name: str, label: str, run: Iterable[tuple[Any, int]],
                      fd: Any) -> None:
    ntuples = None if fd.relation is None else fd.relation.ntuples
    for key, t in run:
        victim = -t - 1 if t < 0 else t
        if victim < 0 or (ntuples is not None and victim >= ntuples):
            kind = "tombstone" if t < 0 else "entry"
            _fail(name,
                  f"{label}: {kind} ({key!r}, {t}) names tuple id "
                  f"{victim} outside the relation's [0, {ntuples}) range")


# ---------------------------------------------------------------------------
# sharded service


def check_sharded(svc: Any) -> None:
    """Validate a :class:`~repro.service.sharded.ShardedIndex`.

    Epoch-aware: the routing table is the source of truth, so the check
    validates the *table* (entry order, fence cache, id uniqueness),
    then the table↔shard agreement (each entry's shard exists, carries
    the entry's id and lo_key), then each shard's leaf spans against its
    table range — and recurses into every shard's index.  It passes at
    every epoch of a live split/merge sequence; a stale entry left
    behind by a topology change fails with a precise diagnostic.
    """
    name = "ShardedIndex"
    table = svc.table
    entries = list(table.entries)
    where = f"epoch {table.epoch}"
    if not entries:
        _fail(name, f"{where}: routing table has no entries")
    if entries[0].lo_key is not None:
        _fail(name,
              f"{where}: leftmost entry lo_key is {entries[0].lo_key!r} "
              "(expected None: it serves the open left end)")
    fences = [e.lo_key for e in entries[1:]]
    cached = list(table.boundaries)
    if len(cached) != len(fences) or any(
        b != lo for b, lo in zip(cached, fences)
    ):
        _fail(name,
              f"{where}: cached fence array {cached!r} disagrees with "
              f"routing entries {fences!r} (stale routing state)")
    if any(b <= a for a, b in zip(fences, fences[1:])):
        _fail(name,
              f"{where}: routing fences not strictly increasing: "
              f"{fences!r}")
    ids = [e.shard_id for e in entries]
    if len(set(ids)) != len(ids):
        _fail(name, f"{where}: duplicate shard ids in routing table: "
                    f"{ids!r}")
    by_id = svc._by_id
    if set(by_id) != set(ids):
        _fail(name,
              f"{where}: routing table ids {sorted(ids)} disagree with "
              f"registered shards {sorted(by_id)}")
    shards = svc.shards
    if len(shards) != len(entries):
        _fail(name,
              f"{where}: {len(shards)} shards vs {len(entries)} routing "
              "entries")
    for o, (entry, shard) in enumerate(zip(entries, shards)):
        sid = entry.shard_id
        if shard.shard_id != sid:
            _fail(name,
                  f"{where}: entry {o} names shard id {sid} but the "
                  f"shard at that ordinal is id {shard.shard_id}")
        if shard.lo_key != entry.lo_key and not (
            shard.lo_key is None and entry.lo_key is None
        ):
            _fail(name,
                  f"{where}: routing entry {o} (shard {sid}) lo_key "
                  f"{entry.lo_key!r} disagrees with the shard's lo_key "
                  f"{shard.lo_key!r} (stale routing entry)")
        index = shard.index
        if index.supports_sharding and index.n_leaves:
            lo = entry.lo_key
            hi = table.boundary_of(o)
            for leaf in index.shard_leaves():
                span_lo, span_hi = index.shard_leaf_span(leaf)
                if lo is not None and span_lo is not None and span_lo < lo:
                    _fail(name,
                          f"{where}: shard {sid}: leaf span starts at "
                          f"{span_lo!r}, below the shard's lo fence "
                          f"{lo!r}")
                # Rightmost-biased routing sends key == boundary to the
                # next shard, so this shard's spans stay strictly below.
                if hi is not None and span_hi is not None and span_hi >= hi:
                    _fail(name,
                          f"{where}: shard {sid}: leaf span ends at "
                          f"{span_hi!r}, at or past the next range's "
                          f"fence {hi!r}")
        check(index)
