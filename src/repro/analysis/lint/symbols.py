"""Project-wide symbol table and heuristic call graph.

The flow rules need three *transitive* facts no single file can supply:

* which functions eventually force bytes to disk (the **fsync family**:
  transitively reach ``os.fsync`` or a ``.sync()`` method) — D3;
* which calls can bump the routing-table epoch (the **epoch bumpers**:
  transitively reach ``split_shard``/``merge_shards``) — E1;
* which context managers suspend charging/logging (the **suspend
  family**: transitively reach ``suspended_charges``/
  ``suspended_logging``) — E2.

The call graph is name-based: a call ``x.f(...)`` or ``f(...)`` is an
edge to every project function named ``f``.  That is deliberately
conservative in the direction these rules need — a family can only grow,
so "this call may fsync / may bump the epoch" over-approximates — and it
needs no type inference, which keeps whole-repo analysis well inside the
CI time budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.base import collect_aliases, posix
from repro.analysis.lint.cfg import iter_functions, walk_no_nested


@dataclass
class FunctionInfo:
    """One function definition and the bare names it calls."""

    relpath: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class FileUnit:
    """One parsed source file (the engine's unit of work)."""

    relpath: str
    source: str
    tree: ast.Module
    aliases: dict[str, str]

    @classmethod
    def parse(cls, relpath: str, source: str) -> "FileUnit":
        tree = ast.parse(source)
        return cls(relpath=posix(relpath), source=source, tree=tree,
                   aliases=collect_aliases(tree))


class ProjectIndex:
    """Symbol table + call graph over every file handed to the engine."""

    def __init__(self, units: list[FileUnit]) -> None:
        self.units = units
        self.functions: list[FunctionInfo] = []
        for unit in units:
            for class_name, func in iter_functions(unit.tree):
                info = FunctionInfo(relpath=unit.relpath,
                                    class_name=class_name, node=func)
                for stmt in func.body:
                    for sub in walk_no_nested(stmt):
                        if isinstance(sub, ast.Call):
                            name = _callee_name(sub)
                            if name is not None:
                                info.calls.add(name)
                self.functions.append(info)

    def family(self, seed_call_names: frozenset[str]) -> frozenset[str]:
        """Names of functions that transitively reach a seed call.

        A function joins the family if it *is* named like a seed, calls
        a seed, or calls another family member (by name).  Fixpoint over
        the name-based call graph.
        """
        members: set[str] = set()
        changed = True
        while changed:
            changed = False
            reach = seed_call_names | members
            for info in self.functions:
                if info.name in members:
                    continue
                if info.name in seed_call_names or info.calls & reach:
                    members.add(info.name)
                    changed = True
        return frozenset(members)


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


#: Seed call names for the three transitive families.
FSYNC_SEEDS = frozenset({"fsync", "sync"})
EPOCH_BUMP_SEEDS = frozenset({"split_shard", "merge_shards"})
SUSPEND_SEEDS = frozenset({"suspended_charges", "suspended_logging"})
