"""A small forward dataflow framework over :mod:`.cfg` graphs.

States are immutable mappings ``var -> int`` (rules encode their
lattices as small ints); the framework runs the standard worklist
fixpoint with a rule-supplied, **edge-kind-sensitive** transfer
function.  Edge sensitivity is what lets resource rules model "the
creating call raised, so nothing was created" on the exception edge out
of the creation statement while the normal edge carries the freshly
OPEN resource.

The join must be monotone w.r.t. the rule's lattice order; rules here
all use "max wins" joins over totally-ordered per-variable states, which
trivially converges.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.analysis.lint.cfg import CFG, Node

#: Immutable per-program-point state: variable name -> lattice value.
State = Mapping[str, int]

#: transfer(node, in_state, edge_kind) -> out_state along that edge.
Transfer = Callable[[Node, State, str], State]


def join_max(a: State, b: State) -> dict[str, int]:
    """Pointwise max of two states (absent = bottom = not tracked)."""
    out = dict(a)
    for var, val in b.items():
        if out.get(var, -1) < val:
            out[var] = val
    return out


def forward(cfg: CFG, transfer: Transfer,
            entry_state: State | None = None) -> list[dict[str, int]]:
    """Run the forward fixpoint; returns the in-state of every node."""
    n = len(cfg.nodes)
    in_states: list[dict[str, int]] = [{} for _ in range(n)]
    if entry_state is not None:
        in_states[cfg.entry] = dict(entry_state)
    # Every reachable node must be *processed* at least once even if its
    # in-state never moves off bottom — its transfer may still generate
    # facts for successors.  Seed the worklist with all of them, in
    # reverse postorder so most facts flow in one sweep.
    work = list(reversed(cfg.reverse_postorder()))
    in_work = set(work)
    while work:
        idx = work.pop()
        in_work.discard(idx)
        node = cfg.nodes[idx]
        state = in_states[idx]
        for succ, kind in cfg.succs[idx].items():
            out = transfer(node, state, kind)
            merged = join_max(in_states[succ], out)
            if merged != in_states[succ]:
                in_states[succ] = merged
                if succ not in in_work:
                    in_work.add(succ)
                    work.append(succ)
    return in_states
