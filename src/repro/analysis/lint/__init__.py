"""reprolint v2: a CFG/dataflow lint engine for the repro codebase.

Public surface:

* :func:`lint_repo` / :func:`lint_files` / :func:`lint_source` — run the
  engine (see :mod:`repro.analysis.lint.engine`);
* :class:`Violation` and the :data:`RULES` registry — findings and the
  rule catalog (see :mod:`repro.analysis.lint.base`);
* renderers in :mod:`repro.analysis.lint.output` and the baseline
  helpers in :mod:`repro.analysis.lint.baseline`, re-exported for the
  CLI.

Rule semantics live in :mod:`repro.analysis.lint.rules_ast` (ported
pattern rules) and :mod:`repro.analysis.lint.rules_flow` (dominance and
dataflow rules over :mod:`repro.analysis.lint.cfg`).
"""

from repro.analysis.lint.base import FLOW_IDS, PORTED_IDS, RULES, Violation
from repro.analysis.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.engine import (
    default_targets,
    lint_files,
    lint_repo,
    lint_source,
)
from repro.analysis.lint.output import render_json, render_sarif, render_text

__all__ = [
    "FLOW_IDS",
    "PORTED_IDS",
    "RULES",
    "Violation",
    "apply_baseline",
    "default_targets",
    "lint_files",
    "lint_repo",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
