"""CFG/dataflow rules: durability ordering, epoch discipline, lifecycle.

Each rule here encodes the bug class one of PRs 7–9 fixed by hand, as a
property over the per-function CFG (:mod:`.cfg`) plus, where the
property is transitive, the project call graph (:mod:`.symbols`):

``D1`` (durability-ordering)
    In ``DurableIndex`` methods, the WAL ``append`` must **dominate**
    the inner-index mutation (a call to an ``apply``/``apply_fn``
    parameter or a mutator on ``self.inner``/``self._inner``) on every
    path.  Mutations inside ``lambda`` bodies are argument *values*,
    not executions, and are ignored.

``D2`` (durability-ordering)
    In ``src/repro/persist/`` functions that write a commit point
    (``atomic_write_json`` / ``write_manifest`` /
    ``write_service_manifest``), the commit must dominate every
    ``unlink``/``rmtree``/``remove``/``rmdir`` — stale generations may
    only disappear after the manifest stops referencing them.
    Pure-teardown functions (no commit call) are out of scope.

``D3`` (durability-ordering)
    In ``src/repro/service/executor.py``, a batch acknowledgement
    (``*.send(("ok", ...))`` / ``*.send(("bye",))``) must be dominated
    by a call into the fsync family (functions transitively reaching
    ``os.fsync`` or a ``.sync()`` method): an acked batch promises its
    WAL frames are durable.

``E1`` (epoch-discipline)
    Values derived from routing-table ordinals (``route``,
    ``route_key``, ``ordinal_of``) or ``.shards`` views go **stale**
    when any call that can bump the topology epoch (transitively
    reaches ``split_shard``/``merge_shards``) executes; using a stale
    value afterwards is the dataflow generalization of P4.  Stable-id
    accessors (``id_at``/``shard_by_id``/...) launder their arguments:
    shard *ids* survive epoch bumps.  Same file scope as P4 (service
    layer minus the topology owners).

``E2`` (epoch-discipline)
    A replay of journalled batches (``replay_shard``/``apply_record``
    on a value derived from a ``_journal`` attribute) must run inside a
    ``suspended_charges``/``suspended_logging`` scope (or a context
    manager transitively built on one, e.g. ``_quiet_wal``) — the
    journal's charges and WAL frames already happened in the worker.

``R1`` (resource-lifecycle)
    Every ``SharedMemory(create=True)`` segment must reach both
    ``close()`` and ``unlink()`` — or escape to another owner — on
    every path out of the function, exception edges included.  The
    segment's own ``close``/``unlink`` calls are assumed not to raise;
    attaches (no ``create=True``) are owned by the creator and only
    need their local ``close``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Sequence

from repro.analysis.lint.base import (
    Violation,
    in_persist_scope,
    in_service_scope,
    in_src_scope,
    in_topology_scope,
    is_executor_module,
)
from repro.analysis.lint.cfg import (
    CFG,
    EXC,
    Node,
    build_cfg,
    dotted_name,
    iter_functions,
    node_asts,
    walk_no_nested,
)
from repro.analysis.lint.dataflow import forward
from repro.analysis.lint.symbols import (
    EPOCH_BUMP_SEEDS,
    FSYNC_SEEDS,
    SUSPEND_SEEDS,
    FileUnit,
    ProjectIndex,
)

def check_file(unit: FileUnit, project: ProjectIndex) -> Iterator[Violation]:
    """Run every flow rule whose file scope covers this unit."""
    yield from _check_d1(unit)
    yield from _check_d2(unit)
    yield from _check_d3(unit, project)
    yield from _check_e1(unit, project)
    yield from _check_e2(unit, project)
    yield from _check_r1(unit)


# ---------------------------------------------------------------------------
# shared helpers


def _calls_at(node: Node) -> Iterator[ast.Call]:
    for sub in node_asts(node):
        if isinstance(sub, ast.Call):
            yield sub


def _call_bare_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _load_names(exprs: Sequence[ast.AST]) -> set[str]:
    """Names read (Load context) in the given ASTs, nested defs excluded."""
    out: set[str] = set()
    for expr in exprs:
        for sub in walk_no_nested(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                out.add(sub.id)
    return out


def _store_names(target: ast.expr) -> list[str]:
    """Simple names bound by an assignment/loop target."""
    out: list[str] = []
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            out.append(sub.id)
    return out


def _node_defs(node: Node) -> tuple[list[str], list[ast.AST]]:
    """(names bound at this node, the value expressions they come from)."""
    stmt = node.stmt
    names: list[str] = []
    values: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            names.extend(_store_names(t))
        values.append(stmt.value)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        names.extend(_store_names(stmt.target))
        values.append(stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        names.extend(_store_names(stmt.target))
        values.append(stmt.value)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.extend(_store_names(stmt.target))
        values.append(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_store_names(item.optional_vars))
            values.append(item.context_expr)
    for part in node.parts:
        for sub in walk_no_nested(part):
            if isinstance(sub, ast.NamedExpr):
                names.extend(_store_names(sub.target))
                values.append(sub.value)
    return names, values


def _dominating(cfg: CFG, doms: list[set[int]], target: int,
                candidates: set[int]) -> bool:
    return bool(candidates & doms[target])


# ---------------------------------------------------------------------------
# D1 — log-before-apply


_D1_MUTATORS = frozenset({"insert", "delete", "insert_many", "delete_many"})
_D1_APPLY_PARAMS = frozenset({"apply", "apply_fn"})


def _check_d1(unit: FileUnit) -> Iterator[Violation]:
    if not in_src_scope(unit.relpath):
        return
    if "DurableIndex" not in unit.source:
        return
    for class_name, func in iter_functions(unit.tree):
        if class_name != "DurableIndex":
            continue
        params = {
            a.arg for a in (func.args.args + func.args.kwonlyargs
                            + func.args.posonlyargs)
        }
        apply_params = params & _D1_APPLY_PARAMS
        cfg = build_cfg(func)
        append_nodes: set[int] = set()
        apply_sites: list[tuple[int, int, str]] = []
        for node in cfg.nodes:
            for call in _calls_at(node):
                f = call.func
                if isinstance(f, ast.Attribute) and f.attr == "append":
                    recv = dotted_name(f.value)
                    if recv is not None and "wal" in recv.split(".")[-1].lower():
                        append_nodes.add(node.idx)
                if isinstance(f, ast.Name) and f.id in apply_params:
                    apply_sites.append((node.idx, call.lineno, f"{f.id}()"))
                if isinstance(f, ast.Attribute) and f.attr in _D1_MUTATORS:
                    recv = dotted_name(f.value)
                    if recv in ("self.inner", "self._inner"):
                        apply_sites.append(
                            (node.idx, call.lineno, f"{recv}.{f.attr}()"))
        if not apply_sites:
            continue
        doms = cfg.dominators()
        for idx, line, desc in apply_sites:
            if not _dominating(cfg, doms, idx, append_nodes):
                yield Violation(
                    "D1", "durability-ordering", unit.relpath, line,
                    f"{desc} applies a mutation on a path with no "
                    "dominating WAL append; a crash here loses an op the "
                    "caller may have observed (log-before-apply)",
                )


# ---------------------------------------------------------------------------
# D2 — commit-point-last


_D2_COMMITS = frozenset(
    {"atomic_write_json", "write_manifest", "write_service_manifest"})
_D2_REMOVALS = frozenset({"unlink", "rmtree", "remove", "rmdir"})


def _check_d2(unit: FileUnit) -> Iterator[Violation]:
    if not in_persist_scope(unit.relpath):
        return
    for _cls, func in iter_functions(unit.tree):
        cfg = build_cfg(func)
        commit_nodes: set[int] = set()
        removal_sites: list[tuple[int, int, str]] = []
        for node in cfg.nodes:
            for call in _calls_at(node):
                name = _call_bare_name(call)
                if name in _D2_COMMITS:
                    commit_nodes.add(node.idx)
                elif name in _D2_REMOVALS:
                    removal_sites.append((node.idx, call.lineno, name))
        if not commit_nodes or not removal_sites:
            # A function that never commits is pure teardown (or pure
            # write): stale-generation ordering does not apply.
            continue
        doms = cfg.dominators()
        for idx, line, name in removal_sites:
            if not _dominating(cfg, doms, idx, commit_nodes):
                yield Violation(
                    "D2", "durability-ordering", unit.relpath, line,
                    f"{name}() removes on-disk state on a path not "
                    "dominated by the atomic manifest commit; a crash "
                    "between them strands recovery without a complete "
                    "generation (commit-point-last)",
                )


# ---------------------------------------------------------------------------
# D3 — fsync-before-ack


_D3_ACKS = frozenset({"ok", "bye"})


def _ack_payload(call: ast.Call) -> str | None:
    """The ack tag if this is ``*.send(("ok"|"bye", ...))``."""
    f = call.func
    if not (isinstance(f, ast.Attribute) and f.attr == "send"):
        return None
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Tuple) and arg.elts:
        first = arg.elts[0]
        if (isinstance(first, ast.Constant) and isinstance(first.value, str)
                and first.value in _D3_ACKS):
            return first.value
    return None


def _check_d3(unit: FileUnit, project: ProjectIndex) -> Iterator[Violation]:
    if not is_executor_module(unit.relpath):
        return
    fsync_family = project.family(FSYNC_SEEDS) | FSYNC_SEEDS
    for _cls, func in iter_functions(unit.tree):
        cfg = build_cfg(func)
        sync_nodes: set[int] = set()
        ack_sites: list[tuple[int, int, str]] = []
        for node in cfg.nodes:
            for call in _calls_at(node):
                tag = _ack_payload(call)
                if tag is not None:
                    ack_sites.append((node.idx, call.lineno, tag))
                name = _call_bare_name(call)
                if name in fsync_family:
                    sync_nodes.add(node.idx)
        if not ack_sites:
            continue
        doms = cfg.dominators()
        for idx, line, tag in ack_sites:
            if not _dominating(cfg, doms, idx, sync_nodes):
                yield Violation(
                    "D3", "durability-ordering", unit.relpath, line,
                    f'send(("{tag}", ...)) acknowledges a batch on a path '
                    "with no dominating WAL fsync; the parent would treat "
                    "frames as durable that a crash can still lose "
                    "(fsync-before-ack)",
                )


# ---------------------------------------------------------------------------
# E1 — epoch discipline (taint: ordinal-derived values across bumps)


_E1_SOURCES = frozenset({"route", "route_key", "ordinal_of"})
# Stable-id accessors launder their arguments: the returned shard *id*
# survives epoch bumps even when the ordinal used to look it up does
# not, so their whole call subtree is epoch-stable.
_E1_STABLE = frozenset({"id_at", "id_of", "shard_id", "shard_by_id"})
_E1_TAINTED = 1
_E1_STALE = 2


def _e1_walk(value: ast.AST) -> Iterator[ast.AST]:
    """``walk_no_nested``, additionally pruning stable-accessor calls."""
    stack: list[ast.AST] = [value]
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.Lambda, ast.FunctionDef,
                            ast.AsyncFunctionDef)):
            continue
        if (isinstance(sub, ast.Call)
                and _call_bare_name(sub) in _E1_STABLE):
            continue
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


def _e1_rhs_sources(values: Sequence[ast.AST]) -> bool:
    for value in values:
        for sub in _e1_walk(value):
            if (isinstance(sub, ast.Call)
                    and _call_bare_name(sub) in _E1_SOURCES):
                return True
            if (isinstance(sub, ast.Attribute) and sub.attr == "shards"
                    and isinstance(sub.ctx, ast.Load)):
                return True
    return False


def _e1_load_names(values: Sequence[ast.AST]) -> set[str]:
    """Loaded names feeding a definition, minus laundered subtrees."""
    out: set[str] = set()
    for value in values:
        for sub in _e1_walk(value):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                out.add(sub.id)
    return out


def _check_e1(unit: FileUnit, project: ProjectIndex) -> Iterator[Violation]:
    if not in_topology_scope(unit.relpath):
        return
    bumpers = project.family(EPOCH_BUMP_SEEDS) | EPOCH_BUMP_SEEDS
    for _cls, func in iter_functions(unit.tree):
        cfg = build_cfg(func)
        bump_nodes = {
            node.idx
            for node in cfg.nodes
            for call in _calls_at(node)
            if _call_bare_name(call) in bumpers
        }
        if not bump_nodes:
            continue

        def transfer(node: Node, state: Mapping[str, int],
                     kind: str) -> Mapping[str, int]:
            new = dict(state)
            if node.idx in bump_nodes:
                for var, val in new.items():
                    if val == _E1_TAINTED:
                        new[var] = _E1_STALE
            names, values = _node_defs(node)
            if names:
                loads = _e1_load_names(values)
                derived = _e1_rhs_sources(values) or any(
                    state.get(v, 0) >= _E1_TAINTED for v in loads
                )
                for var in names:
                    if derived:
                        new[var] = _E1_TAINTED
                    else:
                        new.pop(var, None)
            return new

        in_states = forward(cfg, transfer)
        reported: set[tuple[int, str]] = set()
        for node in cfg.nodes:
            state = in_states[node.idx]
            for var in _load_names(list(node.parts)):
                if state.get(var, 0) == _E1_STALE:
                    key = (node.line, var)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Violation(
                        "E1", "epoch-discipline", unit.relpath, node.line,
                        f"'{var}' derives from routing ordinals/.shards "
                        "read before a call that can bump the topology "
                        "epoch (split/merge); re-derive it from the "
                        "current table instead of reusing it",
                    )


# ---------------------------------------------------------------------------
# E2 — suspended-context discipline (journal replay)


_E2_REPLAYS = frozenset({"replay_shard", "apply_record"})
_E2_JOURNALS = frozenset({"_journal", "journal"})
_E2_TAINTED = 1


def _e2_rhs_sources(values: Sequence[ast.AST]) -> bool:
    for value in values:
        for sub in walk_no_nested(value):
            if isinstance(sub, ast.Attribute) and sub.attr in _E2_JOURNALS:
                return True
    return False


def _check_e2(unit: FileUnit, project: ProjectIndex) -> Iterator[Violation]:
    if not in_service_scope(unit.relpath):
        return
    suspenders = project.family(SUSPEND_SEEDS) | SUSPEND_SEEDS
    for _cls, func in iter_functions(unit.tree):
        if not any(
            isinstance(sub, ast.Attribute) and sub.attr in _E2_JOURNALS
            for stmt in func.body
            for sub in walk_no_nested(stmt)
        ):
            continue
        cfg = build_cfg(func)

        def transfer(node: Node, state: Mapping[str, int],
                     kind: str) -> Mapping[str, int]:
            new = dict(state)
            names, values = _node_defs(node)
            if names:
                loads = _load_names(values)
                derived = _e2_rhs_sources(values) or any(
                    state.get(v, 0) >= _E2_TAINTED for v in loads
                )
                for var in names:
                    if derived:
                        new[var] = _E2_TAINTED
                    else:
                        new.pop(var, None)
            return new

        in_states = forward(cfg, transfer)
        for node in cfg.nodes:
            state = in_states[node.idx]
            suspended = any(
                label.split(".")[-1] in suspenders
                for label in node.with_scopes
            )
            if suspended:
                continue
            for call in _calls_at(node):
                if _call_bare_name(call) not in _E2_REPLAYS:
                    continue
                arg_loads = _load_names(list(call.args))
                if any(state.get(v, 0) >= _E2_TAINTED for v in arg_loads):
                    yield Violation(
                        "E2", "epoch-discipline", unit.relpath, call.lineno,
                        "journalled batches replayed outside a "
                        "suspended_charges/suspended_logging scope; the "
                        "worker already took these charges and WAL frames, "
                        "replaying them live double-counts both",
                    )


# ---------------------------------------------------------------------------
# R1 — SharedMemory lifecycle


_R1_MISSING_UNLINK = 1
_R1_MISSING_CLOSE = 2
_R1_MISSING_BOTH = 3

_R1_MISSING_TEXT = {
    _R1_MISSING_UNLINK: "unlink()",
    _R1_MISSING_CLOSE: "close()",
    _R1_MISSING_BOTH: "close() and unlink()",
}


def _shm_creation(node: Node) -> str | None:
    """Target name if this node binds ``v = SharedMemory(create=True)``."""
    stmt = node.stmt
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return None
    if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)):
        return None
    if _call_bare_name(value) != "SharedMemory":
        return None
    for kw in value.keywords:
        if (kw.arg == "create" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True):
            return target.id
    return None


def _r1_node_effects(node: Node, tracked: set[str]) -> list[tuple[str, str]]:
    """Effects on tracked vars: (op, var) with op in create/close/unlink/
    escape/kill."""
    effects: list[tuple[str, str]] = []
    created = _shm_creation(node)
    if created is not None:
        effects.append(("create", created))
    guarded: set[int] = set()   # id() of Name nodes in benign positions
    for sub in node_asts(node):
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name):
            guarded.add(id(sub.value))
        if isinstance(sub, ast.Compare):
            operands = [sub.left, *sub.comparators]
            if any(isinstance(o, ast.Constant) and o.value is None
                   for o in operands):
                for o in operands:
                    if isinstance(o, ast.Name):
                        guarded.add(id(o))
    for sub in node_asts(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            recv = sub.func.value
            if isinstance(recv, ast.Name) and recv.id in tracked:
                if sub.func.attr == "close":
                    effects.append(("close", recv.id))
                    continue
                if sub.func.attr == "unlink":
                    effects.append(("unlink", recv.id))
                    continue
    for sub in node_asts(node):
        if (isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
                and sub.id in tracked and id(sub) not in guarded
                and sub.id != created):
            effects.append(("escape", sub.id))
    names, _values = _node_defs(node)
    for var in names:
        if var in tracked and var != created:
            effects.append(("kill", var))
    return effects


def _check_r1(unit: FileUnit) -> Iterator[Violation]:
    if not in_src_scope(unit.relpath):
        return
    if "SharedMemory" not in unit.source:
        return
    for _cls, func in iter_functions(unit.tree):
        cfg = build_cfg(func)
        tracked: set[str] = set()
        created_at: dict[str, int] = {}
        for node in cfg.nodes:
            var = _shm_creation(node)
            if var is not None:
                tracked.add(var)
                created_at.setdefault(var, node.line)
        if not tracked:
            continue
        effects = {
            node.idx: _r1_node_effects(node, tracked) for node in cfg.nodes
        }

        def transfer(node: Node, state: Mapping[str, int],
                     kind: str) -> Mapping[str, int]:
            new = dict(state)
            for op, var in effects[node.idx]:
                cur = new.get(var, 0)
                if op == "create":
                    # The creating call raised on the exception edge:
                    # nothing was created there.
                    if kind != EXC:
                        new[var] = _R1_MISSING_BOTH
                elif op in ("close", "unlink"):
                    if kind == EXC:
                        # The segment's own close()/unlink() are assumed
                        # not to raise, so this exception edge cannot
                        # actually be taken by the cleanup call itself:
                        # don't report the half-cleaned state along it.
                        new[var] = 0
                    elif op == "close":
                        new[var] = (_R1_MISSING_UNLINK
                                    if cur == _R1_MISSING_BOTH else 0)
                    else:
                        new[var] = (_R1_MISSING_CLOSE
                                    if cur == _R1_MISSING_BOTH else 0)
                else:  # escape / kill: another owner is responsible now
                    new[var] = 0
            return new

        in_states = forward(cfg, transfer)
        for exit_idx in (cfg.exit, cfg.raise_exit):
            state = in_states[exit_idx]
            exit_kind = ("an exception path"
                         if exit_idx == cfg.raise_exit else "a return path")
            for var, val in sorted(state.items()):
                if val > 0 and var in created_at:
                    yield Violation(
                        "R1", "resource-lifecycle", unit.relpath,
                        created_at[var],
                        f"SharedMemory segment '{var}' can leave the "
                        f"function on {exit_kind} without "
                        f"{_R1_MISSING_TEXT[val]}; the segment leaks until "
                        "process exit (and the resource tracker warns)",
                    )
