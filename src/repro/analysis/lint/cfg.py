"""Per-function control-flow graphs with dominance (reprolint engine).

:func:`build_cfg` lowers one function body to a statement-level CFG:

* every simple statement is one node; compound statements contribute a
  *header* node (the part that evaluates before branching — an ``if``
  test, a loop iterator, a ``with`` enter) plus their bodies;
* synthetic ``entry`` / ``exit`` / ``raise`` nodes bracket the graph —
  ``exit`` is the normal return, ``raise`` the exceptional function
  exit;
* any statement that can raise (contains a call, ``raise`` or
  ``assert`` outside nested ``def``/``lambda`` bodies) gets an **exception
  edge** to the innermost reachable ``except`` heads, walking outward
  until a catch-all handler or the nearest ``finally`` head (whose body
  re-propagates onward itself), else the ``raise`` exit;
* every node records the stack of context-manager names whose ``with``
  body encloses it (``node.with_scopes``), which is how scope-discipline
  rules (E2) test "dominated by entry into a suspended context".

Deliberate simplifications, chosen to keep ordering rules (``A must
dominate B``) free of false positives: ``return``/``break``/``continue``
do not detour through enclosing ``finally`` blocks, and a ``finally``
body is modelled once with both a normal and an exceptional
continuation.  Both add paths *around* protected regions, never paths
that skip a dominator on the way to a protected operation.

:meth:`CFG.dominators` runs the classic iterative dataflow: ``dom(n) =
{n} ∪ ⋂ dom(preds)``.  Rules use it as "the WAL append dominates the
apply", "the manifest commit dominates the unlink".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

#: Edge kinds: normal fall-through/branch vs exceptional propagation.
NORMAL = "normal"
EXC = "exc"

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class Node:
    """One CFG node: a statement (or header / synthetic marker)."""

    idx: int
    kind: str                       # "entry" | "exit" | "raise" | "stmt" | "except" | "finally"
    line: int
    stmt: ast.stmt | None = None
    #: ASTs evaluated *at this node* (header nodes carry only the header
    #: expressions, never their bodies).
    parts: tuple[ast.AST, ...] = ()
    #: Dotted context-manager callee names of every enclosing ``with``.
    with_scopes: tuple[str, ...] = ()


class CFG:
    """Statement-level control-flow graph of one function."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        #: succ idx -> edge kind; NORMAL wins if both kinds exist.
        self.succs: list[dict[int, str]] = []
        self.preds: list[set[int]] = []
        self.entry: int = -1
        self.exit: int = -1
        self.raise_exit: int = -1

    # ------------------------------------------------------------------
    def add_node(self, kind: str, line: int, stmt: ast.stmt | None = None,
                 parts: Sequence[ast.AST] = (),
                 with_scopes: Sequence[str] = ()) -> int:
        idx = len(self.nodes)
        self.nodes.append(Node(idx=idx, kind=kind, line=line, stmt=stmt,
                               parts=tuple(parts),
                               with_scopes=tuple(with_scopes)))
        self.succs.append({})
        self.preds.append(set())
        return idx

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        existing = self.succs[src].get(dst)
        if existing == NORMAL:
            return
        self.succs[src][dst] = kind if existing is None else NORMAL
        self.preds[dst].add(src)

    # ------------------------------------------------------------------
    def dominators(self) -> list[set[int]]:
        """``dom[n]`` = nodes on *every* path from entry to ``n``.

        Unreachable nodes keep the full node set (vacuously dominated),
        which makes "must be dominated by X" rules skip dead code
        instead of flagging it.
        """
        n = len(self.nodes)
        universe = set(range(n))
        dom: list[set[int]] = [set(universe) for _ in range(n)]
        dom[self.entry] = {self.entry}
        order = self.reverse_postorder()
        changed = True
        while changed:
            changed = False
            for i in order:
                if i == self.entry:
                    continue
                pred_doms = [dom[p] for p in self.preds[i]]
                if not pred_doms:
                    continue
                new = set.intersection(*pred_doms) | {i}
                if new != dom[i]:
                    dom[i] = new
                    changed = True
        return dom

    def reverse_postorder(self) -> list[int]:
        seen: set[int] = set()
        post: list[int] = []

        def visit(start: int) -> None:
            stack: list[tuple[int, Iterator[int]]] = [
                (start, iter(self.succs[start]))
            ]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    post.append(node)
                    stack.pop()

        visit(self.entry)
        return list(reversed(post))


# ---------------------------------------------------------------------------
# raise / lambda-aware walking


def walk_no_nested(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested ``def``/``lambda``
    bodies (their code does not run at this statement)."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                # The def/lambda expression itself is visible (a rule may
                # care that one is *created* here) but not its body.
                yield child
                continue
            stack.append(child)


def node_asts(node: Node) -> Iterator[ast.AST]:
    """Every AST evaluated at this node, nested bodies excluded."""
    for part in node.parts:
        yield from walk_no_nested(part)


def _can_raise(parts: Sequence[ast.AST]) -> bool:
    for part in parts:
        for sub in walk_no_nested(part):
            if isinstance(sub, (ast.Call, ast.Raise, ast.Assert, ast.Await)):
                return True
    return False


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _context_label(item: ast.withitem) -> str:
    expr = item.context_expr
    target = expr.func if isinstance(expr, ast.Call) else expr
    return dotted_name(target) or "<dynamic>"


# ---------------------------------------------------------------------------
# builder


@dataclass
class _TryFrame:
    handler_heads: list[int]
    catch_all: bool
    finally_head: int | None


@dataclass
class _LoopFrame:
    header: int
    breaks: list[int] = field(default_factory=list)


_CATCH_ALL_NAMES = {"BaseException", "Exception"}


class _Builder:
    def __init__(self, func: _FuncDef) -> None:
        self.cfg = CFG()
        self.func = func
        self.try_stack: list[_TryFrame] = []
        self.loop_stack: list[_LoopFrame] = []
        self.with_stack: list[str] = []

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        cfg = self.cfg
        cfg.entry = cfg.add_node("entry", self.func.lineno)
        cfg.exit = cfg.add_node("exit", self.func.lineno)
        cfg.raise_exit = cfg.add_node("raise", self.func.lineno)
        out = self._block(self.func.body, [cfg.entry])
        for idx in out:
            cfg.add_edge(idx, cfg.exit)
        return cfg

    # ------------------------------------------------------------------
    def _exc_targets(self) -> list[int]:
        """Where an uncaught exception raised *here* can go next."""
        targets: list[int] = []
        for frame in reversed(self.try_stack):
            targets.extend(frame.handler_heads)
            if frame.catch_all:
                return targets
            if frame.finally_head is not None:
                # The exception enters the finally block; the finally
                # body's own re-propagation edges carry it onward from
                # there.  A direct edge past it would model skipping
                # the cleanup, which cannot happen.
                targets.append(frame.finally_head)
                return targets
        targets.append(self.cfg.raise_exit)
        return targets

    def _new_stmt(self, stmt: ast.stmt, parts: Sequence[ast.AST],
                  preds: Sequence[int]) -> int:
        idx = self.cfg.add_node("stmt", stmt.lineno, stmt=stmt, parts=parts,
                                with_scopes=self.with_stack)
        for p in preds:
            self.cfg.add_edge(p, idx)
        if _can_raise(list(parts)):
            for t in self._exc_targets():
                self.cfg.add_edge(idx, t, EXC)
        return idx

    def _block(self, stmts: Sequence[ast.stmt],
               preds: Sequence[int]) -> list[int]:
        cur = list(preds)
        for stmt in stmts:
            cur = self._stmt(stmt, cur)
        return cur

    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            head = self._new_stmt(stmt, [stmt.test], preds)
            body_out = self._block(stmt.body, [head])
            else_out = (self._block(stmt.orelse, [head])
                        if stmt.orelse else [head])
            return body_out + else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header_parts: list[ast.AST] = (
                [stmt.test] if isinstance(stmt, ast.While)
                else [stmt.iter, stmt.target]
            )
            head = self._new_stmt(stmt, header_parts, preds)
            frame = _LoopFrame(header=head)
            self.loop_stack.append(frame)
            body_out = self._block(stmt.body, [head])
            self.loop_stack.pop()
            for idx in body_out:
                cfg.add_edge(idx, head)
            normal_exit = (self._block(stmt.orelse, [head])
                           if stmt.orelse else [head])
            return normal_exit + frame.breaks

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._new_stmt(stmt, [i.context_expr for i in stmt.items],
                                  preds)
            labels = [_context_label(i) for i in stmt.items]
            self.with_stack.extend(labels)
            body_out = self._block(stmt.body, [head])
            del self.with_stack[len(self.with_stack) - len(labels):]
            return body_out

        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)

        if isinstance(stmt, ast.Match):
            head = self._new_stmt(stmt, [stmt.subject], preds)
            outs: list[int] = []
            exhaustive = False
            for case in stmt.cases:
                outs.extend(self._block(case.body, [head]))
                if (isinstance(case.pattern, ast.MatchAs)
                        and case.pattern.pattern is None
                        and case.guard is None):
                    exhaustive = True
            if not exhaustive:
                outs.append(head)
            return outs

        if isinstance(stmt, ast.Return):
            parts = [stmt.value] if stmt.value is not None else []
            idx = self._new_stmt(stmt, parts, preds)
            cfg.add_edge(idx, cfg.exit)
            return []

        if isinstance(stmt, ast.Raise):
            idx = self._new_stmt(stmt, [stmt], preds)
            return []

        if isinstance(stmt, ast.Break):
            idx = self._new_stmt(stmt, [], preds)
            if self.loop_stack:
                self.loop_stack[-1].breaks.append(idx)
            return []

        if isinstance(stmt, ast.Continue):
            idx = self._new_stmt(stmt, [], preds)
            if self.loop_stack:
                cfg.add_edge(idx, self.loop_stack[-1].header)
            return []

        # Simple statement (including nested def/class, whose bodies are
        # separate CFGs).
        return [self._new_stmt(stmt, [stmt], preds)]

    # ------------------------------------------------------------------
    def _try(self, stmt: ast.Try, preds: list[int]) -> list[int]:
        cfg = self.cfg
        handler_heads = [
            cfg.add_node("except", h.lineno, with_scopes=self.with_stack)
            for h in stmt.handlers
        ]
        finally_head = (
            cfg.add_node("finally", stmt.finalbody[0].lineno,
                         with_scopes=self.with_stack)
            if stmt.finalbody else None
        )
        catch_all = any(self._is_catch_all(h) for h in stmt.handlers)
        frame = _TryFrame(handler_heads=handler_heads, catch_all=catch_all,
                          finally_head=finally_head)
        self.try_stack.append(frame)
        body_out = self._block(stmt.body, preds)
        else_out = (self._block(stmt.orelse, body_out)
                    if stmt.orelse else body_out)
        self.try_stack.pop()
        # Handler bodies: their own exceptions propagate to *outer* frames.
        handler_outs: list[int] = []
        for head, handler in zip(handler_heads, stmt.handlers):
            handler_outs.extend(self._block(handler.body, [head]))
        if finally_head is None:
            return else_out + handler_outs
        for idx in else_out + handler_outs:
            cfg.add_edge(idx, finally_head)
        fin_out = self._block(stmt.finalbody, [finally_head])
        # The finally body is shared by the normal and the exceptional
        # continuation: it falls through *and* may re-propagate.
        for idx in fin_out:
            for t in self._exc_targets():
                cfg.add_edge(idx, t, EXC)
        return fin_out

    @staticmethod
    def _is_catch_all(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        name = dotted_name(handler.type)
        return name is not None and name.split(".")[-1] in _CATCH_ALL_NAMES


def build_cfg(func: _FuncDef) -> CFG:
    """Build the statement-level CFG of one function definition."""
    return _Builder(func).build()


def iter_functions(tree: ast.Module) -> Iterator[tuple[str | None, _FuncDef]]:
    """Yield ``(enclosing class name or None, function def)`` for every
    function in the module, including methods and nested functions."""

    def visit(node: ast.AST, cls: str | None) -> Iterator[
            tuple[str | None, _FuncDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from visit(child, cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)
