"""Flat AST rules ported from the first-generation linter.

These are the seven pattern-level rule classes (C, P, S, L, F, X) that
needed no control-flow reasoning; their semantics are unchanged, each
finding now carries its stable short id (C1, C2, P1–P4, S1–S3, L1, F1,
F2, X1) so suppressions and the baseline can target it precisely.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.lint.base import (
    Violation,
    dotted_parts,
    in_charge_scope,
    in_executor_scope,
    in_format_scope,
    in_protocol_scope,
    in_scalar_scope,
    in_topology_scope,
    qualify,
    str_arg,
)
from repro.analysis.lint.symbols import FileUnit, ProjectIndex

#: Names making up the Index protocol surface (methods, capability
#: attributes, and sharding hooks).  ``backend_name`` is deliberately
#: absent: it is registry *metadata* stamped by ``register()``, not
#: behaviour, and the registry reads it reflectively by design.
PROTOCOL_SURFACE = frozenset(
    {
        "bind",
        "unbind",
        "capabilities",
        "write_target",
        "search",
        "insert",
        "delete",
        "range_scan",
        "search_many",
        "insert_many",
        "delete_many",
        "range_scan_many",
        "supports_sharding",
        "size_pages",
        "n_leaves",
        "height",
        "shard_leaves",
        "shard_from_leaves",
        "shard_leaf_span",
        "shard_cut_spans",
        "snapshot_state",
        "restore_state",
    }
)

#: Scalar protocol ops and the batch counterpart each one requires.
SCALAR_TO_BATCH = {
    "search": "search_many",
    "insert": "insert_many",
    "delete": "delete_many",
    "range_scan": "range_scan_many",
}

#: Base classes that mark a class as index-like and that are known to
#: provide every ``*_many`` fallback (protocol.py's mixin hierarchy).
_BATCH_PROVIDERS = frozenset({"BatchFallbackMixin", "IndexBackend"})
_INDEX_MARKERS = _BATCH_PROVIDERS | {"Index"}

#: Module-level RNG entry points that draw from a hidden global stream.
_GLOBAL_RNG = frozenset(
    {"random." + f for f in (
        "random", "randint", "randrange", "getrandbits", "choice",
        "choices", "shuffle", "sample", "uniform", "gauss", "betavariate",
        "expovariate", "seed",
    )}
    | {"numpy.random." + f for f in (
        "rand", "randn", "randint", "random", "random_sample",
        "random_integers", "choice", "permutation", "shuffle", "normal",
        "uniform", "standard_normal", "seed",
    )}
)


def check_file(unit: FileUnit) -> Iterator[Violation]:
    """Run every single-file ported rule over one parsed unit."""
    yield from _check_calls(unit)
    yield from _check_shard_caching(unit)
    yield from _check_executor_confinement(unit)


def _check_calls(unit: FileUnit) -> Iterator[Violation]:
    tree, relpath, aliases = unit.tree, unit.relpath, unit.aliases
    charge = in_charge_scope(relpath)
    protocol = in_protocol_scope(relpath)
    scalar = in_scalar_scope(relpath)
    fmt = in_format_scope(relpath)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # -- charge-discipline -----------------------------------------
        if charge and isinstance(func, ast.Attribute) and func.attr == "read_page":
            seq_kw = next(
                (kw for kw in node.keywords if kw.arg == "sequential"), None
            )
            has_star = any(kw.arg is None for kw in node.keywords)
            if seq_kw is None and len(node.args) < 2 and not has_star:
                yield Violation(
                    "C1", "charge-discipline", relpath, node.lineno,
                    "read_page() without an explicit sequential= argument; "
                    "adjacency inference mis-splits Eq. 13's random/"
                    "sequential accounting",
                )
            seq_val = seq_kw.value if seq_kw is not None else (
                node.args[1] if len(node.args) > 1 else None
            )
            if isinstance(seq_val, ast.Constant) and seq_val.value is True:
                yield Violation(
                    "C2", "charge-discipline", relpath, node.lineno,
                    "read_page(sequential=True) literal: the first page of "
                    "a run always pays the random positioning cost; use "
                    "sequential=i > 0 or Device.read_run",
                )

        # -- protocol-discipline / scalar-leak -------------------------
        if isinstance(func, ast.Name) and func.id in (
            "hasattr", "getattr", "setattr"
        ):
            name = str_arg(node, 1)
            if name == "item" and func.id in ("hasattr", "getattr") and scalar:
                yield Violation(
                    "L1", "scalar-leak", relpath, node.lineno,
                    f'{func.id}(..., "item") numpy-scalar unwrapping; use '
                    "repro.api.results.as_scalar",
                )
            elif name in PROTOCOL_SURFACE and protocol:
                yield Violation(
                    "P1", "protocol-discipline", relpath, node.lineno,
                    f'{func.id}(..., "{name}") duck-types the Index '
                    "protocol surface; backends declare the full surface, "
                    "so access it directly",
                )

        # -- format-discipline -----------------------------------------
        if fmt and isinstance(func, ast.Name) and func.id == "open":
            mode_kw = next(
                (kw for kw in node.keywords if kw.arg == "mode"), None
            )
            mode_node = mode_kw.value if mode_kw is not None else (
                node.args[1] if len(node.args) > 1 else None
            )
            if (
                isinstance(mode_node, ast.Constant)
                and isinstance(mode_node.value, str)
                and "b" in mode_node.value
                and any(c in mode_node.value for c in "wax+")
            ):
                yield Violation(
                    "F2", "format-discipline", relpath, node.lineno,
                    f'open(..., "{mode_node.value}") writes binary index '
                    "state outside repro.persist; on-disk formats live "
                    "there, framed and checksummed",
                )

        # -- seed-discipline -------------------------------------------
        qual = qualify(func, aliases)
        if qual is None:
            continue
        if fmt and qual in ("pickle.load", "pickle.loads"):
            yield Violation(
                "F1", "format-discipline", relpath, node.lineno,
                f"{qual}() deserializes unchecksummed, code-executing "
                "state; use the repro.persist snapshot container",
            )
        if qual == "numpy.random.default_rng":
            if not node.args and not any(
                kw.arg == "seed" or kw.arg is None for kw in node.keywords
            ):
                yield Violation(
                    "S1", "seed-discipline", relpath, node.lineno,
                    "np.random.default_rng() without an explicit seed; "
                    "thread one from workloads.seeds.derive_seed",
                )
        elif qual == "random.Random":
            if not node.args and not node.keywords:
                yield Violation(
                    "S2", "seed-discipline", relpath, node.lineno,
                    "random.Random() without an explicit seed; thread one "
                    "from workloads.seeds.derive_seed",
                )
        elif qual in _GLOBAL_RNG:
            yield Violation(
                "S3", "seed-discipline", relpath, node.lineno,
                f"{qual}() draws from the hidden global RNG stream; use a "
                "seeded Generator/Random instance",
            )


def _check_shard_caching(unit: FileUnit) -> Iterator[Violation]:
    """P4: storing ``.shards``/``.shards[...]`` into instance state."""
    if not in_topology_scope(unit.relpath):
        return
    for node in ast.walk(unit.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            caches_self = any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            )
            if not caches_self or node.value is None:
                continue
            if any(
                isinstance(sub, ast.Attribute) and sub.attr == "shards"
                for sub in ast.walk(node.value)
            ):
                yield Violation(
                    "P4", "protocol-discipline", unit.relpath, node.lineno,
                    "caching .shards state in a self attribute; shard "
                    "ordinals are valid for one routing-table epoch only "
                    "— re-read service.shards on every use",
                )


_PARALLEL_MODULES = ("multiprocessing", "concurrent.futures")


def _parallel_module(name: str) -> str | None:
    for mod in _PARALLEL_MODULES:
        if name == mod or name.startswith(mod + "."):
            return mod
    return None


def _check_executor_confinement(unit: FileUnit) -> Iterator[Violation]:
    """X1: parallel-execution primitives imported outside the executor."""
    if not in_executor_scope(unit.relpath):
        return
    for node in ast.walk(unit.tree):
        modules: list[str]
        if isinstance(node, ast.Import):
            modules = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module is None:
                continue
            modules = [node.module]
            if node.module == "concurrent":
                modules.extend(f"concurrent.{a.name}" for a in node.names)
        else:
            continue
        for mod in modules:
            hit = _parallel_module(mod)
            if hit is not None:
                yield Violation(
                    "X1", "executor-confinement", unit.relpath, node.lineno,
                    f"import of {mod} outside repro.service.executor; "
                    "parallel shard execution is confined to the "
                    "equivalence-tested executor layer",
                )


# ---------------------------------------------------------------------------
# cross-file rules (P2 batch pairing, P3 registry conformance)


def _class_defs(tree: ast.Module) -> dict[str, tuple[list[str], set[str]]]:
    """Map class name -> (base names, locally defined method names)."""
    out: dict[str, tuple[list[str], set[str]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = []
        for b in node.bases:
            parts = dotted_parts(b)
            if parts:
                bases.append(parts[-1])
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        out[node.name] = (bases, methods)
    return out


def check_project(project: ProjectIndex,
                  root: Path | None = None) -> Iterator[Violation]:
    """P2 over every class in the project, P3 against the repo root."""
    all_classes: dict[str, tuple[list[str], set[str]]] = {}
    locations: dict[str, tuple[str, int]] = {}
    for unit in project.units:
        if not in_protocol_scope(unit.relpath):
            continue
        for name, info in _class_defs(unit.tree).items():
            all_classes[name] = info
            for n in ast.walk(unit.tree):
                if isinstance(n, ast.ClassDef) and n.name == name:
                    locations[name] = (unit.relpath, n.lineno)
                    break
    yield from _check_batch_pairing(all_classes, locations)
    if root is not None:
        yield from _check_registry_conformance(root)


def _check_batch_pairing(
    classes: dict[str, tuple[list[str], set[str]]],
    locations: dict[str, tuple[str, int]],
) -> Iterator[Violation]:
    """P2: scalar op without its ``*_many`` counterpart on index-like
    classes."""

    def resolve(cls: str, seen: frozenset[str] = frozenset()) -> set[str]:
        if cls in seen or cls not in classes:
            return set()
        bases, methods = classes[cls]
        merged = set(methods)
        for b in bases:
            if b in _BATCH_PROVIDERS:
                merged.update(SCALAR_TO_BATCH.values())
            merged |= resolve(b, seen | {cls})
        return merged

    def index_like(cls: str, seen: frozenset[str] = frozenset()) -> bool:
        if cls in seen or cls not in classes:
            return False
        bases, methods = classes[cls]
        if "capabilities" in methods:
            return True
        return any(
            b in _INDEX_MARKERS or index_like(b, seen | {cls}) for b in bases
        )

    for cls in classes:
        if not index_like(cls):
            continue
        provided = resolve(cls)
        for scalar_op, batch_op in SCALAR_TO_BATCH.items():
            if scalar_op in provided and batch_op not in provided:
                path, line = locations.get(cls, ("<unknown>", 0))
                yield Violation(
                    "P2", "protocol-discipline", path, line,
                    f"index-like class {cls} defines {scalar_op}() but "
                    f"neither defines nor inherits {batch_op}()",
                )


def _registered_names(tree: ast.Module) -> list[tuple[str, int]]:
    names = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register"
        ):
            name = str_arg(node, 0)
            if name is not None:
                names.append((name, node.lineno))
    return names


def _expected_caps_keys(tree: ast.Module) -> set[str] | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "EXPECTED_CAPS" in targets and isinstance(node.value, ast.Dict):
                return {
                    k.value
                    for k in node.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                }
    return None


def _check_registry_conformance(root: Path) -> Iterator[Violation]:
    """P3: every ``register()``-ed backend appears in the conformance
    suite."""
    backends_py = root / "src" / "repro" / "api" / "backends.py"
    conformance_py = root / "tests" / "test_api_conformance.py"
    if not backends_py.is_file():
        return
    registered = _registered_names(
        ast.parse(backends_py.read_text("utf-8")))
    if not registered:
        return
    rel_backends = "src/repro/api/backends.py"
    if not conformance_py.is_file():
        yield Violation(
            "P3", "protocol-discipline", rel_backends, registered[0][1],
            "backends are register()ed but tests/test_api_conformance.py "
            "is missing",
        )
        return
    expected = _expected_caps_keys(
        ast.parse(conformance_py.read_text("utf-8")))
    if expected is None:
        yield Violation(
            "P3", "protocol-discipline", rel_backends, registered[0][1],
            "conformance suite has no literal EXPECTED_CAPS table to "
            "cross-check registered backends against",
        )
        return
    for name, line in registered:
        if name not in expected:
            yield Violation(
                "P3", "protocol-discipline", rel_backends, line,
                f'backend "{name}" is register()ed but missing from the '
                "conformance suite's EXPECTED_CAPS",
            )
