"""The committed lint baseline.

A baseline entry identifies a finding by ``(rule, path, message)`` —
deliberately **not** by line number, so unrelated edits above a
baselined finding do not resurrect it.  Each entry absorbs one matching
finding per occurrence recorded (the file stores a multiset).

``repro lint --write-baseline`` snapshots the current findings;
``repro lint`` (with the file present) reports only findings that are
not absorbed.  The intended workflow is a one-time snapshot when
adopting a new rule, then burning entries down — the baseline file is
committed, so its diff *is* the review surface.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.lint.base import Violation

_VERSION = 1

_Key = tuple[str, str, str]


def _key(v: Violation) -> _Key:
    return (v.rule, v.path, v.message)


def load_baseline(path: Path) -> Counter[_Key]:
    """Load the baseline multiset; a missing file is an empty baseline."""
    if not path.is_file():
        return Counter()
    data = json.loads(path.read_text("utf-8"))
    entries: Counter[_Key] = Counter()
    for item in data.get("findings", []):
        entries[(str(item["rule"]), str(item["path"]),
                 str(item["message"]))] += 1
    return entries


def apply_baseline(
    violations: list[Violation], baseline: Counter[_Key]
) -> list[Violation]:
    """Findings not absorbed by the baseline, in input order."""
    remaining = Counter(baseline)
    kept: list[Violation] = []
    for v in violations:
        k = _key(v)
        if remaining.get(k, 0) > 0:
            remaining[k] -= 1
            continue
        kept.append(v)
    return kept


def write_baseline(violations: list[Violation], path: Path) -> None:
    """Snapshot the given findings as the new baseline."""
    findings = [
        {"rule": v.rule, "path": v.path, "message": v.message}
        for v in sorted(violations, key=Violation.sort_key)
    ]
    payload = {"version": _VERSION, "findings": findings}
    path.write_text(json.dumps(payload, indent=2) + "\n", "utf-8")
