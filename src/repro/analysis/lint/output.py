"""Finding renderers: text (one line per finding), JSON, SARIF 2.1.0.

The SARIF document carries the full rule table from
:data:`repro.analysis.lint.base.RULES` so viewers (GitHub code
scanning, VS Code SARIF explorer) can show the rule description next to
each result without a side channel.
"""

from __future__ import annotations

import json

from repro.analysis.lint.base import RULES, Violation

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)

#: Suppression-hygiene findings are advisory; everything else is an
#: invariant violation.
_WARNING_RULES = frozenset({"U1", "U2", "U3"})


def render_text(violations: list[Violation]) -> str:
    lines = [v.format() for v in violations]
    n = len(violations)
    lines.append(f"reprolint: {n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines) + "\n"


def render_json(violations: list[Violation]) -> str:
    payload = {
        "findings": [
            {
                "rule": v.rule,
                "category": v.category,
                "path": v.path,
                "line": v.line,
                "message": v.message,
            }
            for v in violations
        ]
    }
    return json.dumps(payload, indent=2) + "\n"


def _level(rule: str) -> str:
    return "warning" if rule in _WARNING_RULES else "error"


def render_sarif(violations: list[Violation]) -> str:
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": _level(rule_id)},
            "properties": {"category": category},
        }
        for rule_id, (category, description) in sorted(RULES.items())
    ]
    results = [
        {
            "ruleId": v.rule,
            "level": _level(v.rule),
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, v.line)},
                    }
                }
            ],
        }
        for v in violations
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri":
                            "https://example.invalid/repro#reprolint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2) + "\n"
