"""Shared lint-engine vocabulary: findings, the rule registry, scoping.

Every rule has a stable short id (``C1`` … ``X1`` ported from the flat
linter, ``D1``/``D2``/``D3``/``E1``/``E2``/``R1`` from the CFG/dataflow
engine, ``U1``–``U3`` for suppression hygiene) plus a category string
grouping ids that encode one project invariant.  Suppression comments,
the baseline file and SARIF output all key on the short id.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One lint finding: stable rule id, location, message."""

    rule: str
    category: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule} {self.category}] " \
               f"{self.message}"

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)


#: rule id -> (category, one-line description).  The single source the
#: suppression parser, SARIF rule table and README catalog draw from.
RULES: dict[str, tuple[str, str]] = {
    "C1": ("charge-discipline",
           "read_page() must pass an explicit sequential= argument"),
    "C2": ("charge-discipline",
           "read_page(sequential=True) literal can never be correct"),
    "P1": ("protocol-discipline",
           "no hasattr/getattr/setattr against the Index protocol surface"),
    "P2": ("protocol-discipline",
           "an index-like class defining a scalar op must provide its "
           "*_many counterpart"),
    "P3": ("protocol-discipline",
           "every register()-ed backend appears in the conformance suite's "
           "EXPECTED_CAPS"),
    "P4": ("protocol-discipline",
           "service code must not cache .shards state in instance "
           "attributes (epoch-scoped views)"),
    "S1": ("seed-discipline",
           "np.random.default_rng() requires an explicit seed"),
    "S2": ("seed-discipline", "random.Random() requires an explicit seed"),
    "S3": ("seed-discipline",
           "no module-level (hidden global stream) RNG calls"),
    "L1": ("scalar-leak",
           "use repro.api.results.as_scalar, not ad-hoc .item unwrapping"),
    "F1": ("format-discipline",
           "no pickle.load(s) under src/: unchecksummed, code-executing"),
    "F2": ("format-discipline",
           "no binary-write open() outside repro.persist"),
    "X1": ("executor-confinement",
           "multiprocessing/concurrent.futures imports are confined to the "
           "executor module"),
    "D1": ("durability-ordering",
           "in DurableIndex mutators the WAL append must dominate the "
           "inner-index mutation"),
    "D2": ("durability-ordering",
           "in persist/, the atomic manifest commit must dominate any "
           "stale-generation unlink/rmtree"),
    "D3": ("durability-ordering",
           "in executor worker loops the WAL fsync must dominate the "
           "batch ack send"),
    "E1": ("epoch-discipline",
           "values derived from routing ordinals/.shards may not flow "
           "across a call that can bump the topology epoch"),
    "E2": ("epoch-discipline",
           "journal replay must run inside a suspended_charges/"
           "suspended_logging scope"),
    "R1": ("resource-lifecycle",
           "every SharedMemory create must reach close()+unlink() on all "
           "paths, exception edges included"),
    "U1": ("suppression", "suppression comment matched no finding"),
    "U2": ("suppression",
           "suppression comment lacks the mandatory '-- reason'"),
    "U3": ("suppression", "suppression names an unknown rule id"),
    "PE": ("parse-error", "file does not parse"),
}

#: The rule ids ported from the flat (pre-CFG) linter — the old engine
#: could express exactly these.  Flow rules are everything else.
PORTED_IDS = frozenset(
    {"C1", "C2", "P1", "P2", "P3", "P4", "S1", "S2", "S3", "L1",
     "F1", "F2", "X1"}
)
FLOW_IDS = frozenset({"D1", "D2", "D3", "E1", "E2", "R1"})


# ---------------------------------------------------------------------------
# path scoping (ported verbatim from the flat linter's semantics)


def posix(relpath: str) -> str:
    return relpath.replace("\\", "/")


def in_charge_scope(relpath: str) -> bool:
    """C1/C2 apply to library code outside the storage layer."""
    p = posix(relpath)
    if p.startswith("tests/"):
        return False
    return not p.startswith("src/repro/storage/")


def in_protocol_scope(relpath: str) -> bool:
    """P1/P2/P3 apply outside tests (tests may introspect)."""
    return not posix(relpath).startswith("tests/")


def in_scalar_scope(relpath: str) -> bool:
    """L1 applies everywhere except the helper's home module."""
    return posix(relpath) != "src/repro/api/results.py"


def in_topology_scope(relpath: str) -> bool:
    """P4/E1 apply to the service layer, minus the topology owners."""
    p = posix(relpath)
    if not p.startswith("src/repro/service/"):
        return False
    return p.rsplit("/", 1)[-1] not in ("sharded.py", "routing.py")


def in_executor_scope(relpath: str) -> bool:
    """X1 applies to library code outside the executor layer's home."""
    p = posix(relpath)
    return p.startswith("src/") and p != "src/repro/service/executor.py"


def in_format_scope(relpath: str) -> bool:
    """F1/F2 apply to library code outside the persist package."""
    p = posix(relpath)
    return p.startswith("src/") and not p.startswith("src/repro/persist/")


def in_persist_scope(relpath: str) -> bool:
    """D1/D2's home turf: the durability layer itself."""
    return posix(relpath).startswith("src/repro/persist/")


def in_service_scope(relpath: str) -> bool:
    """E2's home turf: the serving layer."""
    return posix(relpath).startswith("src/repro/service/")


def is_executor_module(relpath: str) -> bool:
    """D3's home turf: the worker-loop module."""
    return posix(relpath) == "src/repro/service/executor.py"


def in_src_scope(relpath: str) -> bool:
    """R1 applies to all library code."""
    return posix(relpath).startswith("src/")


# ---------------------------------------------------------------------------
# small AST helpers shared by rules


def collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/attribute they refer to."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def dotted_parts(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def qualify(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve a call target to its dotted import-level name, if known."""
    parts = dotted_parts(node)
    if not parts or parts[0] not in aliases:
        return None
    resolved = aliases[parts[0]]
    if resolved == "np":  # pragma: no cover - defensive
        resolved = "numpy"
    return ".".join([resolved, *parts[1:]])


def str_arg(call: ast.Call, idx: int) -> str | None:
    if len(call.args) > idx:
        arg = call.args[idx]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def call_name(call: ast.Call) -> str | None:
    """The bare callee name: ``f`` for ``f(...)`` and ``x.f(...)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
