"""The lint driver: file discovery, rule dispatch, suppressions,
baseline, deterministic ordering.

Pipeline per run::

    discover -> parse (PE on SyntaxError) -> ProjectIndex
             -> ported AST rules + CFG/dataflow rules (per file)
             -> cross-file rules (P2, P3)
             -> per-line suppressions (U1/U2/U3 hygiene findings)
             -> optional `only` rule filter -> baseline -> sort

Findings are always sorted by ``(path, line, rule id)`` so output is
diffable and the baseline file is stable.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.lint import baseline as _baseline
from repro.analysis.lint import rules_ast, rules_flow
from repro.analysis.lint.base import Violation, posix
from repro.analysis.lint.suppress import (
    Suppression,
    apply_suppressions,
    collect_suppressions,
)
from repro.analysis.lint.symbols import FileUnit, ProjectIndex

#: Top-level directories a whole-repo run covers.
TARGET_DIRS = ("src", "tests", "benchmarks", "examples")

#: The file whose presence enables the P3 registry cross-check.
_BACKENDS_REL = "src/repro/api/backends.py"


def default_targets(root: Path) -> list[Path]:
    """Every lintable ``.py`` file under the standard target dirs."""
    files: list[Path] = []
    for sub in TARGET_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        files.extend(sorted(
            p for p in base.rglob("*.py") if not _skipped(p)
        ))
    return files


def _skipped(path: Path) -> bool:
    return any(
        part == "__pycache__" or part.startswith(".")
        for part in path.parts
    )


def _relpath(path: Path, root: Path) -> str:
    return posix(os.path.relpath(os.path.abspath(str(path)), str(root)))


def lint_files(
    paths: list[Path],
    root: Path,
    *,
    only: frozenset[str] | None = None,
    baseline_path: Path | None = None,
) -> list[Violation]:
    """Lint the given files (paths absolute or relative to ``root``)."""
    units: list[FileUnit] = []
    violations: list[Violation] = []
    supp_by_file: dict[str, dict[int, Suppression]] = {}
    for path in paths:
        abs_path = path if path.is_absolute() else root / path
        rel = _relpath(abs_path, root)
        try:
            source = abs_path.read_text("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            violations.append(Violation(
                "PE", "parse-error", rel, 0, f"unreadable: {exc}"))
            continue
        try:
            unit = FileUnit.parse(rel, source)
        except SyntaxError as exc:
            violations.append(Violation(
                "PE", "parse-error", rel, exc.lineno or 0,
                f"does not parse: {exc.msg}"))
            continue
        units.append(unit)
        active, meta = collect_suppressions(source, rel)
        supp_by_file[rel] = active
        violations.extend(meta)

    project = ProjectIndex(units)
    for unit in units:
        violations.extend(rules_ast.check_file(unit))
        violations.extend(rules_flow.check_file(unit, project))
    # P3 needs the repo on disk; only meaningful when the registry file
    # is part of this run (always true for whole-repo runs).
    p3_root = (
        root if any(u.relpath == _BACKENDS_REL for u in units) else None
    )
    violations.extend(rules_ast.check_project(project, p3_root))

    return _finalize(violations, supp_by_file, only=only,
                     baseline_path=baseline_path)


def lint_repo(
    root: Path,
    *,
    only: frozenset[str] | None = None,
    baseline_path: Path | None = None,
) -> list[Violation]:
    """Whole-repo run over ``src/``, ``tests/``, ``benchmarks/``,
    ``examples/``."""
    return lint_files(default_targets(root), root, only=only,
                      baseline_path=baseline_path)


def lint_source(
    source: str,
    relpath: str = "src/repro/snippet.py",
    *,
    only: frozenset[str] | None = None,
) -> list[Violation]:
    """Lint one in-memory source (tests and tooling; rule scoping still
    keys off ``relpath``)."""
    rel = posix(relpath)
    try:
        unit = FileUnit.parse(rel, source)
    except SyntaxError as exc:
        return [Violation("PE", "parse-error", rel, exc.lineno or 0,
                          f"does not parse: {exc.msg}")]
    project = ProjectIndex([unit])
    violations = list(rules_ast.check_file(unit))
    violations.extend(rules_flow.check_file(unit, project))
    violations.extend(rules_ast.check_project(project, None))
    active, meta = collect_suppressions(source, rel)
    violations.extend(meta)
    return _finalize(violations, {rel: active}, only=only,
                     baseline_path=None)


def _finalize(
    violations: list[Violation],
    supp_by_file: dict[str, dict[int, Suppression]],
    *,
    only: frozenset[str] | None,
    baseline_path: Path | None,
) -> list[Violation]:
    kept, unused = apply_suppressions(violations, supp_by_file)
    kept.extend(unused)
    if only is not None:
        kept = [v for v in kept if v.rule in only]
    if baseline_path is not None:
        kept = _baseline.apply_baseline(
            kept, _baseline.load_baseline(baseline_path))
    return sorted(kept, key=Violation.sort_key)
