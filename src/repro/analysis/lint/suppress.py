"""Per-line suppression comments.

Syntax (one comment, end of the flagged line)::

    x = risky()  # reprolint: disable=D1 -- intentional: see docstring

* ``disable=`` takes one or more comma-separated rule ids;
* the ``-- reason`` is **mandatory** — a directive without one does not
  suppress anything and is itself reported (``U2``);
* a directive naming an unknown id is reported (``U3``);
* a directive (or id within one) that matched no finding is reported
  (``U1``) so stale suppressions cannot silently accumulate.

Directives are found with :mod:`tokenize`, not regexes, so directive
look-alikes inside string literals (the lint test-suite is full of
them) are never misread as live suppressions.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field

from repro.analysis.lint.base import RULES, Violation

_PREFIX = "reprolint:"
_DISABLE = "disable="


@dataclass
class Suppression:
    """One parsed ``# reprolint: disable=...`` directive."""

    relpath: str
    line: int
    ids: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


def collect_suppressions(
    source: str, relpath: str
) -> tuple[dict[int, Suppression], list[Violation]]:
    """Parse every directive in ``source``.

    Returns ``(line -> active suppression, hygiene findings)`` — a
    directive missing its reason or naming unknown ids contributes to
    the findings instead of (respectively: in addition to) the map.
    """
    active: dict[int, Suppression] = {}
    meta: list[Violation] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, []
    for line, comment in comments:
        body = comment.lstrip("#").strip()
        if not body.startswith(_PREFIX):
            continue
        body = body[len(_PREFIX):].strip()
        if "--" in body:
            spec, reason = body.split("--", 1)
            reason = reason.strip()
        else:
            spec, reason = body, ""
        spec = spec.strip()
        if not spec.startswith(_DISABLE):
            verb = spec.split()[0] if spec.split() else "<empty>"
            meta.append(Violation(
                "U3", "suppression", relpath, line,
                f"unrecognized reprolint directive {verb!r}; only "
                "'disable=<ID>[,<ID>] -- <reason>' is supported",
            ))
            continue
        ids = tuple(
            s.strip() for s in spec[len(_DISABLE):].split(",") if s.strip()
        )
        known = tuple(i for i in ids if i in RULES)
        for unknown in (i for i in ids if i not in RULES):
            meta.append(Violation(
                "U3", "suppression", relpath, line,
                f"suppression names unknown rule id {unknown!r}",
            ))
        if not reason:
            meta.append(Violation(
                "U2", "suppression", relpath, line,
                "suppression lacks the mandatory '-- <reason>'; the "
                "findings on this line are NOT suppressed",
            ))
            continue
        if known:
            active[line] = Suppression(relpath=relpath, line=line,
                                       ids=known, reason=reason)
    return active, meta


def apply_suppressions(
    violations: list[Violation],
    by_file: dict[str, dict[int, Suppression]],
) -> tuple[list[Violation], list[Violation]]:
    """Drop suppressed findings; report unused directives.

    Returns ``(kept findings, U1 findings for unused directive ids)``.
    """
    kept: list[Violation] = []
    for v in violations:
        supp = by_file.get(v.path, {}).get(v.line)
        if supp is not None and v.rule in supp.ids:
            supp.used.add(v.rule)
            continue
        kept.append(v)
    unused: list[Violation] = []
    for table in by_file.values():
        for supp in table.values():
            for rule_id in supp.ids:
                if rule_id not in supp.used:
                    unused.append(Violation(
                        "U1", "suppression", supp.relpath, supp.line,
                        f"suppression of {rule_id} matched no finding on "
                        "this line; delete the stale directive",
                    ))
    return kept, unused
