"""reprolint — AST lint rules for the project's unwritten invariants.

Every PR in this repo has hand-fixed violations of the same rules: the
Eq. 13 charge discipline behind :class:`~repro.storage.iostats.IOStats`,
``hasattr`` duck-typing around the :class:`~repro.api.protocol.Index`
protocol, unseeded RNG streams that break run-to-run reproducibility,
and numpy scalars leaking through public APIs.  This module encodes
those rules as AST checks so they are machine-enforced instead of
re-litigated in review.

Rule classes (each id groups one class of project invariant):

``charge-discipline``
    C1 — ``.read_page(...)`` outside ``src/repro/storage/`` must pass an
    explicit ``sequential=`` argument.  The device's adjacency inference
    silently turns logically-random probes into sequential charges when
    page ids happen to adjoin, corrupting the Eq. 13 split that Table 3
    and Figure 13 are built on.
    C2 — a literal ``sequential=True`` on ``read_page`` is forbidden:
    the first page of any run pays the random positioning cost, so a
    statically-always-sequential read cannot be correct.  Use the
    ``sequential=i > 0`` run pattern or :meth:`Device.read_run`.

``protocol-discipline``
    P1 — no ``hasattr``/``getattr``/``setattr`` with a string literal
    naming part of the ``Index`` protocol surface.  Backends declare the
    full surface (PR 5); feature probes hide conformance bugs.
    P2 — an index-like class (one that defines ``capabilities`` or
    inherits ``IndexBackend``/``BatchFallbackMixin``) defining a scalar
    op must provide or inherit its ``*_many`` counterpart.
    P3 — every backend name passed to ``register()`` must appear in the
    conformance suite's ``EXPECTED_CAPS`` table (cross-file check).
    P4 — service-layer code must not cache ``.shards`` (or a
    ``.shards[...]`` element) in instance state: shard ordinals and
    Shard objects are valid for one routing-table epoch only, and a
    split/merge invalidates them.  Re-read ``service.shards`` /
    ``route_*`` on every use; only ``sharded.py``/``routing.py`` (the
    topology owners) are exempt.

``seed-discipline``
    S1 — ``np.random.default_rng()`` without an explicit seed.
    S2 — ``random.Random()`` without an explicit seed.
    S3 — module-level (global-stream) RNG calls such as
    ``random.random()`` or ``np.random.rand()``.  Thread a seed from
    :func:`repro.workloads.seeds.derive_seed` instead.

``scalar-leak``
    L1 — ad-hoc ``hasattr(x, "item")``/``getattr(x, "item")`` numpy
    scalar unwrapping.  Use :func:`repro.api.results.as_scalar`, the one
    shared helper (this file's rule is what keeps it singular).

``executor-confinement``
    X1 — importing ``multiprocessing`` or ``concurrent.futures`` (any
    submodule, any alias form) under ``src/`` outside
    ``src/repro/service/executor.py``.  Parallel shard execution is a
    pluggable, equivalence-tested layer (serial/thread/process
    executors); an ad-hoc pool elsewhere bypasses the bit-identity,
    stats-merge and drain-hook discipline that layer guarantees.

``format-discipline``
    On-disk index state has exactly one home: :mod:`repro.persist`,
    whose formats are framed, checksummed and atomically replaced.
    F1 — ``pickle.load``/``pickle.loads`` anywhere under ``src/``:
    pickle is neither checksummed nor versioned, and unpickling
    executes arbitrary code.
    F2 — ``open(..., "wb")`` (any binary-write mode) under ``src/``
    outside ``src/repro/persist/``: ad-hoc binary writers bypass the
    torn-write protections recovery depends on.

Entry points: :func:`lint_source` for one snippet (used by the
self-tests), :func:`lint_repo` for the whole tree (used by
``python -m repro lint`` and CI).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Names making up the Index protocol surface (methods, capability
#: attributes, and sharding hooks).  ``backend_name`` is deliberately
#: absent: it is registry *metadata* stamped by ``register()``, not
#: behaviour, and the registry reads it reflectively by design.
PROTOCOL_SURFACE = frozenset(
    {
        "bind",
        "unbind",
        "capabilities",
        "write_target",
        "search",
        "insert",
        "delete",
        "range_scan",
        "search_many",
        "insert_many",
        "delete_many",
        "range_scan_many",
        "supports_sharding",
        "size_pages",
        "n_leaves",
        "height",
        "shard_leaves",
        "shard_from_leaves",
        "shard_leaf_span",
        "shard_cut_spans",
        "snapshot_state",
        "restore_state",
    }
)

#: Scalar protocol ops and the batch counterpart each one requires.
SCALAR_TO_BATCH = {
    "search": "search_many",
    "insert": "insert_many",
    "delete": "delete_many",
    "range_scan": "range_scan_many",
}

#: Base classes that mark a class as index-like and that are known to
#: provide every ``*_many`` fallback (protocol.py's mixin hierarchy).
_BATCH_PROVIDERS = frozenset({"BatchFallbackMixin", "IndexBackend"})
_INDEX_MARKERS = _BATCH_PROVIDERS | {"Index"}

#: Module-level RNG entry points that draw from a hidden global stream.
_GLOBAL_RNG = frozenset(
    {"random." + f for f in (
        "random", "randint", "randrange", "getrandbits", "choice",
        "choices", "shuffle", "sample", "uniform", "gauss", "betavariate",
        "expovariate", "seed",
    )}
    | {"numpy.random." + f for f in (
        "rand", "randn", "randint", "random", "random_sample",
        "random_integers", "choice", "permutation", "shuffle", "normal",
        "uniform", "standard_normal", "seed",
    )}
)


@dataclass(frozen=True)
class Violation:
    """One lint finding: rule id, location, human-readable message."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# path scoping


def _posix(relpath: str) -> str:
    return relpath.replace("\\", "/")


def _in_charge_scope(relpath: str) -> bool:
    """Charge rules apply to library code outside the storage layer.

    ``src/repro/storage/`` owns the charging machinery itself; tests may
    poke devices directly to exercise it.
    """
    p = _posix(relpath)
    if p.startswith("tests/"):
        return False
    return not p.startswith("src/repro/storage/")


def _in_protocol_scope(relpath: str) -> bool:
    """Protocol rules apply outside tests (tests may introspect)."""
    return not _posix(relpath).startswith("tests/")


def _in_scalar_scope(relpath: str) -> bool:
    """Scalar-leak applies everywhere except the helper's home module."""
    return _posix(relpath) != "src/repro/api/results.py"


def _in_topology_scope(relpath: str) -> bool:
    """P4 applies to the service layer, minus the topology owners.

    ``sharded.py`` and ``routing.py`` define and mutate the topology;
    everyone else must treat shard lists as epoch-scoped views.
    """
    p = _posix(relpath)
    if not p.startswith("src/repro/service/"):
        return False
    return p.rsplit("/", 1)[-1] not in ("sharded.py", "routing.py")


def _in_executor_scope(relpath: str) -> bool:
    """X1 applies to library code outside the executor layer's home.

    ``src/repro/service/executor.py`` owns parallel execution; tests
    and benchmarks may drive workers directly.
    """
    p = _posix(relpath)
    return p.startswith("src/") and p != "src/repro/service/executor.py"


def _in_format_scope(relpath: str) -> bool:
    """Format rules apply to library code outside the persist package.

    ``src/repro/persist/`` owns the on-disk formats; tests and
    benchmarks may write fixture files freely.
    """
    p = _posix(relpath)
    return p.startswith("src/") and not p.startswith("src/repro/persist/")


# ---------------------------------------------------------------------------
# per-file engine


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/attribute they refer to."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted_parts(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _qualify(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve a call target to its dotted import-level name, if known."""
    parts = _dotted_parts(node)
    if not parts or parts[0] not in aliases:
        return None
    resolved = aliases[parts[0]]
    # Normalize the conventional numpy alias target.
    if resolved == "np":  # pragma: no cover - defensive
        resolved = "numpy"
    return ".".join([resolved, *parts[1:]])


def _str_arg(call: ast.Call, idx: int) -> str | None:
    if len(call.args) > idx and isinstance(call.args[idx], ast.Constant):
        v = call.args[idx].value  # type: ignore[attr-defined]
        if isinstance(v, str):
            return v
    return None


def _check_calls(
    tree: ast.Module, relpath: str, aliases: dict[str, str]
) -> Iterator[Violation]:
    charge = _in_charge_scope(relpath)
    protocol = _in_protocol_scope(relpath)
    scalar = _in_scalar_scope(relpath)
    fmt = _in_format_scope(relpath)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # -- charge-discipline -----------------------------------------
        if charge and isinstance(func, ast.Attribute) and func.attr == "read_page":
            seq_kw = next(
                (kw for kw in node.keywords if kw.arg == "sequential"), None
            )
            has_star = any(kw.arg is None for kw in node.keywords)
            if seq_kw is None and len(node.args) < 2 and not has_star:
                yield Violation(
                    "charge-discipline", relpath, node.lineno,
                    "read_page() without an explicit sequential= argument; "
                    "adjacency inference mis-splits Eq. 13's random/"
                    "sequential accounting (C1)",
                )
            seq_val = seq_kw.value if seq_kw is not None else (
                node.args[1] if len(node.args) > 1 else None
            )
            if isinstance(seq_val, ast.Constant) and seq_val.value is True:
                yield Violation(
                    "charge-discipline", relpath, node.lineno,
                    "read_page(sequential=True) literal: the first page of "
                    "a run always pays the random positioning cost; use "
                    "sequential=i > 0 or Device.read_run (C2)",
                )

        # -- protocol-discipline / scalar-leak -------------------------
        if isinstance(func, ast.Name) and func.id in (
            "hasattr", "getattr", "setattr"
        ):
            name = _str_arg(node, 1)
            if name == "item" and func.id in ("hasattr", "getattr") and scalar:
                yield Violation(
                    "scalar-leak", relpath, node.lineno,
                    f'{func.id}(..., "item") numpy-scalar unwrapping; use '
                    "repro.api.results.as_scalar (L1)",
                )
            elif name in PROTOCOL_SURFACE and protocol:
                yield Violation(
                    "protocol-discipline", relpath, node.lineno,
                    f'{func.id}(..., "{name}") duck-types the Index '
                    "protocol surface; backends declare the full surface, "
                    "so access it directly (P1)",
                )

        # -- format-discipline -----------------------------------------
        if fmt and isinstance(func, ast.Name) and func.id == "open":
            mode_kw = next(
                (kw for kw in node.keywords if kw.arg == "mode"), None
            )
            mode_node = mode_kw.value if mode_kw is not None else (
                node.args[1] if len(node.args) > 1 else None
            )
            if (
                isinstance(mode_node, ast.Constant)
                and isinstance(mode_node.value, str)
                and "b" in mode_node.value
                and any(c in mode_node.value for c in "wax+")
            ):
                yield Violation(
                    "format-discipline", relpath, node.lineno,
                    f'open(..., "{mode_node.value}") writes binary index '
                    "state outside repro.persist; on-disk formats live "
                    "there, framed and checksummed (F2)",
                )

        # -- seed-discipline -------------------------------------------
        qual = _qualify(func, aliases)
        if qual is None:
            continue
        if fmt and qual in ("pickle.load", "pickle.loads"):
            yield Violation(
                "format-discipline", relpath, node.lineno,
                f"{qual}() deserializes unchecksummed, code-executing "
                "state; use the repro.persist snapshot container (F1)",
            )
        if qual == "numpy.random.default_rng":
            if not node.args and not any(
                kw.arg == "seed" or kw.arg is None for kw in node.keywords
            ):
                yield Violation(
                    "seed-discipline", relpath, node.lineno,
                    "np.random.default_rng() without an explicit seed; "
                    "thread one from workloads.seeds.derive_seed (S1)",
                )
        elif qual == "random.Random":
            if not node.args and not node.keywords:
                yield Violation(
                    "seed-discipline", relpath, node.lineno,
                    "random.Random() without an explicit seed; thread one "
                    "from workloads.seeds.derive_seed (S2)",
                )
        elif qual in _GLOBAL_RNG:
            yield Violation(
                "seed-discipline", relpath, node.lineno,
                f"{qual}() draws from the hidden global RNG stream; use a "
                "seeded Generator/Random instance (S3)",
            )


def _check_shard_caching(tree: ast.Module, relpath: str) -> Iterator[Violation]:
    """P4: storing ``.shards``/``.shards[...]`` into instance state.

    A ``self.<attr> = ...shards...`` assignment outlives the statement
    that routed it, and any routing-table epoch bump (split/merge)
    leaves the cached Shard/ordinal pointing at retired topology.
    """
    if not _in_topology_scope(relpath):
        return
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            caches_self = any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            )
            if not caches_self or node.value is None:
                continue
            if any(
                isinstance(sub, ast.Attribute) and sub.attr == "shards"
                for sub in ast.walk(node.value)
            ):
                yield Violation(
                    "protocol-discipline", relpath, node.lineno,
                    "caching .shards state in a self attribute; shard "
                    "ordinals are valid for one routing-table epoch only "
                    "— re-read service.shards on every use (P4)",
                )


_PARALLEL_MODULES = ("multiprocessing", "concurrent.futures")


def _parallel_module(name: str) -> str | None:
    for mod in _PARALLEL_MODULES:
        if name == mod or name.startswith(mod + "."):
            return mod
    return None


def _check_executor_confinement(
    tree: ast.Module, relpath: str
) -> Iterator[Violation]:
    """X1: parallel-execution primitives imported outside the executor.

    Flags ``import multiprocessing``/``concurrent.futures`` (and any
    submodule), ``from multiprocessing import ...``, and
    ``from concurrent import futures`` — the executor layer is the one
    place whose parallelism is equivalence-tested against serial.
    """
    if not _in_executor_scope(relpath):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module is None:
                continue
            modules = [node.module]
            if node.module == "concurrent":
                modules.extend(f"concurrent.{a.name}" for a in node.names)
        else:
            continue
        for mod in modules:
            hit = _parallel_module(mod)
            if hit is not None:
                yield Violation(
                    "executor-confinement", relpath, node.lineno,
                    f"import of {mod} outside repro.service.executor; "
                    "parallel shard execution is confined to the "
                    "equivalence-tested executor layer (X1)",
                )


def _class_defs(tree: ast.Module) -> dict[str, tuple[list[str], set[str]]]:
    """Map class name -> (base names, locally defined method names)."""
    out: dict[str, tuple[list[str], set[str]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = []
        for b in node.bases:
            parts = _dotted_parts(b)
            if parts:
                bases.append(parts[-1])
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        out[node.name] = (bases, methods)
    return out


def _check_batch_pairing(
    classes: dict[str, tuple[list[str], set[str]]],
    locations: dict[str, tuple[str, int]],
) -> Iterator[Violation]:
    """P2: scalar op without its ``*_many`` counterpart on index-like classes."""

    def resolve(cls: str, seen: frozenset[str] = frozenset()) -> set[str]:
        if cls in seen or cls not in classes:
            return set()
        bases, methods = classes[cls]
        merged = set(methods)
        for b in bases:
            if b in _BATCH_PROVIDERS:
                merged.update(SCALAR_TO_BATCH.values())
            merged |= resolve(b, seen | {cls})
        return merged

    def index_like(cls: str, seen: frozenset[str] = frozenset()) -> bool:
        if cls in seen or cls not in classes:
            return False
        bases, methods = classes[cls]
        if "capabilities" in methods:
            return True
        return any(
            b in _INDEX_MARKERS or index_like(b, seen | {cls}) for b in bases
        )

    for cls in classes:
        if not index_like(cls):
            continue
        provided = resolve(cls)
        for scalar_op, batch_op in SCALAR_TO_BATCH.items():
            if scalar_op in provided and batch_op not in provided:
                path, line = locations.get(cls, ("<unknown>", 0))
                yield Violation(
                    "protocol-discipline", path, line,
                    f"index-like class {cls} defines {scalar_op}() but "
                    f"neither defines nor inherits {batch_op}() (P2)",
                )


def _registered_names(tree: ast.Module) -> list[tuple[str, int]]:
    names = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register"
        ):
            name = _str_arg(node, 0)
            if name is not None:
                names.append((name, node.lineno))
    return names


def _expected_caps_keys(tree: ast.Module) -> set[str] | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "EXPECTED_CAPS" in targets and isinstance(node.value, ast.Dict):
                return {
                    k.value
                    for k in node.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                }
    return None


# ---------------------------------------------------------------------------
# entry points


def lint_source(source: str, relpath: str = "src/<snippet>.py") -> list[Violation]:
    """Lint one source string; ``relpath`` controls rule scoping.

    The default pretends the snippet lives under ``src/`` so every rule
    class applies — this is what the known-bad-snippet self-tests use.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                "parse-error", relpath, exc.lineno or 0, f"syntax error: {exc.msg}"
            )
        ]
    aliases = _collect_aliases(tree)
    violations = list(_check_calls(tree, relpath, aliases))
    violations.extend(_check_shard_caching(tree, relpath))
    violations.extend(_check_executor_confinement(tree, relpath))
    if _in_protocol_scope(relpath):
        classes = _class_defs(tree)
        locations = {
            n.name: (relpath, n.lineno)
            for n in ast.walk(tree)
            if isinstance(n, ast.ClassDef)
        }
        violations.extend(_check_batch_pairing(classes, locations))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def _iter_py_files(root: Path, subdirs: Sequence[str]) -> Iterator[Path]:
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path


def lint_files(paths: Iterable[Path], root: Path) -> list[Violation]:
    """Lint the given files plus the cross-file protocol checks."""
    violations: list[Violation] = []
    all_classes: dict[str, tuple[list[str], set[str]]] = {}
    locations: dict[str, tuple[str, int]] = {}
    for path in paths:
        relpath = _posix(str(path.relative_to(root)))
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            violations.append(
                Violation(
                    "parse-error", relpath, exc.lineno or 0,
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        aliases = _collect_aliases(tree)
        violations.extend(_check_calls(tree, relpath, aliases))
        violations.extend(_check_shard_caching(tree, relpath))
        violations.extend(_check_executor_confinement(tree, relpath))
        if _in_protocol_scope(relpath):
            for name, (bases, methods) in _class_defs(tree).items():
                all_classes[name] = (bases, methods)
                for n in ast.walk(tree):
                    if isinstance(n, ast.ClassDef) and n.name == name:
                        locations[name] = (relpath, n.lineno)
                        break
    violations.extend(_check_batch_pairing(all_classes, locations))
    violations.extend(_check_registry_conformance(root))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def _check_registry_conformance(root: Path) -> Iterator[Violation]:
    """P3: every ``register()``-ed backend appears in the conformance suite."""
    backends_py = root / "src" / "repro" / "api" / "backends.py"
    conformance_py = root / "tests" / "test_api_conformance.py"
    if not backends_py.is_file():
        return
    registered = _registered_names(ast.parse(backends_py.read_text("utf-8")))
    if not registered:
        return
    rel_backends = _posix(str(backends_py.relative_to(root)))
    if not conformance_py.is_file():
        yield Violation(
            "protocol-discipline", rel_backends, registered[0][1],
            "backends are register()ed but tests/test_api_conformance.py "
            "is missing (P3)",
        )
        return
    expected = _expected_caps_keys(ast.parse(conformance_py.read_text("utf-8")))
    if expected is None:
        yield Violation(
            "protocol-discipline", rel_backends, registered[0][1],
            "conformance suite has no literal EXPECTED_CAPS table to "
            "cross-check registered backends against (P3)",
        )
        return
    for name, line in registered:
        if name not in expected:
            yield Violation(
                "protocol-discipline", rel_backends, line,
                f'backend "{name}" is register()ed but missing from the '
                "conformance suite's EXPECTED_CAPS (P3)",
            )


def lint_repo(root: str | Path = ".") -> list[Violation]:
    """Lint every Python file under src/, tests/, benchmarks/, examples/."""
    rootp = Path(root).resolve()
    files = list(_iter_py_files(rootp, ("src", "tests", "benchmarks", "examples")))
    return lint_files(files, rootp)
