"""Project-invariant analysis tooling.

Two complementary halves:

* :mod:`repro.analysis.lint` — reprolint, the static-analysis engine:
  per-function CFGs with dominance and a small dataflow framework drive
  ordering rules (WAL-before-apply, commit-point-last, fsync-before-
  ack), epoch/suspension discipline and resource-lifecycle checks, on
  top of the ported pattern rules (charge, protocol, seed, scalar,
  format, confinement discipline).
* :mod:`repro.analysis.sanitize` — runtime structural validators for the
  BF-Tree, B+-Tree, FD-Tree and sharded-service state, switched on with
  ``REPRO_SANITIZE=1`` or ``--sanitize``.

Neither half imports the rest of the package at module level, so both
can be wired into low-level modules without import cycles.
"""

from repro.analysis.lint import Violation, lint_files, lint_repo, lint_source
from repro.analysis.sanitize import (
    StructuralCorruption,
    check_bplus,
    check_fd,
    check_sharded,
    check_tree,
    enabled,
    force,
    maybe_check,
)

__all__ = [
    "Violation",
    "lint_files",
    "lint_repo",
    "lint_source",
    "StructuralCorruption",
    "check_bplus",
    "check_fd",
    "check_sharded",
    "check_tree",
    "enabled",
    "force",
    "maybe_check",
]
