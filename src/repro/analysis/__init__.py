"""Project-invariant analysis tooling.

Two complementary halves:

* :mod:`repro.analysis.reprolint` — AST-based static lint rules encoding
  the invariants every PR so far has hand-enforced (charge discipline,
  protocol discipline, seed discipline, numpy-scalar hygiene).
* :mod:`repro.analysis.sanitize` — runtime structural validators for the
  BF-Tree, B+-Tree, FD-Tree and sharded-service state, switched on with
  ``REPRO_SANITIZE=1`` or ``--sanitize``.

Neither half imports the rest of the package at module level, so both
can be wired into low-level modules without import cycles.
"""

from repro.analysis.reprolint import Violation, lint_repo, lint_source
from repro.analysis.sanitize import (
    StructuralCorruption,
    check_bplus,
    check_fd,
    check_sharded,
    check_tree,
    enabled,
    force,
    maybe_check,
)

__all__ = [
    "Violation",
    "lint_repo",
    "lint_source",
    "StructuralCorruption",
    "check_bplus",
    "check_fd",
    "check_sharded",
    "check_tree",
    "enabled",
    "force",
    "maybe_check",
]
