"""Experiment harness: probe runner, fpp sweeps, break-even analysis."""

from repro.harness.breakeven import (
    BreakEvenCurve,
    break_even_curves,
    break_even_table,
)
from repro.harness.experiment import (
    DEFAULT_FPP_GRID,
    ProbeStats,
    ServiceReport,
    SweepPoint,
    SweepResult,
    run_probes,
    run_service,
    sweep_bf_tree,
)
from repro.harness.results import format_series, format_table, ms, print_table, us

__all__ = [
    "BreakEvenCurve",
    "break_even_curves",
    "break_even_table",
    "DEFAULT_FPP_GRID",
    "ProbeStats",
    "ServiceReport",
    "SweepPoint",
    "SweepResult",
    "run_probes",
    "run_service",
    "sweep_bf_tree",
    "format_series",
    "format_table",
    "ms",
    "print_table",
    "us",
]
