"""Break-even analysis (paper Figures 6 and 9).

For each storage configuration, the paper plots the BF-Tree's
*normalized performance* (B+-Tree latency / BF-Tree latency) against its
*capacity gain* (B+-Tree pages / BF-Tree pages) as fpp sweeps.  The
break-even point is the largest capacity gain at which the BF-Tree still
matches the B+-Tree (normalized performance >= 1).  The paper's headline:
break-evens shift toward larger capacity gains as the storage gets
slower, because extra CPU and false reads amortize against expensive
index I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiment import SweepResult


@dataclass(frozen=True)
class BreakEvenCurve:
    """Normalized performance vs capacity gain for one storage config."""

    config: str
    capacity_gains: tuple[float, ...]
    normalized_performance: tuple[float, ...]

    def break_even_gain(self, threshold: float = 1.0) -> float | None:
        """Largest capacity gain with normalized performance >= threshold.

        Interpolates linearly between neighbouring sweep points when the
        curve crosses the threshold between samples; returns ``None`` when
        the BF-Tree never reaches it on this configuration.  When the
        index device is memory, the BF-Tree approaches the B+-Tree
        asymptotically from below, so parity-style thresholds (e.g. 0.98,
        "matches within 2%") are the useful reading — the paper's Figure 6
        crossings for the in-memory configurations are parity points.
        """
        best: float | None = None
        pairs = sorted(zip(self.capacity_gains, self.normalized_performance))
        for i, (gain, perf) in enumerate(pairs):
            if perf >= threshold:
                best = gain
                # Interpolate toward the next (larger-gain) sample if that
                # one dips below the threshold.
                if i + 1 < len(pairs):
                    next_gain, next_perf = pairs[i + 1]
                    if next_perf < threshold and next_perf != perf:
                        frac = (perf - threshold) / (perf - next_perf)
                        best = gain + frac * (next_gain - gain)
        return best


def break_even_curves(sweep: SweepResult) -> list[BreakEvenCurve]:
    """One curve per storage configuration from a Figure-5/8 sweep."""
    curves = []
    for config in sweep.configs:
        gains = []
        perfs = []
        for fpp in sweep.fpps:
            gains.append(sweep.capacity_gain(fpp))
            perfs.append(sweep.normalized_performance(fpp, config))
        curves.append(
            BreakEvenCurve(
                config=config,
                capacity_gains=tuple(gains),
                normalized_performance=tuple(perfs),
            )
        )
    return curves


def break_even_table(sweep: SweepResult, threshold: float = 1.0
                     ) -> dict[str, float | None]:
    """Config name -> break-even capacity gain (the Fig 6/9 crossings)."""
    return {
        c.config: c.break_even_gain(threshold) for c in break_even_curves(sweep)
    }
