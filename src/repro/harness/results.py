"""Plain-text rendering of experiment output (paper-style tables/series).

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that output aligned and consistent across benches.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                title: str | None = None) -> None:
    print(format_table(headers, rows, title))
    print()


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one figure line as ``name: (x, y) (x, y) ...``."""
    pairs = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def us(seconds: float) -> float:
    """Seconds -> microseconds (figures report response time in us/ms)."""
    return seconds * 1e6


def ms(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1e3
