"""Experiment runner: measured index probes over the five storage configs.

This is the machinery behind every measured figure/table of Section 6:
build an index once per parameterization, bind it to a fresh
:class:`~repro.storage.config.StorageStack` per storage configuration,
replay a :class:`~repro.workloads.queries.ProbeSet`, and report average
simulated latency plus I/O counters.  Warm-cache mode prefaults the
index's internal nodes, mirroring the paper's §6.2 "warm caches"
experiments where only leaf accesses cause I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api.results import as_scalar
from repro.baselines.bptree import BPlusTree
from repro.core.bf_tree import BFTree, BFTreeConfig
from repro.service.router import Router
from repro.service.sharded import ShardedIndex
from repro.service.stats import LatencySummary, ServiceStats
from repro.storage.config import FIVE_CONFIGS, StorageConfig, build_stack
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.workloads.mixed import MixedTrace
from repro.workloads.queries import ProbeSet


@dataclass
class ProbeStats:
    """Aggregate outcome of replaying one probe set on one index."""

    n_probes: int
    hits: int
    avg_latency: float              # simulated seconds per probe
    false_reads_per_search: float
    data_reads_per_search: float
    index_reads_per_search: float
    total_matches: int
    io: IOStats = field(default_factory=IOStats)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.n_probes if self.n_probes else 0.0


def run_probes(
    index,
    probes: ProbeSet | Sequence,
    config: StorageConfig | str,
    warm: bool = False,
    batch: bool = False,
) -> ProbeStats:
    """Replay ``probes`` against ``index`` on a fresh storage stack.

    Each probe starts with the device heads reset, so its first data
    access is charged as random — the cold per-query behaviour of the
    paper's O_DIRECT runs.  ``warm`` prefaults internal index nodes.

    ``batch=True`` replays the whole probe set through the index's
    ``search_many``.  The Index protocol (:mod:`repro.api`) guarantees
    it on every backend: a vectorized batch-probe engine where one
    exists (BF-Tree, B+-Tree), the bit-identical generic scalar-loop
    fallback everywhere else.  Simulated results (per-probe outcomes,
    IOStats, clock charges) are identical to the per-key loop; only the
    interpreter-level wall-clock changes.  Every charge on the search
    path declares its access pattern explicitly, so skipping the
    per-probe head reset changes nothing.
    """
    keys = probes.keys if isinstance(probes, ProbeSet) else np.asarray(probes)
    stack = build_stack(config)
    index.bind(stack, warm=warm)
    try:
        hits = 0
        matches = 0
        total_latency = 0.0
        before = stack.stats.snapshot()
        if batch:
            stack.index_device.reset_head()
            stack.data_device.reset_head()
            start = stack.clock.now()
            results = index.search_many(keys)
            total_latency = stack.clock.now() - start
            for result in results:
                if result.found:
                    hits += 1
                    matches += result.matches
        else:
            for key in keys:
                stack.index_device.reset_head()
                stack.data_device.reset_head()
                start = stack.clock.now()
                result = index.search(
                    as_scalar(key)
                )
                total_latency += stack.clock.now() - start
                if result.found:
                    hits += 1
                    matches += result.matches
        io = stack.stats.diff(before)
    finally:
        index.unbind()
    n = max(1, len(keys))
    return ProbeStats(
        n_probes=len(keys),
        hits=hits,
        avg_latency=total_latency / n,
        false_reads_per_search=io.false_reads / n,
        data_reads_per_search=io.data_reads / n,
        index_reads_per_search=io.index_reads / n,
        total_matches=matches,
        io=io,
    )


@dataclass
class SweepPoint:
    """One (fpp, storage config) cell of a Figure-5/8-style sweep."""

    fpp: float
    config: str
    warm: bool
    avg_latency: float
    false_reads_per_search: float
    size_pages: int
    height: int


@dataclass
class SweepResult:
    """A full fpp x storage-config sweep, plus the baseline reference."""

    points: list[SweepPoint]
    baseline_latency: dict[str, float]       # config name -> B+-Tree latency
    baseline_size_pages: int
    baseline_height: int

    def latency(self, fpp: float, config: str) -> float:
        for point in self.points:
            if point.fpp == fpp and point.config == config:
                return point.avg_latency
        raise KeyError((fpp, config))

    def normalized_performance(self, fpp: float, config: str) -> float:
        """B+-Tree latency / BF-Tree latency (>1 means BF-Tree wins)."""
        return self.baseline_latency[config] / self.latency(fpp, config)

    def capacity_gain(self, fpp: float) -> float:
        """B+-Tree pages / BF-Tree pages at this fpp."""
        for point in self.points:
            if point.fpp == fpp:
                return self.baseline_size_pages / point.size_pages
        raise KeyError(fpp)

    @property
    def fpps(self) -> list[float]:
        seen: list[float] = []
        for point in self.points:
            if point.fpp not in seen:
                seen.append(point.fpp)
        return seen

    @property
    def configs(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.config not in seen:
                seen.append(point.config)
        return seen


def sweep_bf_tree(
    relation: Relation,
    column: str,
    probes: ProbeSet,
    fpps: Iterable[float],
    configs: Iterable[StorageConfig] = FIVE_CONFIGS,
    unique: bool = False,
    warm: bool = False,
    tree_factory: Callable[[float], BFTree] | None = None,
) -> SweepResult:
    """Measure BF-Trees across an fpp grid and storage configs (Fig 5/8).

    The B+-Tree baseline is measured once per config with the same probe
    set; its latency and size populate the normalized views used by the
    break-even analysis.
    """
    configs = list(configs)
    baseline = BPlusTree.bulk_load(relation, column, unique=unique)
    baseline_latency = {
        cfg.name: run_probes(baseline, probes, cfg, warm=warm).avg_latency
        for cfg in configs
    }
    points: list[SweepPoint] = []
    for fpp in fpps:
        if tree_factory is not None:
            tree = tree_factory(fpp)
        else:
            tree = BFTree.bulk_load(
                relation, column, BFTreeConfig(fpp=fpp), unique=unique
            )
        for cfg in configs:
            stats = run_probes(tree, probes, cfg, warm=warm)
            points.append(
                SweepPoint(
                    fpp=fpp,
                    config=cfg.name,
                    warm=warm,
                    avg_latency=stats.avg_latency,
                    false_reads_per_search=stats.false_reads_per_search,
                    size_pages=tree.size_pages,
                    height=tree.height,
                )
            )
    return SweepResult(
        points=points,
        baseline_latency=baseline_latency,
        baseline_size_pages=baseline.size_pages,
        baseline_height=baseline.height,
    )


DEFAULT_FPP_GRID = (0.2, 0.1, 0.02, 2e-3, 2e-4, 2e-6, 1e-8, 1e-12, 1e-15)
"""The fpp sweep of the paper's Figures 5 and 8 (0.2 down to 1e-15)."""


@dataclass
class ServiceReport:
    """Outcome of replaying one mixed trace through a sharded service."""

    n_ops: int
    n_shards: int
    config: str
    mix: str
    skew: str
    batch: bool
    threads: int | None
    stats: ServiceStats
    write_batch: bool = True
    scan_batch: bool = True
    executor: str = "serial"
    workers: int | None = None
    results: list = field(repr=False, default_factory=list)

    @property
    def io(self) -> IOStats:
        return self.stats.io

    def latency(self, op: str | None = None) -> LatencySummary:
        return self.stats.latency_summary(op)

    def to_dict(self) -> dict:
        """JSON-able report (the serve-bench / scaling-benchmark payload)."""
        return {
            "config": self.config,
            "mix": self.mix,
            "skew": self.skew,
            "batch": self.batch,
            "write_batch": self.write_batch,
            "scan_batch": self.scan_batch,
            "threads": self.threads,
            "executor": self.executor,
            "workers": self.workers,
            **self.stats.to_dict(),
        }


def run_service(
    service: ShardedIndex,
    trace: MixedTrace,
    config: StorageConfig | str,
    warm: bool = False,
    batch: bool = True,
    batch_size: int = 512,
    threads: int | None = None,
    write_batch: bool | None = None,
    scan_batch: bool | None = None,
    executor: str | None = None,
    workers: int | None = None,
) -> ServiceReport:
    """Replay a mixed workload trace through a sharded index service.

    Binds every shard to a fresh storage stack of ``config``, routes the
    trace through a :class:`~repro.service.router.Router` (reads batched
    through the vectorized probe engine unless ``batch=False``; inserts
    batched through the vectorized write engine; scans batched with the
    reads through the vectorized scan engine — ``write_batch`` and
    ``scan_batch`` default to following ``batch``), and returns a
    :class:`ServiceReport` whose :class:`ServiceStats` carries merged
    IOStats, per-op latency percentiles, simulated makespan throughput
    (shards progress in parallel, so the service finishes with its
    slowest shard) and replay wall time.

    ``executor`` picks the execution model — ``"serial"``, ``"thread"``
    (GIL-bound; ``threads`` caps the pool) or ``"process"`` (one forked
    worker per shard, capped at ``workers``; the one that scales with
    cores).  ``None`` keeps the historical behavior of following
    ``threads``.  All batch modes and executors are bit-identical to
    per-op serial dispatch in every simulated number.
    """
    service.bind(config, warm=warm)
    router = Router(service, batch=batch, batch_size=batch_size,
                    threads=threads, write_batch=write_batch,
                    scan_batch=scan_batch, executor=executor,
                    workers=workers)
    try:
        results, stats = router.replay(trace)
    finally:
        router.close()
        service.unbind()
    return ServiceReport(
        n_ops=len(trace),
        n_shards=service.n_shards,
        config=config if isinstance(config, str) else config.name,
        mix=trace.mix.name,
        skew=trace.skew,
        batch=batch,
        write_batch=router.write_batch,
        scan_batch=router.scan_batch,
        threads=threads,
        executor=router.executor.name,
        workers=workers,
        stats=stats,
        results=results,
    )
