"""Simulated storage devices with a latency cost model.

The paper's testbed uses a Seagate 10K RPM HDD (106 MB/s sequential for
4 KB pages) and an OCZ Deneva 2C SATA SSD (550 MB/s sequential, up to
80 kIOPS random reads), plus main memory.  We model each medium as a
:class:`DeviceProfile` with four per-page latencies (random/sequential x
read/write) and a :class:`Device` that charges a shared
:class:`~repro.storage.clock.SimulatedClock` on every access and updates a
shared :class:`~repro.storage.iostats.IOStats`.

Sequential detection: a read is charged the sequential latency when its
page id immediately follows the device's previously accessed page id, or
when the caller explicitly declares it sequential (the BF-Tree hands the
controller a sorted list of candidate pages, cf. Eq. 13's ``seqDtIO``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.storage.clock import SimulatedClock
from repro.storage.iostats import IOStats

PAGE_SIZE = 4096
"""Bytes per page, fixed to 4 KB throughout the paper's evaluation."""


def classify_read_runs(runs: Iterable[tuple[int, int]],
                       prev_pid: int | None = None
                       ) -> tuple[int, int, int | None]:
    """Eq. 13 access-pattern split for planned ``(first_pid, npages)`` runs.

    Returns ``(n_random, n_sequential, last_pid)`` under the rule the
    scalar scan loops charge page by page: a page is sequential iff it
    immediately follows the previously read page, so each disjoint run
    pays one random positioning and the rest ride sequentially.
    ``prev_pid`` carries the position across calls (consecutive leaves
    whose runs are disk-contiguous continue one sequential stream).
    The batch scan engines feed the result to :meth:`Device.read_batch`;
    this helper is the single definition of the split those engines must
    share with the scalar loops.
    """
    n_random = 0
    total = 0
    for first, npages in runs:
        if prev_pid is None or first != prev_pid + 1:
            n_random += 1
        prev_pid = first + npages - 1
        total += npages
    return n_random, total - n_random, prev_pid


class Medium(Enum):
    """Kind of storage medium a device profile describes."""

    MEMORY = "memory"
    SSD = "ssd"
    HDD = "hdd"


@dataclass(frozen=True)
class DeviceProfile:
    """Latency description of one storage medium (seconds per 4 KB page)."""

    name: str
    medium: Medium
    random_read: float
    seq_read: float
    random_write: float
    seq_write: float

    def read_latency(self, sequential: bool) -> float:
        return self.seq_read if sequential else self.random_read

    def write_latency(self, sequential: bool) -> float:
        return self.seq_write if sequential else self.random_write


# Profiles calibrated to the paper's hardware (Section 6.1).
#
# HDD: Seagate 10K RPM.  Sequential 106 MB/s => 4096 / 106e6 ~= 38.6 us per
# page.  Random read = seek + half-rotation ~= 5 ms (10K RPM -> 3 ms
# rotational average + ~2 ms short seek).
# SSD: OCZ Deneva 2C.  The advertised 80 kIOPS hold at high queue depth;
# the paper's probes are synchronous O_DIRECT reads, whose QD1 latency on
# a SATA SSD of that generation is ~90 us per 4 KB page.  Sequential
# O_DIRECT reads (no readahead) land around 25 us.  Writes are slower.
# MEMORY: ~50 ns per cacheline-resident page touch; page "reads" from DRAM
# cost roughly a memcpy of 4 KB (~0.4 us) but never count as I/O to disk.
HDD_PROFILE = DeviceProfile(
    name="seagate-10k-hdd",
    medium=Medium.HDD,
    random_read=5.0e-3,
    seq_read=38.6e-6,
    random_write=5.0e-3,
    seq_write=38.6e-6,
)

SSD_PROFILE = DeviceProfile(
    name="ocz-deneva2-ssd",
    medium=Medium.SSD,
    random_read=90.0e-6,
    seq_read=25.0e-6,
    random_write=120.0e-6,
    seq_write=30.0e-6,
)

MEMORY_PROFILE = DeviceProfile(
    name="dram",
    medium=Medium.MEMORY,
    random_read=0.4e-6,
    seq_read=0.4e-6,
    random_write=0.4e-6,
    seq_write=0.4e-6,
)

PROFILES = {
    Medium.HDD: HDD_PROFILE,
    Medium.SSD: SSD_PROFILE,
    Medium.MEMORY: MEMORY_PROFILE,
}


class Device:
    """One storage device charging a simulated clock per page access.

    ``role`` selects which IOStats counters this device updates: ``"index"``
    for the device holding the index and ``"data"`` for the device holding
    the main file.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        clock: SimulatedClock,
        stats: IOStats,
        role: str = "data",
    ) -> None:
        if role not in ("index", "data"):
            raise ValueError(f"role must be 'index' or 'data', got {role!r}")
        self.profile = profile
        self.clock = clock
        self.stats = stats
        self.role = role
        self._last_page: int | None = None

    @property
    def medium(self) -> Medium:
        return self.profile.medium

    @property
    def is_memory(self) -> bool:
        return self.profile.medium is Medium.MEMORY

    def read_page(self, page_id: int, sequential: bool | None = None) -> None:
        """Charge the cost of reading one page.

        ``sequential`` forces the access pattern; when ``None`` the device
        infers it from adjacency with the previously accessed page.
        """
        if sequential is None:
            sequential = self._last_page is not None and page_id == self._last_page + 1
        self._last_page = page_id
        self.clock.advance(self.profile.read_latency(sequential))
        self._count(read=True, sequential=sequential)

    def read_run(self, first_page: int, npages: int) -> None:
        """Charge one random positioning plus ``npages - 1`` sequential reads."""
        if npages <= 0:
            return
        self.read_page(first_page, sequential=False)
        for offset in range(1, npages):
            self.read_page(first_page + offset, sequential=True)

    def read_batch(self, n_random: int, n_sequential: int,
                   last_page: int | None = None) -> None:
        """Charge ``n_random`` random plus ``n_sequential`` sequential page
        reads in one clock advance.

        This is the aggregate of per-page :meth:`read_page` calls with
        explicit ``sequential`` flags: the IOStats counters are identical,
        and the clock total equals the per-page loop up to float summation
        order (one multiply-add instead of N additions).  The batch scan
        engine charges each scan's planned page runs through this.
        ``last_page`` records the head position after the batch, as the
        last per-page call would have.
        """
        if n_random < 0 or n_sequential < 0:
            raise ValueError("read counts must be >= 0")
        if n_random == 0 and n_sequential == 0:
            return
        self.clock.advance(n_random * self.profile.random_read
                           + n_sequential * self.profile.seq_read)
        if self.role == "index":
            self.stats.index_random_reads += n_random
            self.stats.index_seq_reads += n_sequential
        else:
            self.stats.data_random_reads += n_random
            self.stats.data_seq_reads += n_sequential
        if last_page is not None:
            self._last_page = last_page

    def write_page(self, page_id: int, sequential: bool | None = None) -> None:
        """Charge the cost of writing one page."""
        if sequential is None:
            sequential = self._last_page is not None and page_id == self._last_page + 1
        self._last_page = page_id
        self.clock.advance(self.profile.write_latency(sequential))
        if self.role == "index":
            self.stats.index_writes += 1
        else:
            self.stats.data_writes += 1

    def reset_head(self) -> None:
        """Forget positional state (next access will be charged as random)."""
        self._last_page = None

    def _count(self, read: bool, sequential: bool) -> None:
        if not read:  # pragma: no cover - writes counted inline
            return
        if self.role == "index":
            if sequential:
                self.stats.index_seq_reads += 1
            else:
                self.stats.index_random_reads += 1
        else:
            if sequential:
                self.stats.data_seq_reads += 1
            else:
                self.stats.data_random_reads += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"Device({self.profile.name}, role={self.role})"
