"""I/O accounting: page-read/write counters shared across a storage stack.

Every experiment in the paper is explained through counts of random versus
sequential page accesses (e.g. Table 3 reports *false reads per search*).
:class:`IOStats` is the single place those counts live.  Devices update it
on every access; the harness snapshots and diffs it around each probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class IOStats:
    """Mutable counter block for one storage stack.

    Counters are split by device role (``index`` vs ``data``) because the
    paper places the index and the main data on different media, and by
    access pattern (random vs sequential), because the two have vastly
    different cost on HDD.
    """

    index_random_reads: int = 0
    index_seq_reads: int = 0
    index_writes: int = 0
    data_random_reads: int = 0
    data_seq_reads: int = 0
    data_writes: int = 0
    false_reads: int = 0          # data pages fetched due to BF false positives
    bloom_probes: int = 0
    key_comparisons: int = 0
    tuples_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "IOStats":
        """Return an immutable-by-convention copy of the current counters."""
        return IOStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_reads(self) -> int:
        """All page reads, both devices, both access patterns."""
        return (
            self.index_random_reads
            + self.index_seq_reads
            + self.data_random_reads
            + self.data_seq_reads
        )

    @property
    def data_reads(self) -> int:
        """Page reads against the data device only."""
        return self.data_random_reads + self.data_seq_reads

    @property
    def index_reads(self) -> int:
        """Page reads against the index device only."""
        return self.index_random_reads + self.index_seq_reads

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass
class ProbeResult:
    """Outcome of a single measured index probe."""

    found: bool
    latency: float                # simulated seconds
    io: IOStats = field(default_factory=IOStats)
    matches: int = 0              # tuples returned

    @property
    def false_reads(self) -> int:
        return self.io.false_reads
