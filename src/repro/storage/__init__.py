"""Simulated storage substrate: clock, devices, relations, buffer pool.

This package replaces the paper's physical testbed (Seagate 10K HDD, OCZ
Deneva SSD, 48 GB DRAM) with a deterministic simulator.  See DESIGN.md §3
for the substitution argument.
"""

from repro.storage.buffer_pool import BufferPool
from repro.storage.clock import SimulatedClock
from repro.storage.config import (
    CONFIGS_BY_NAME,
    FIVE_CONFIGS,
    HDD_HDD,
    MEM_HDD,
    MEM_SSD,
    SSD_HDD,
    SSD_SSD,
    StorageConfig,
    StorageStack,
    build_stack,
)
from repro.storage.device import (
    HDD_PROFILE,
    MEMORY_PROFILE,
    PAGE_SIZE,
    PROFILES,
    SSD_PROFILE,
    Device,
    DeviceProfile,
    Medium,
)
from repro.storage.iostats import IOStats, ProbeResult
from repro.storage.relation import PageView, Relation

__all__ = [
    "BufferPool",
    "SimulatedClock",
    "CONFIGS_BY_NAME",
    "FIVE_CONFIGS",
    "HDD_HDD",
    "MEM_HDD",
    "MEM_SSD",
    "SSD_HDD",
    "SSD_SSD",
    "StorageConfig",
    "StorageStack",
    "build_stack",
    "HDD_PROFILE",
    "MEMORY_PROFILE",
    "PAGE_SIZE",
    "PROFILES",
    "SSD_PROFILE",
    "Device",
    "DeviceProfile",
    "Medium",
    "IOStats",
    "ProbeResult",
    "PageView",
    "Relation",
]
