"""Simulated clock: deterministic virtual time for the storage stack.

The paper's evaluation reports wall-clock response times measured on real
HDD/SSD hardware.  Our substrate is a simulator, so every component that
would spend time on a real machine (device I/O, Bloom-filter probes, key
comparisons) instead *charges* a shared :class:`SimulatedClock`.  Experiments
read the clock before and after an operation to obtain its simulated
latency.  Because the clock is deterministic, experiment output is exactly
reproducible run-to-run.
"""

from __future__ import annotations


class SimulatedClock:
    """Accumulates virtual elapsed time, in seconds.

    The clock only moves forward.  Components call :meth:`advance` with the
    cost of the work they just performed; measurement code brackets an
    operation with :meth:`now` calls, or uses :meth:`measure`.
    """

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        """Return current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot move clock backwards ({seconds} s)")
        self._now += seconds

    def reset(self) -> None:
        """Rewind to time zero.  Only meant for experiment setup."""
        self._now = 0.0

    def measure(self) -> "ClockSpan":
        """Return a context manager measuring elapsed virtual time.

        Example::

            span = clock.measure()
            with span:
                index.search(key)
            latency = span.elapsed
        """
        return ClockSpan(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self._now:.9f}s)"


class ClockSpan:
    """Context manager capturing elapsed virtual time on a clock."""

    __slots__ = ("_clock", "_start", "elapsed")

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "ClockSpan":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = self._clock.now() - self._start


# CPU cost constants (seconds).  These are small relative to any device I/O
# and only matter for the in-memory storage configurations, where the paper
# compares BF-Tree probes against hash-index and memory-resident B+-Tree
# probes.  Values approximate a ~2.7 GHz core of the paper's testbed.
CPU_KEY_COMPARE = 20e-9          # one key comparison during binary search
# Probing one Bloom filter costs k hashed bit reads, but a negative test
# exits after ~2 reads on average (each set with probability ~fill), so
# the expected per-filter cost is a couple of cache-resident reads.
CPU_BLOOM_PROBE = 25e-9
CPU_BLOOM_INSERT = 60e-9         # insert one key into a Bloom filter
CPU_HASH_PROBE = 250e-9          # one hash-table lookup
CPU_TUPLE_SCAN = 25e-9           # inspect one tuple inside a fetched page
