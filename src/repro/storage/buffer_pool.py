"""LRU buffer pool over a simulated device.

The paper evaluates both *cold caches* (data accessed with O_DIRECT |
O_SYNC, i.e. every page access hits the device) and *warm caches* (the
index's internal nodes are memory-resident, so only leaf accesses cause
I/O).  :class:`BufferPool` models the cache: a page access that hits the
pool costs a DRAM touch; a miss is charged to the underlying device and
the page is cached, evicting the least recently used entry when the pool
is full.

Indexes access their node storage through a :class:`BufferPool` so that
the warm/cold distinction is a property of the experiment, not of the
index code.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.storage.device import MEMORY_PROFILE, Device


class BufferPool:
    """Fixed-capacity LRU page cache in front of a :class:`Device`.

    ``capacity_pages = 0`` disables caching entirely (the paper's cold-cache
    O_DIRECT mode).  ``capacity_pages = None`` means unbounded (everything
    pinned once touched).
    """

    def __init__(
        self,
        device: Device,
        capacity_pages: int | None = 0,
        admit_on_miss: bool = True,
    ) -> None:
        self.device = device
        self.capacity = capacity_pages
        self.admit_on_miss = admit_on_miss
        self._pages: OrderedDict[int, None] = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.capacity is None or self.capacity > 0

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    def read_page(self, page_id: int, sequential: bool | None = None) -> bool:
        """Access ``page_id``; return True on a cache hit.

        A hit costs one DRAM page touch.  A miss charges the device and
        inserts the page (evicting LRU if needed).  A *disabled* pool
        (``capacity_pages=0``, the cold-cache O_DIRECT mode) counts
        neither hits nor misses: there is no cache, so charging
        ``cache_misses`` would deflate hit-rate metrics computed over
        cold-cache runs.
        """
        if self.enabled:
            if page_id in self._pages:
                self._pages.move_to_end(page_id)
                self.device.stats.cache_hits += 1
                self.device.clock.advance(MEMORY_PROFILE.random_read)
                return True
            self.device.stats.cache_misses += 1
        self.device.read_page(page_id, sequential=sequential)
        if self.admit_on_miss:
            self._admit(page_id)
        return False

    def prefault(self, page_ids: Iterable[int]) -> None:
        """Populate the pool without charging any I/O (warm-cache setup)."""
        if not self.enabled:
            return
        for page_id in page_ids:
            self._admit(page_id)

    def invalidate(self, page_id: int) -> None:
        """Drop ``page_id`` from the pool if present (after a write)."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (back to cold caches)."""
        self._pages.clear()

    # ------------------------------------------------------------------
    def _admit(self, page_id: int) -> None:
        if not self.enabled:
            return
        self._pages[page_id] = None
        self._pages.move_to_end(page_id)
        if self.capacity is not None:
            while len(self._pages) > self.capacity:
                self._pages.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"BufferPool(cached={len(self._pages)}, capacity={cap})"
