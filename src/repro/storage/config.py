"""The paper's five storage configurations (index placement / data placement).

Section 6 evaluates every index under five (index, data) device pairs:

=============  =============  =============
configuration  index device   data device
=============  =============  =============
``MEM/SSD``    main memory    SSD
``SSD/SSD``    SSD            SSD
``MEM/HDD``    main memory    HDD
``SSD/HDD``    SSD            HDD
``HDD/HDD``    HDD            HDD
=============  =============  =============

:class:`StorageStack` wires a shared clock and IOStats to one index device
and one data device, mirroring that table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.clock import SimulatedClock
from repro.storage.device import PROFILES, Device, Medium
from repro.storage.iostats import IOStats


@dataclass(frozen=True)
class StorageConfig:
    """Named (index medium, data medium) pair."""

    name: str
    index_medium: Medium
    data_medium: Medium

    @property
    def index_in_memory(self) -> bool:
        return self.index_medium is Medium.MEMORY


MEM_SSD = StorageConfig("MEM/SSD", Medium.MEMORY, Medium.SSD)
SSD_SSD = StorageConfig("SSD/SSD", Medium.SSD, Medium.SSD)
MEM_HDD = StorageConfig("MEM/HDD", Medium.MEMORY, Medium.HDD)
SSD_HDD = StorageConfig("SSD/HDD", Medium.SSD, Medium.HDD)
HDD_HDD = StorageConfig("HDD/HDD", Medium.HDD, Medium.HDD)

FIVE_CONFIGS: tuple[StorageConfig, ...] = (
    MEM_SSD,
    SSD_SSD,
    MEM_HDD,
    SSD_HDD,
    HDD_HDD,
)
"""All five configurations, in the order the paper's figures list them."""

CONFIGS_BY_NAME = {config.name: config for config in FIVE_CONFIGS}


@dataclass
class StorageStack:
    """A concrete wiring of one configuration: clock, stats, two devices."""

    config: StorageConfig
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    stats: IOStats = field(default_factory=IOStats)
    index_device: Device = field(init=False)
    data_device: Device = field(init=False)

    def __post_init__(self) -> None:
        self.index_device = Device(
            PROFILES[self.config.index_medium], self.clock, self.stats, role="index"
        )
        self.data_device = Device(
            PROFILES[self.config.data_medium], self.clock, self.stats, role="data"
        )

    def reset(self) -> None:
        """Zero the clock and counters, forget device head positions."""
        self.clock.reset()
        self.stats.reset()
        self.index_device.reset_head()
        self.data_device.reset_head()


def build_stack(config: StorageConfig | str) -> StorageStack:
    """Create a fresh :class:`StorageStack` for ``config`` (or its name)."""
    if isinstance(config, str):
        try:
            config = CONFIGS_BY_NAME[config]
        except KeyError:
            valid = ", ".join(CONFIGS_BY_NAME)
            raise ValueError(f"unknown config {config!r}; valid: {valid}") from None
    return StorageStack(config=config)
