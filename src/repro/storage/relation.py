"""Page-based relation: the main data file the indexes point into.

A :class:`Relation` holds fixed-size tuples in 4 KB pages, mirroring the
paper's synthetic relation R (256-byte tuples) and the TPCH lineitem table
(200-byte tuples).  Column values are stored as NumPy arrays; the byte
layout is never materialized, but all geometry (tuples per page, page
count) follows the declared ``tuple_size`` so that index size formulas and
I/O counts match the paper.

Reading a page charges the relation's data :class:`Device`; the returned
:class:`PageView` exposes the column slices for that page so that callers
can scan tuples (charging CPU cost per tuple examined).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.storage.clock import CPU_TUPLE_SCAN
from repro.storage.device import PAGE_SIZE, Device


@dataclass(frozen=True)
class PageView:
    """Tuples of one data page, as column slices."""

    page_id: int
    first_tid: int
    columns: Mapping[str, np.ndarray]

    def __len__(self) -> int:
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


class Relation:
    """Fixed-size-tuple heap file, ordered as generated.

    Parameters
    ----------
    columns:
        Mapping of column name to a 1-D array; all columns must have equal
        length.  Order of tuples is the physical order on disk.
    tuple_size:
        Declared bytes per tuple (drives tuples-per-page geometry).
    name:
        Human-readable relation name (used in reports).
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        tuple_size: int,
        name: str = "R",
    ) -> None:
        if not columns:
            raise ValueError("relation needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {lengths}")
        if tuple_size <= 0 or tuple_size > PAGE_SIZE:
            raise ValueError(f"tuple_size must be in (0, {PAGE_SIZE}]")
        self.name = name
        self.columns = {k: np.asarray(v) for k, v in columns.items()}
        self.tuple_size = tuple_size
        self.ntuples = lengths.pop()
        self.tuples_per_page = PAGE_SIZE // tuple_size
        if self.tuples_per_page == 0:
            raise ValueError("tuple larger than a page")
        self.npages = -(-self.ntuples // self.tuples_per_page)  # ceil div

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def page_of(self, tid: int) -> int:
        """Page id holding tuple ``tid``."""
        if not 0 <= tid < self.ntuples:
            raise IndexError(f"tuple id {tid} out of range [0, {self.ntuples})")
        return tid // self.tuples_per_page

    def page_bounds(self, page_id: int) -> tuple[int, int]:
        """Return [first_tid, last_tid_exclusive) for ``page_id``."""
        if not 0 <= page_id < self.npages:
            raise IndexError(f"page id {page_id} out of range [0, {self.npages})")
        first = page_id * self.tuples_per_page
        last = min(first + self.tuples_per_page, self.ntuples)
        return first, last

    @property
    def size_bytes(self) -> int:
        """Declared on-disk size of the relation."""
        return self.npages * PAGE_SIZE

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def fetch_page(
        self, page_id: int, device: Device, sequential: bool | None = None
    ) -> PageView:
        """Read one page through ``device`` (charging I/O) and return it."""
        device.read_page(page_id, sequential=sequential)
        return self.view_page(page_id)

    def view_page(self, page_id: int) -> PageView:
        """Return the page contents *without* charging any I/O.

        Used by index builders that already accounted for the scan, and by
        tests.
        """
        first, last = self.page_bounds(page_id)
        return PageView(
            page_id=page_id,
            first_tid=first,
            columns={k: v[first:last] for k, v in self.columns.items()},
        )

    def scan_pages(self, device: Device) -> Iterator[PageView]:
        """Full sequential scan, charging one sequential read per page."""
        for page_id in range(self.npages):
            yield self.fetch_page(page_id, device, sequential=page_id > 0)

    def scan_page_for_key(
        self,
        page: PageView,
        column: str,
        key: int,
        device: Device,
        stop_early: bool = True,
    ) -> int:
        """Scan a fetched page for ``key`` in ``column``; return match count.

        Charges CPU per tuple examined and updates ``tuples_scanned``.  With
        ``stop_early`` (primary-key semantics) scanning stops at the first
        tuple whose key exceeds the probe key, mirroring the paper's probe
        behaviour for ordered data ("as long as the key of the current tuple
        is smaller than the search key").
        """
        values = page.column(column)
        matches = 0
        examined = 0
        for value in values:
            examined += 1
            if value == key:
                matches += 1
            elif stop_early and value > key:
                break
        device.stats.tuples_scanned += examined
        device.clock.advance(examined * CPU_TUPLE_SCAN)
        return matches

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Relation({self.name!r}, ntuples={self.ntuples}, "
            f"tuple_size={self.tuple_size}, npages={self.npages})"
        )
