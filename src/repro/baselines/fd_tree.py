"""FD-Tree baseline (Li et al., PVLDB 2010) — flash-aware tree index.

The FD-Tree keeps a small *head tree* in memory and a cascade of sorted
*levels* L1..Ln on flash, each ``size_ratio`` times larger than the one
above.  Fence pointers (fractional cascading) let a point search read
exactly one page per level; inserts go to the head tree and are merged
downward in bulk, converting random writes into sequential ones — the
logarithmic method.

The BF-Tree paper uses FD-Tree two ways: analytically in §5 (same size as
a vanilla B+-Tree, competitive point-probe latency when the optimal
``k`` is chosen) and experimentally in §6.5 against the smart-home
dataset with warm caches.  This is a working implementation: bulk load,
point search with one page read per non-empty level, inserts with
cascading merges, plus the size-ratio chooser from the FD-Tree paper's
cost model.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.sanitize import maybe_check
from repro.api.protocol import Capabilities, IndexBackend
from repro.api.results import DeleteOutcome, SearchResult
from repro.storage.buffer_pool import BufferPool
from repro.storage.clock import CPU_KEY_COMPARE
from repro.storage.config import StorageStack
from repro.storage.device import PAGE_SIZE, Device
from repro.storage.relation import Relation


@dataclass(frozen=True)
class FDTreeConfig:
    """FD-Tree tuning parameters."""

    key_size: int = 8
    ptr_size: int = 8
    page_size: int = PAGE_SIZE
    size_ratio: int = 16          # k: growth factor between adjacent levels
    head_pages: int = 1           # in-memory head tree capacity, in pages
    #: The original FD-Tree is a key-value index: one entry per tuple.
    #: ``clustered=True`` instead stores one entry per distinct key (first
    #: occurrence) and scans forward through consecutive duplicates, like
    #: the clustered B+-Tree baseline.  The paper benchmarks the original
    #: code (§6.5), so per-tuple is the default.
    clustered: bool = False

    @property
    def entries_per_page(self) -> int:
        return self.page_size // (self.key_size + self.ptr_size)

    @staticmethod
    def choose_size_ratio(n_entries: int, update_fraction: float = 0.1) -> int:
        """FD-Tree's cost-model flavour of picking k.

        Searches favour a large k (fewer levels); merges favour a small k.
        The FD-Tree paper balances them around ``k ~ (n / f)^(1/levels)``
        with more levels as the update fraction grows.  Read-mostly
        workloads (our experiments) get a large ratio.
        """
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        levels = max(1, round(1 + 3 * update_fraction))
        pages = max(1, n_entries)
        ratio = max(2, round(pages ** (1.0 / (levels + 1))))
        return min(ratio, 256)


class FDTree(IndexBackend):
    """Head tree + logarithmically growing sorted levels.

    Conforms to the unified :class:`repro.api.Index` protocol: batch
    operations come from the generic scalar-loop fallback, deletes
    insert tombstone records and return
    :class:`~repro.api.DeleteOutcome`, and range scans raise
    :class:`~repro.api.UnsupportedOperationError` (not implemented
    here; the paper only evaluates FD-Tree point probes).
    """

    def __init__(
        self,
        relation: Relation,
        key_column: str,
        config: FDTreeConfig | None = None,
        unique: bool = False,
    ) -> None:
        self.relation = relation
        self.key_column = key_column
        self.config = config or FDTreeConfig()
        self.unique = unique
        self.head: list[tuple[object, int]] = []      # in-memory, sorted
        self.levels: list[list[tuple[object, int]]] = []  # L1.. sorted runs
        self._level_page_base: list[int] = []         # page-id offsets
        self._data_device: Device | None = None
        self._index_device: Device | None = None
        self._index_pool: BufferPool | None = None
        self._warm = False

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def bulk_load(
        cls,
        relation: Relation,
        key_column: str,
        config: FDTreeConfig | None = None,
        unique: bool = False,
    ) -> "FDTree":
        """Load all entries into the deepest level (packed, sorted)."""
        tree = cls(relation, key_column, config, unique)
        keys = np.asarray(relation.columns[key_column])
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError(f"column {key_column!r} must be sorted for bulk load")
        if tree.config.clustered:
            distinct, starts = np.unique(keys, return_index=True)
            entries = [(k.item(), int(t)) for k, t in zip(distinct, starts)]
        else:
            entries = [(k.item(), tid) for tid, k in enumerate(keys)]
        # Entries land in the shallowest level that fits them; the levels
        # above hold only fences, but a probe still reads one page in each
        # (fractional cascading descends level by level).
        depth = 1
        while tree._level_capacity(depth - 1) < len(entries):
            depth += 1
        tree.levels = [[] for _ in range(depth - 1)] + [entries]
        tree._rebase_pages()
        return tree

    def _level_capacity(self, level_idx: int) -> int:
        """Entries level ``level_idx`` holds (head * ratio^(idx+1))."""
        return (
            self.config.head_pages
            * self.config.entries_per_page
            * self.config.size_ratio ** (level_idx + 1)
        )

    def _rebase_pages(self) -> None:
        """Assign contiguous index-page ranges to each level."""
        self._level_page_base = []
        base = self.config.head_pages
        for level in self.levels:
            self._level_page_base.append(base)
            base += self._level_pages(level)

    def _level_pages(self, level: list) -> int:
        return max(1, -(-len(level) // self.config.entries_per_page))

    # ==================================================================
    # storage binding
    # ==================================================================
    def bind(self, stack: StorageStack, warm: bool = False) -> None:
        """Attach devices.  Warm caches pin every level's fence path pages.

        With warm caches the FD-Tree paper (and §6.5) still charges one
        read for the target page of each level; only the head tree and
        fences are memory-resident, which they are here by construction.
        """
        self._index_device = stack.index_device
        self._data_device = stack.data_device
        self._index_pool = None
        # Warm caches pin the fence-only levels (they are tiny); the data
        # levels are still read from the device, matching §6.5.
        self._warm = warm

    def unbind(self) -> None:
        self._index_device = None
        self._data_device = None
        self._index_pool = None
        self._warm = False

    def _charge_cpu(self, seconds: float) -> None:
        if self._index_device is not None:
            self._index_device.clock.advance(seconds)

    def capabilities(self) -> Capabilities:
        return Capabilities(ordered=True, mutable=True, scannable=False,
                            unique=self.unique)

    def _sim_clock(self):
        return (
            self._index_device.clock if self._index_device is not None
            else None
        )

    # ==================================================================
    # point search
    # ==================================================================
    @staticmethod
    def _absorb(raw: list[int], tids: list[int], dead: set[int]) -> None:
        """Fold one level's matches into the live/dead sets.

        Tombstones (negative records) register their victim as dead;
        a live tid already absorbed from a *shallower* (more recent)
        level stays live — shallowness is recency, so an entry
        reinserted above a deeper tombstone survives it.
        """
        for t in raw:
            if t < 0:
                dead.add(-t - 1)
            elif t not in dead:
                tids.append(t)

    def _descend_live(self, key, stop_early: bool = False) -> list[int]:
        """The probe descent: head + one page read per level, absorbing
        tombstones shallow-to-deep; returns the live tids of ``key``.

        Fence-only levels (created by bulk load or left behind by
        merges) still cost a read each: the fences live in their pages
        and the descent passes through them.  ``stop_early`` stops at
        the first live match (unique-key probes).  Shared by
        :meth:`search` and :meth:`delete`, which both pay this descent.
        """
        tids: list[int] = []
        dead: set[int] = set()
        self._charge_cpu(math.log2(max(2, len(self.head) or 2)) * CPU_KEY_COMPARE)
        self._absorb([t for k, t in self._head_matches(key)], tids, dead)
        deepest = max(
            (i for i, level in enumerate(self.levels) if level), default=-1
        )
        for idx in range(deepest + 1):
            level = self.levels[idx]
            if level:
                matches, page_off = self._level_matches(level, key)
            else:
                matches, page_off = [], 0   # fence-only level
            skip_read = not level and self._warm
            if self._index_device is not None and not skip_read:
                self._index_device.read_page(
                    self._level_page_base[idx] + page_off, sequential=False
                )
            self._charge_cpu(
                math.log2(max(2, self.config.entries_per_page)) * CPU_KEY_COMPARE
            )
            self._absorb(matches, tids, dead)
            if tids and stop_early:
                break
        return sorted(set(tids))

    def search(self, key) -> SearchResult:
        """Binary-search the head, then one page read per level."""
        tids = self._descend_live(key, stop_early=self.unique)
        if not tids:
            return SearchResult(found=False)
        return self._fetch_tids(key, tids)

    def _head_matches(self, key) -> list[tuple[object, int]]:
        # (key,) sorts before (key, t) for every t, so the scan starts
        # at the first record of the key — tombstones (large negative
        # tids) included, which bisecting from (key, -1) would skip.
        i = bisect.bisect_left(self.head, (key,))
        out = []
        while i < len(self.head) and self.head[i][0] == key:
            out.append(self.head[i])
            i += 1
        return out

    def _level_matches(self, level: list, key) -> tuple[list[int], int]:
        """(matching tids, page offset within the level) via fences."""
        i = bisect.bisect_left(level, (key,))
        page_off = min(i, len(level) - 1) // self.config.entries_per_page
        matches = []
        while i < len(level) and level[i][0] == key:
            matches.append(level[i][1])
            i += 1
        return matches, page_off

    def _fetch_tids(self, key, tids: list[int]) -> SearchResult:
        if self.config.clustered and not self.unique:
            return self._fetch_clustered(key, tids)
        result = SearchResult(found=True, matches=len(tids), tids=tids)
        device = self._data_device
        pages = sorted({self.relation.page_of(t) for t in tids})
        for i, pid in enumerate(pages):
            if device is not None:
                device.read_page(pid, sequential=i > 0)
                self.relation.scan_page_for_key(
                    self.relation.view_page(pid), self.key_column, key, device,
                    stop_early=self.unique,
                )
            result.pages_read += 1
        return result

    def _fetch_clustered(self, key, seed_tids: list[int]) -> SearchResult:
        """Scan forward from the first occurrence through the duplicates."""
        result = SearchResult(found=False)
        device = self._data_device
        pid = self.relation.page_of(min(seed_tids))
        first_page = True
        while pid < self.relation.npages:
            view = self.relation.view_page(pid)
            values = view.column(self.key_column)
            if not first_page and values[0] != key:
                break
            if device is not None:
                device.read_page(pid, sequential=not first_page)
                device.stats.tuples_scanned += len(values)
            for i, value in enumerate(values):
                if value == key:
                    result.matches += 1
                    result.tids.append(view.first_tid + i)
                elif value > key:
                    break
            result.pages_read += 1
            if values[-1] != key:
                break
            first_page = False
            pid += 1
        result.found = result.matches > 0
        return result

    # ==================================================================
    # updates: logarithmic merges
    # ==================================================================
    def insert(self, key, tid: int) -> None:
        """Insert into the head tree; cascade merges when levels overflow.

        A pending tombstone for the same record (a delete not yet merged
        out of the head) is annihilated instead: the reinsert cancels it,
        so the entry stays visible (recency wins).
        """
        tid = int(tid)
        tomb = (key, -tid - 1)
        i = bisect.bisect_left(self.head, tomb)
        if i < len(self.head) and self.head[i] == tomb:
            self.head.pop(i)
        bisect.insort(self.head, (key, tid))
        head_capacity = self.config.head_pages * self.config.entries_per_page
        if len(self.head) > head_capacity:
            self._merge_down(0, self.head)
            self.head = []
            self._rebase_pages()

    def _merge_down(self, level_idx: int, incoming: list) -> None:
        """Merge ``incoming`` into level ``level_idx`` (creating it if new)."""
        while len(self.levels) <= level_idx:
            self.levels.append([])
        target = self.levels[level_idx]
        merged = self._sorted_merge(target, incoming)
        capacity = self._level_capacity(level_idx)
        if len(merged) > capacity and level_idx + 1 < 64:
            self.levels[level_idx] = []
            self._merge_down(level_idx + 1, merged)
        else:
            self.levels[level_idx] = merged
        # Merges write sequentially; charge the written pages.
        if self._index_device is not None:
            for _ in range(self._level_pages(merged)):
                self._index_device.write_page(0, sequential=True)

    @staticmethod
    def _sorted_merge(a: list, b: list) -> list:
        """Merge two sorted runs, annihilating tombstone/entry pairs.

        When a tombstone ``(key, -t-1)`` and its entry ``(key, t)`` meet
        in the merged run, both are dropped — the FD-Tree's merge-time
        delete.  Without it a delete that later migrated below a
        reinserted entry would mask it again, breaking the recency
        semantics the probe path's shallow-to-deep absorb implements.
        Exact duplicate records collapse (they are one logical entry).
        """
        merged: list = []
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] <= b[j]:
                merged.append(a[i]); i += 1
            else:
                merged.append(b[j]); j += 1
        merged.extend(a[i:])
        merged.extend(b[j:])
        out: list = []
        start = 0
        while start < len(merged):
            end = start
            key = merged[start][0]
            while end < len(merged) and merged[end][0] == key:
                end += 1
            group = merged[start:end]
            tombs = {-t - 1 for k, t in group if t < 0}
            live = {t for k, t in group if t >= 0}
            matched = tombs & live
            seen: set = set()
            for record in group:
                t = record[1]
                victim = -t - 1 if t < 0 else t
                if victim in matched or record in seen:
                    continue
                seen.add(record)
                out.append(record)
            start = end
        return out

    def delete(self, key, tid: int | None = None) -> DeleteOutcome:
        """FD-Trees delete by inserting tombstone records (the
        logarithmic method's write-optimized delete).

        ``tid=None`` tombstones every live entry of ``key``.  Finding
        the victims pays the same descent a probe pays (one page read
        per level — the liveness check inspects the same structures
        :meth:`search` charges for).  The outcome is ``tombstoned``
        whenever something was removed — the entries stay physically
        present until a merge annihilates them.
        """
        live = self._descend_live(key, stop_early=self.unique)
        if tid is None:
            victims = live
        else:
            victims = [int(tid)] if int(tid) in live else []
        if not victims:
            return DeleteOutcome(removed=False)
        for t in victims:
            bisect.insort(self.head, (key, -t - 1))  # negative tid = tombstone
        return DeleteOutcome(removed=True, tombstoned=True)

    # ==================================================================
    # checkpoint hooks (repro.persist)
    # ==================================================================
    def snapshot_state(self) -> dict:
        """Structural dump: the head run plus every on-flash level.

        Tombstones (negative tids) serialize as-is, so a restored tree
        keeps the exact merge/annihilation state — recency semantics
        and per-level page charges are bit-identical.
        """
        from dataclasses import fields

        return {
            "format": "fd-tree",
            "column": self.key_column,
            "config": {f.name: getattr(self.config, f.name)
                       for f in fields(self.config)},
            "unique": self.unique,
            "head": [[k, t] for k, t in self.head],
            "levels": [[[k, t] for k, t in level] for level in self.levels],
        }

    def restore_state(self, state: dict) -> None:
        if state.get("format") != "fd-tree":
            raise ValueError(
                f"FDTree cannot restore snapshot format "
                f"{state.get('format')!r}"
            )
        self.config = FDTreeConfig(**state["config"])
        self.unique = bool(state["unique"])
        self.head = [(k, int(t)) for k, t in state["head"]]
        self.levels = [
            [(k, int(t)) for k, t in level] for level in state["levels"]
        ]
        self._rebase_pages()
        maybe_check(self)

    # ==================================================================
    # size accounting
    # ==================================================================
    @property
    def n_levels(self) -> int:
        """Levels a probe descends through (fence-only ones included)."""
        deepest = max(
            (i for i, level in enumerate(self.levels) if level), default=-1
        )
        return deepest + 1

    @property
    def size_pages(self) -> int:
        pages = self.config.head_pages
        deepest = self.n_levels
        for level in self.levels[:deepest]:
            pages += self._level_pages(level)
        return pages

    @property
    def size_bytes(self) -> int:
        return self.size_pages * self.config.page_size

    @property
    def height(self) -> int:
        """Probe depth: head + one read per non-empty level."""
        return 1 + self.n_levels

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FDTree(levels={self.n_levels}, head={len(self.head)}, "
            f"pages={self.size_pages})"
        )
