"""Compressed B+-Tree size model (key-prefix compression, Fig. 4b).

The paper's analytical comparison includes a B+-Tree with Bayer-Unterauer
key-prefix compression [6, 20]: leaves store only the distinguishing
suffix of each key, which for the modeled workload shrinks the index to
about 10% of the vanilla B+-Tree.  The paper uses this purely as a *size*
line — compression does not change probe I/O — so we model the size and
delegate probing to the uncompressed tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PrefixCompressionModel:
    """Size estimator for a prefix-compressed B+-Tree.

    With sorted keys, consecutive leaf entries share long prefixes; the
    stored suffix only needs to distinguish a key from its neighbour.
    For ``n`` distinct keys the expected distinguishing suffix is about
    ``log256(n) / depth_ratio`` bytes — in practice 2-4 bytes for the
    paper's 32-byte keys — plus a small per-entry header.
    """

    key_size: int
    ptr_size: int = 8
    page_size: int = 4096
    entry_header_bytes: int = 2   # offset/length bookkeeping per entry
    fill_factor: float = 0.8

    def compressed_key_bytes(self, n_distinct: int) -> float:
        """Expected stored bytes per key after prefix truncation."""
        if n_distinct <= 1:
            return 1.0
        distinguishing = math.log(n_distinct, 256)
        return min(self.key_size, max(1.0, distinguishing))

    def leaf_pages(self, n_distinct: int, n_tuples: int) -> int:
        """Leaf pages for ``n_distinct`` keys carrying ``n_tuples`` rids."""
        key_bytes = self.compressed_key_bytes(n_distinct) + self.entry_header_bytes
        total = n_distinct * key_bytes + n_tuples * self.ptr_size
        budget = self.page_size * self.fill_factor
        return max(1, math.ceil(total / budget))

    def total_pages(self, n_distinct: int, n_tuples: int,
                    fanout: int | None = None) -> int:
        """Leaf pages plus the internal directory above them."""
        leaves = self.leaf_pages(n_distinct, n_tuples)
        if fanout is None:
            fanout = self.page_size // (self.ptr_size + max(
                2, int(self.compressed_key_bytes(n_distinct))))
        pages = leaves
        level = leaves
        while level > 1:
            level = math.ceil(level / fanout)
            pages += level
        return pages

    def size_bytes(self, n_distinct: int, n_tuples: int) -> int:
        return self.total_pages(n_distinct, n_tuples) * self.page_size
