"""Binary and interpolation search directly on the sorted data file (§7).

The paper positions these as the index-free alternatives for fully sorted
data: binary search costs ``log2(N)`` random page reads, interpolation
search ``log2(log2(N))`` *for uniformly distributed keys* [36].  Both are
implemented here as page-granular searches over a
:class:`~repro.storage.relation.Relation`, charging the data device one
random read per inspected page — the honest I/O cost of an unindexed
search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.protocol import Capabilities, IndexBackend
from repro.api.results import SearchResult
from repro.storage.config import StorageStack
from repro.storage.device import Device
from repro.storage.relation import Relation


@dataclass
class SortedFileSearch(IndexBackend):
    """Index-free point search on a relation sorted by ``key_column``.

    Conforms to the unified :class:`repro.api.Index` protocol as an
    immutable, unscannable backend (the data file cannot be written
    through an index that does not exist); ``search`` defaults to
    binary search, with :meth:`interpolation_search` as the alternative
    entry point.
    """

    relation: Relation
    key_column: str
    unique: bool = False

    def __post_init__(self) -> None:
        self._data_device: Device | None = None
        keys = np.asarray(self.relation.columns[self.key_column])
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError(
                f"column {self.key_column!r} must be fully sorted for "
                "binary/interpolation search"
            )

    def bind(self, stack: StorageStack, warm: bool = False) -> None:
        """Attach the data device (there is no index to warm)."""
        self._data_device = stack.data_device

    def unbind(self) -> None:
        self._data_device = None

    def capabilities(self) -> Capabilities:
        return Capabilities(ordered=True, mutable=False, scannable=False,
                            unique=self.unique)

    def _sim_clock(self):
        return (
            self._data_device.clock if self._data_device is not None else None
        )

    # ------------------------------------------------------------------
    def _page_first_key(self, pid: int):
        view = self.relation.view_page(pid)
        return view.column(self.key_column)[0]

    def _page_last_key(self, pid: int):
        view = self.relation.view_page(pid)
        return view.column(self.key_column)[-1]

    def _probe_page(self, pid: int, key, sequential: bool = False) -> int:
        """Fetch one page and count matches (charges device + CPU)."""
        device = self._data_device
        if device is not None:
            device.read_page(pid, sequential=sequential)
            return self.relation.scan_page_for_key(
                self.relation.view_page(pid), self.key_column, key, device,
                stop_early=True,
            )
        values = self.relation.view_page(pid).column(self.key_column)
        return int(np.count_nonzero(values == key))

    def _collect_matches(self, pid: int, key) -> SearchResult:
        """Read ``pid`` and any neighbouring pages holding duplicates."""
        result = SearchResult(found=False)
        matches = self._probe_page(pid, key)
        result.pages_read += 1
        result.matches += matches
        if matches == 0:
            return result
        result.found = True
        if self.unique:
            return result
        # Duplicates are contiguous: extend left then right.
        left = pid - 1
        while left >= 0 and self._page_last_key(left) == key:
            result.matches += self._probe_page(left, key)
            result.pages_read += 1
            left -= 1
        right = pid + 1
        while right < self.relation.npages and self._page_first_key(right) == key:
            result.matches += self._probe_page(right, key, sequential=True)
            result.pages_read += 1
            right += 1
        return result

    # ------------------------------------------------------------------
    def binary_search(self, key) -> SearchResult:
        """Page-granular binary search: log2(npages) random reads."""
        lo, hi = 0, self.relation.npages - 1
        pages_inspected = 0
        device = self._data_device
        while lo <= hi:
            mid = (lo + hi) // 2
            if device is not None:
                device.read_page(mid, sequential=False)
            pages_inspected += 1
            view = self.relation.view_page(mid)
            values = view.column(self.key_column)
            if key < values[0]:
                hi = mid - 1
            elif key > values[-1]:
                lo = mid + 1
            else:
                result = self._collect_matches_in_place(mid, key)
                result.pages_read += pages_inspected - 1
                return result
        return SearchResult(found=False, pages_read=pages_inspected)

    def interpolation_search(self, key) -> SearchResult:
        """Interpolated page probing: loglog(N) reads on uniform data [36]."""
        device = self._data_device
        lo, hi = 0, self.relation.npages - 1
        lo_key = self._page_first_key(lo)
        hi_key = self._page_last_key(hi)
        if key < lo_key or key > hi_key:
            return SearchResult(found=False)
        pages_inspected = 0
        while lo <= hi:
            span = float(hi_key) - float(lo_key)
            if span <= 0:
                mid = lo
            else:
                frac = (float(key) - float(lo_key)) / span
                mid = lo + int(frac * (hi - lo))
                mid = min(max(mid, lo), hi)
            if device is not None:
                device.read_page(mid, sequential=False)
            pages_inspected += 1
            values = self.relation.view_page(mid).column(self.key_column)
            if key < values[0]:
                hi = mid - 1
                if hi < lo:
                    break
                hi_key = self._page_last_key(hi)
            elif key > values[-1]:
                lo = mid + 1
                if lo > hi:
                    break
                lo_key = self._page_first_key(lo)
            else:
                result = self._collect_matches_in_place(mid, key)
                result.pages_read += pages_inspected - 1
                return result
        return SearchResult(found=False, pages_read=pages_inspected)

    search = binary_search  # default probe entry point

    # ------------------------------------------------------------------
    def _collect_matches_in_place(self, pid: int, key) -> SearchResult:
        """Count matches on the already-fetched ``pid`` plus spillover pages."""
        device = self._data_device
        result = SearchResult(found=False, pages_read=1)
        if device is not None:
            matches = self.relation.scan_page_for_key(
                self.relation.view_page(pid), self.key_column, key, device,
                stop_early=self.unique,
            )
        else:
            values = self.relation.view_page(pid).column(self.key_column)
            matches = int(np.count_nonzero(values == key))
        result.matches = matches
        result.found = matches > 0
        if not result.found or self.unique:
            return result
        left = pid - 1
        while left >= 0 and self._page_last_key(left) == key:
            result.matches += self._probe_page(left, key)
            result.pages_read += 1
            left -= 1
        right = pid + 1
        while right < self.relation.npages and self._page_first_key(right) == key:
            result.matches += self._probe_page(right, key, sequential=True)
            result.pages_read += 1
            right += 1
        return result

    # ------------------------------------------------------------------
    @property
    def size_pages(self) -> int:
        """An index-free search costs zero index pages."""
        return 0

    @property
    def size_bytes(self) -> int:
        return 0
