"""SILT baseline (Lim et al., SOSP 2011) — memory-efficient key-value store.

SILT's *sorted store* keeps all keys in sorted order on flash, indexed by
an entropy-coded trie that costs ~0.4 bytes of DRAM per key and resolves
a key to the exact flash page, so a lookup needs exactly one flash read.
The BF-Tree paper uses SILT's analytical model in §5: point probes are
~5% faster than a B+-Tree when the trie is cached and ~32% slower when
the trie itself must be fetched, with an index ~28% of the B+-Tree's
size.  SILT supports only point queries — no range scans — which the
paper stresses as its limitation.

:class:`SiltStore` is a working simplified sorted store: a sorted array
on the index device plus an in-memory trie surrogate (a page-granular
offset table), preserving the one-flash-read lookup and the small memory
footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api.protocol import Capabilities, IndexBackend
from repro.api.results import SearchResult
from repro.storage.clock import CPU_KEY_COMPARE
from repro.storage.config import StorageStack
from repro.storage.device import PAGE_SIZE, Device
from repro.storage.relation import Relation


@dataclass(frozen=True)
class SiltConfig:
    """Geometry of the simplified SILT sorted store."""

    key_size: int = 8
    ptr_size: int = 8
    page_size: int = PAGE_SIZE
    trie_bytes_per_key: float = 0.4   # SILT's entropy-coded trie budget
    #: Keys in the sorted store compress well (shared prefixes); SILT's
    #: evaluation yields roughly this fraction of raw key bytes on flash.
    key_compression: float = 0.5
    trie_cached: bool = True          # §5: cached vs loaded trie

    @property
    def entries_per_page(self) -> int:
        entry = self.key_size * self.key_compression + self.ptr_size
        return max(1, int(self.page_size / entry))


class SiltStore(IndexBackend):
    """Sorted store + in-memory trie; point queries only.

    Conforms to the unified :class:`repro.api.Index` protocol as an
    immutable, unscannable backend: ``search``/``search_many`` work,
    while ``insert``/``delete``/``range_scan`` raise
    :class:`~repro.api.UnsupportedOperationError` — SILT's sorted store
    is write-once and supports only point queries, the limitation the
    BF-Tree paper stresses in §5.
    """

    def __init__(
        self,
        relation: Relation,
        key_column: str,
        config: SiltConfig | None = None,
        unique: bool = True,
    ) -> None:
        self.relation = relation
        self.key_column = key_column
        self.config = config or SiltConfig()
        self.unique = unique
        self._keys = np.empty(0)
        self._tids = np.empty(0, dtype=np.int64)
        self._data_device: Device | None = None
        self._index_device: Device | None = None

    @classmethod
    def build(
        cls,
        relation: Relation,
        key_column: str,
        config: SiltConfig | None = None,
        unique: bool = True,
    ) -> "SiltStore":
        """Sort all (key, tid) pairs into the store."""
        store = cls(relation, key_column, config, unique)
        keys = np.asarray(relation.columns[key_column])
        order = np.argsort(keys, kind="stable")
        store._keys = keys[order]
        store._tids = order.astype(np.int64)
        return store

    # ------------------------------------------------------------------
    def bind(self, stack: StorageStack, warm: bool = False) -> None:
        self._index_device = stack.index_device
        self._data_device = stack.data_device

    def unbind(self) -> None:
        self._index_device = None
        self._data_device = None

    def _charge_cpu(self, seconds: float) -> None:
        if self._index_device is not None:
            self._index_device.clock.advance(seconds)

    def capabilities(self) -> Capabilities:
        return Capabilities(ordered=True, mutable=False, scannable=False,
                            unique=self.unique)

    def _sim_clock(self):
        return (
            self._index_device.clock if self._index_device is not None
            else None
        )

    # ------------------------------------------------------------------
    def search(self, key) -> SearchResult:
        """Trie walk (CPU, or one read when uncached) + one store read."""
        # Trie resolution.
        self._charge_cpu(self.config.key_size * 8 * CPU_KEY_COMPARE)
        if not self.config.trie_cached and self._index_device is not None:
            self._index_device.read_page(0, sequential=False)
        i = int(np.searchsorted(self._keys, key, side="left"))
        if i >= len(self._keys) or self._keys[i] != key:
            return SearchResult(found=False)
        # One read into the sorted store page the trie resolved to.
        page_off = 1 + i // self.config.entries_per_page
        if self._index_device is not None:
            self._index_device.read_page(page_off, sequential=False)
        j = i
        tids = []
        while j < len(self._keys) and self._keys[j] == key:
            tids.append(int(self._tids[j]))
            j += 1
            if self.unique:
                break
        return self._fetch_tids(key, sorted(tids))

    def _fetch_tids(self, key, tids: list[int]) -> SearchResult:
        result = SearchResult(found=True, matches=len(tids), tids=tids)
        device = self._data_device
        pages = sorted({self.relation.page_of(t) for t in tids})
        for i, pid in enumerate(pages):
            if device is not None:
                device.read_page(pid, sequential=i > 0)
                self.relation.scan_page_for_key(
                    self.relation.view_page(pid), self.key_column, key, device,
                    stop_early=self.unique,
                )
            result.pages_read += 1
        return result

    # insert / delete / range_scan: inherited capability-gated defaults
    # raise UnsupportedOperationError (a NotImplementedError subclass) —
    # SILT supports only point queries (paper §5).

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self._keys)

    @property
    def store_pages(self) -> int:
        return max(1, math.ceil(self.n_entries / self.config.entries_per_page))

    @property
    def trie_bytes(self) -> int:
        return int(self.n_entries * self.config.trie_bytes_per_key)

    @property
    def size_bytes(self) -> int:
        return self.store_pages * self.config.page_size + self.trie_bytes

    @property
    def size_pages(self) -> int:
        return -(-self.size_bytes // self.config.page_size)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SiltStore(entries={self.n_entries}, pages={self.size_pages})"
