"""In-memory hash index baseline (paper §6: "an in-memory hash index").

A point probe costs one hash lookup (CPU) plus the data-page fetches for
the matching rids.  The paper only evaluates the hash index memory-
resident, so there is no device-resident variant; the size accounting
reports the memory footprint a bucketized hash table would need, for the
capacity-gain comparisons.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.analysis.sanitize import maybe_check
from repro.api.protocol import Capabilities, IndexBackend
from repro.api.results import DeleteOutcome, SearchResult
from repro.storage.clock import CPU_HASH_PROBE
from repro.storage.config import StorageStack
from repro.storage.device import PAGE_SIZE, Device
from repro.storage.relation import Relation


class HashIndex(IndexBackend):
    """Exact key -> rid-list map held in main memory.

    Conforms to the unified :class:`repro.api.Index` protocol: batch
    operations come from the generic scalar-loop fallback, deletes
    return :class:`~repro.api.DeleteOutcome`, and range scans raise
    :class:`~repro.api.UnsupportedOperationError` (a hash index is
    unordered and unscannable).
    """

    #: Typical open-addressing overhead on top of raw entry bytes.
    LOAD_FACTOR = 0.7

    def __init__(
        self,
        relation: Relation,
        key_column: str,
        unique: bool = False,
        key_size: int = 8,
        ptr_size: int = 8,
    ) -> None:
        self.relation = relation
        self.key_column = key_column
        self.unique = unique
        self.key_size = key_size
        self.ptr_size = ptr_size
        self._map: dict[object, list[int]] = defaultdict(list)
        self._data_device: Device | None = None
        self._clock = None

    @classmethod
    def build(
        cls,
        relation: Relation,
        key_column: str,
        unique: bool = False,
    ) -> "HashIndex":
        """Hash every (key, tid) pair of the column."""
        index = cls(relation, key_column, unique)
        values = np.asarray(relation.columns[key_column])
        for tid, key in enumerate(values):
            index._map[key.item()].append(tid)
        return index

    # ------------------------------------------------------------------
    def bind(self, stack: StorageStack, warm: bool = False) -> None:
        """Attach to a storage stack (index stays in memory; warm is a no-op)."""
        self._data_device = stack.data_device
        self._clock = stack.clock

    def unbind(self) -> None:
        self._data_device = None
        self._clock = None

    def capabilities(self) -> Capabilities:
        return Capabilities(ordered=False, mutable=True, scannable=False,
                            unique=self.unique)

    def _sim_clock(self):
        return self._clock

    # ------------------------------------------------------------------
    def search(self, key) -> SearchResult:
        """Constant-time probe, then fetch matching data pages."""
        if self._clock is not None:
            self._clock.advance(CPU_HASH_PROBE)
        tids = self._map.get(key)
        if not tids:
            return SearchResult(found=False)
        result = SearchResult(found=True, matches=len(tids), tids=list(tids))
        device = self._data_device
        pages = sorted({self.relation.page_of(t) for t in tids})
        for i, pid in enumerate(pages):
            if device is not None:
                device.read_page(pid, sequential=i > 0)
                self.relation.scan_page_for_key(
                    self.relation.view_page(pid), self.key_column, key, device,
                    stop_early=self.unique,
                )
            result.pages_read += 1
        return result

    def insert(self, key, tid: int) -> None:
        self._map[key].append(tid)

    def delete(self, key, tid: int | None = None) -> DeleteOutcome:
        """Physical removal from the map; never tombstoned."""
        if key not in self._map:
            return DeleteOutcome(removed=False)
        if tid is None:
            del self._map[key]
            return DeleteOutcome(removed=True)
        try:
            self._map[key].remove(tid)
        except ValueError:
            return DeleteOutcome(removed=False)
        if not self._map[key]:
            del self._map[key]
        return DeleteOutcome(removed=True)

    # ------------------------------------------------------------------
    # checkpoint hooks (repro.persist): key-dump fallback — a hash index
    # has no structural identity beyond its entries, so the dump *is*
    # the complete state.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        items = list(self._map.items())
        return {
            "format": "hash-keydump",
            "column": self.key_column,
            "unique": self.unique,
            "key_size": self.key_size,
            "ptr_size": self.ptr_size,
            "keys": [k for k, _ in items],
            "tids": [list(v) for _, v in items],
        }

    def restore_state(self, state: dict) -> None:
        if state.get("format") != "hash-keydump":
            raise ValueError(
                f"HashIndex cannot restore snapshot format "
                f"{state.get('format')!r}"
            )
        self.unique = bool(state["unique"])
        self.key_size = int(state["key_size"])
        self.ptr_size = int(state["ptr_size"])
        self._map = defaultdict(list)
        for key, tids in zip(state["keys"], state["tids"]):
            self._map[key] = [int(t) for t in tids]
        maybe_check(self)

    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        return len(self._map)

    @property
    def size_bytes(self) -> int:
        """Memory a bucketized table would occupy at the load factor."""
        entries = sum(len(v) for v in self._map.values())
        raw = self.n_keys * self.key_size + entries * self.ptr_size
        return int(raw / self.LOAD_FACTOR)

    @property
    def size_pages(self) -> int:
        return -(-self.size_bytes // PAGE_SIZE)

    def __repr__(self) -> str:  # pragma: no cover
        return f"HashIndex(keys={self.n_keys}, pages={self.size_pages})"
