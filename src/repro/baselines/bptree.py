"""Page-based B+-Tree baseline (the index the paper compares against).

Leaves store one entry per *distinct* key with the rid list of all its
duplicates — the layout behind the paper's Equation 3, where the key size
is amortized over ``avgcard`` but every tuple costs one pointer::

    BPleaves = notuples * (keysize / avgcard + ptrsize) / pagesize

Internal levels reuse :class:`repro.core.node.InnerTree`, exactly as the
paper's prototype reuses the B+-Tree code above BF-leaves.  A key whose
rid list exceeds one page continues into the following leaf (duplicate
fence keys), as real B+-Trees do for heavy duplicates.

Probe semantics mirror §6: a match fetches the tuple's data page by rid;
a non-unique match fetches every page holding a duplicate ("every probe
with a positive match will read all the consecutive tuples that have the
same value"), first page random, the rest sequential.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sanitize import maybe_check
from repro.api.protocol import Capabilities, IndexBackend
from repro.api.results import (
    DeleteOutcome,
    RangeScanResult,
    SearchResult,
    normalize_scan_windows,
)
from repro.core.node import InnerTree, NodeStore, fanout_for, route_batch
from repro.storage.buffer_pool import BufferPool
from repro.storage.clock import CPU_KEY_COMPARE
from repro.storage.config import StorageStack
from repro.storage.device import PAGE_SIZE, Device, classify_read_runs
from repro.storage.relation import Relation


@dataclass(frozen=True)
class BPlusTreeConfig:
    """Geometry of the baseline B+-Tree.

    ``clustered=True`` (the default, matching the paper's prototype on its
    ordered/partitioned datasets) stores one rid per *distinct* key — the
    first occurrence — and probes scan forward through the consecutive
    duplicates ("every probe with a positive match will read all the
    consecutive tuples that have the same value", §6.3).  This is what
    makes the paper's ATT1 B+-Tree 11x smaller than one rid per tuple.
    ``clustered=False`` stores every rid, for heap-file-style data.
    """

    key_size: int = 8
    ptr_size: int = 8
    page_size: int = PAGE_SIZE
    fill_factor: float = 0.8      # bulk-load occupancy, typical for B+-Trees
    clustered: bool = True

    def __post_init__(self) -> None:
        if not 0.1 <= self.fill_factor <= 1.0:
            raise ValueError("fill_factor must be in [0.1, 1.0]")

    @property
    def leaf_budget_bytes(self) -> int:
        return int(self.page_size * self.fill_factor)


@dataclass
class BPLeaf:
    """One leaf page: parallel arrays of distinct keys and rid lists."""

    node_id: int
    keys: list = field(default_factory=list)
    ridlists: list[list[int]] = field(default_factory=list)
    next_leaf_id: int | None = None
    prev_leaf_id: int | None = None

    def bytes_used(self, key_size: int, ptr_size: int) -> int:
        nrids = sum(len(r) for r in self.ridlists)
        return len(self.keys) * key_size + nrids * ptr_size

    def find(self, key) -> int | None:
        """Slot of ``key`` or None."""
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return i
        return None


class BPlusTree(IndexBackend):
    """Classic disk-oriented B+-Tree over a relation column."""

    def __init__(
        self,
        relation: Relation,
        key_column: str,
        config: BPlusTreeConfig | None = None,
        unique: bool = False,
    ) -> None:
        self.relation = relation
        self.key_column = key_column
        self.config = config or BPlusTreeConfig()
        self.unique = unique
        self.store = NodeStore()
        self.inner = InnerTree(
            self.store,
            fanout=fanout_for(self.config.key_size, self.config.ptr_size,
                              self.config.page_size),
        )
        self.leaves: dict[int, BPLeaf] = {}
        self._data_device: Device | None = None
        self._index_pool: BufferPool | None = None
        # Key span this tree's leaves cover, maintained incrementally
        # (bulk load / from_leaves / insert) so the clustered range-scan
        # clamp stays O(1).  Deletes never shrink it: a too-wide span
        # only weakens the clamp back toward the pre-clamp behaviour.
        self._lo_key: object = None
        self._hi_key: object = None

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def bulk_load(
        cls,
        relation: Relation,
        key_column: str,
        config: BPlusTreeConfig | None = None,
        unique: bool = False,
    ) -> "BPlusTree":
        """Pack leaves at the configured fill factor, then build the directory."""
        tree = cls(relation, key_column, config, unique)
        keys = np.asarray(relation.columns[key_column])
        if len(keys) == 0:
            raise ValueError("cannot bulk load an empty relation")
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError(f"column {key_column!r} must be sorted for bulk load")
        budget = tree.config.leaf_budget_bytes
        ksz, psz = tree.config.key_size, tree.config.ptr_size
        leaf = tree._new_leaf()
        order = [leaf]
        used = 0
        distinct_keys, starts = np.unique(keys, return_index=True)
        counts = np.diff(np.append(starts, len(keys)))
        for key, start, count in zip(distinct_keys, starts, counts):
            if tree.config.clustered:
                remaining = [int(start)]   # first occurrence only
            else:
                remaining = list(range(int(start), int(start + count)))
            while remaining:
                if used + ksz + psz > budget:
                    new = tree._new_leaf()
                    leaf.next_leaf_id = new.node_id
                    new.prev_leaf_id = leaf.node_id
                    leaf = new
                    order.append(leaf)
                    used = 0
                room = max(1, (budget - used - ksz) // psz)
                take, remaining = remaining[:room], remaining[room:]
                leaf.keys.append(key.item())
                leaf.ridlists.append(take)
                used += ksz + len(take) * psz
        tree._leaf_order = [l.node_id for l in order]
        separators = [tree.leaves[lid].keys[0] for lid in tree._leaf_order[1:]]
        tree.inner.build(separators, tree._leaf_order)
        tree._lo_key = order[0].keys[0]
        tree._hi_key = order[-1].keys[-1]
        return tree

    @classmethod
    def from_leaves(
        cls,
        relation: Relation,
        key_column: str,
        leaves: list[BPLeaf],
        config: BPlusTreeConfig | None = None,
        unique: bool = False,
    ) -> "BPlusTree":
        """Build a tree over an existing contiguous run of B+-leaves.

        Shard-safe construction (same contract as
        :meth:`repro.core.bf_tree.BFTree.from_leaves`): takes ownership
        of the leaf objects, reallocates their node ids from this tree's
        store, relinks the chain and severs it at the run's ends, then
        builds a fresh directory.  The donor tree must be discarded.
        """
        if not leaves:
            raise ValueError("from_leaves needs at least one leaf")
        tree = cls(relation, key_column, config, unique)
        for leaf in leaves:
            leaf.node_id = tree.store.allocate()
            tree.leaves[leaf.node_id] = leaf
        for prev, nxt in zip(leaves, leaves[1:]):
            prev.next_leaf_id = nxt.node_id
            nxt.prev_leaf_id = prev.node_id
        leaves[0].prev_leaf_id = None
        leaves[-1].next_leaf_id = None
        tree._leaf_order = [leaf.node_id for leaf in leaves]
        separators = [leaf.keys[0] for leaf in leaves[1:]]
        tree.inner.build(separators, tree._leaf_order)
        tree._lo_key = leaves[0].keys[0]
        tree._hi_key = leaves[-1].keys[-1]
        return tree

    def _new_leaf(self) -> BPLeaf:
        leaf = BPLeaf(node_id=self.store.allocate())
        self.leaves[leaf.node_id] = leaf
        return leaf

    # ==================================================================
    # storage binding (same protocol as BFTree)
    # ==================================================================
    def bind(self, stack: StorageStack, warm: bool = False) -> None:
        """Attach to a storage stack; ``warm`` pins internal nodes in memory."""
        self.store.device = stack.index_device
        self._data_device = stack.data_device
        if warm:
            # Paper warm-cache semantics: internal nodes resident, leaf
            # accesses still cause I/O - so misses are never admitted.
            pool = BufferPool(stack.index_device, capacity_pages=None,
                              admit_on_miss=False)
            pool.prefault(self.inner.internal_node_ids())
            self._index_pool = pool
        else:
            self._index_pool = None
        self.store.pool = self._index_pool

    def unbind(self) -> None:
        self.store.device = None
        self.store.pool = None
        self._data_device = None
        self._index_pool = None

    def _charge_cpu(self, seconds: float) -> None:
        if self.store.device is not None:
            self.store.device.clock.advance(seconds)

    # ==================================================================
    # point search
    # ==================================================================
    def search(self, key) -> SearchResult:
        """Descend to the leaf, fetch the rid(s), read the data page(s)."""
        leaf = self._descend_and_read(key)
        if leaf is None:
            return SearchResult(found=False)
        slot = leaf.find(key)
        self._charge_cpu(math.log2(max(2, len(leaf.keys) or 2)) * CPU_KEY_COMPARE)
        if slot is None:
            return SearchResult(found=False)
        tids = list(leaf.ridlists[slot])
        # A heavy rid list may span leaves in both directions (descent is
        # rightmost-biased, so preceding chunks live in earlier leaves).
        current = leaf
        while not self.unique and current.prev_leaf_id is not None:
            prev = self.leaves[current.prev_leaf_id]
            if prev.keys and prev.keys[-1] == key:
                self.store.read(prev.node_id)
                tids.extend(prev.ridlists[-1])
                current = prev
            else:
                break
        current = leaf
        while not self.unique and current.next_leaf_id is not None:
            nxt = self.leaves[current.next_leaf_id]
            if nxt.keys and nxt.keys[0] == key:
                self.store.read(nxt.node_id, sequential=True)
                tids.extend(nxt.ridlists[0])
                current = nxt
            else:
                break
        return self._fetch_tids(key, sorted(tids))

    # search_many / insert_many / delete_many come from BatchFallbackMixin:
    # the exact index has no per-filter fan-out to vectorize — a probe is
    # one descent, one binary search and the rid fetch — so the generic
    # scalar loop *is* the batch engine, with identical I/O charging and
    # per-op latency_sink accounting to BFTree's vectorized paths.

    def _sim_clock(self):
        return (
            self.store.device.clock if self.store.device is not None else None
        )

    def capabilities(self) -> Capabilities:
        return Capabilities(ordered=True, mutable=True, scannable=True,
                            unique=self.unique)

    supports_sharding = True

    def shard_leaves(self) -> list:
        """Leaf chain in key order, ready for ShardedIndex slicing."""
        return [self.leaves[lid] for lid in self._leaf_order]

    def shard_from_leaves(self, run: list) -> "BPlusTree":
        return BPlusTree.from_leaves(
            self.relation, self.key_column, run,
            config=self.config, unique=self.unique,
        )

    @staticmethod
    def shard_leaf_span(leaf) -> tuple:
        return (leaf.keys[0], leaf.keys[-1])

    @staticmethod
    def shard_cut_spans(left, right) -> bool:
        if not left.keys or not right.keys:
            return True
        return right.keys[0] == left.keys[-1]

    # ==================================================================
    # checkpoint hooks (repro.persist)
    # ==================================================================
    def snapshot_state(self) -> dict:
        """Structural dump: directory plus the exact leaf chain.

        Node ids and the allocator cursor are preserved so the restored
        tree charges identical simulated I/O (same descent paths, same
        leaf page ids) as the original.
        """
        from dataclasses import fields

        return {
            "format": "bplus-tree",
            "column": self.key_column,
            "config": {f.name: getattr(self.config, f.name)
                       for f in fields(self.config)},
            "unique": self.unique,
            "lo_key": self._lo_key,
            "hi_key": self._hi_key,
            "inner": self.inner.state_dict(),
            "leaves": [
                {"node_id": leaf.node_id, "keys": list(leaf.keys),
                 "ridlists": [list(r) for r in leaf.ridlists]}
                for leaf in self.leaves_in_order()
            ],
        }

    def restore_state(self, state: dict) -> None:
        if state.get("format") != "bplus-tree":
            raise ValueError(
                f"BPlusTree cannot restore snapshot format "
                f"{state.get('format')!r}"
            )
        self.config = BPlusTreeConfig(**state["config"])
        self.unique = bool(state["unique"])
        self._lo_key = state["lo_key"]
        self._hi_key = state["hi_key"]
        self.leaves = {}
        chain: list[BPLeaf] = []
        for rec in state["leaves"]:
            leaf = BPLeaf(
                node_id=int(rec["node_id"]),
                keys=list(rec["keys"]),
                ridlists=[[int(t) for t in rids] for rids in rec["ridlists"]],
            )
            self.leaves[leaf.node_id] = leaf
            chain.append(leaf)
        for prev, nxt in zip(chain, chain[1:]):
            prev.next_leaf_id = nxt.node_id
            nxt.prev_leaf_id = prev.node_id
        if chain:
            chain[0].prev_leaf_id = None
            chain[-1].next_leaf_id = None
        self._leaf_order = [leaf.node_id for leaf in chain]
        self.inner.load_state(state["inner"])
        maybe_check(self)

    def _descend_and_read(self, key) -> BPLeaf | None:
        try:
            leaf_id, path = self.inner.descend(key)
        except LookupError:
            return None
        self._charge_cpu(
            len(path) * math.log2(max(2, self.inner.fanout)) * CPU_KEY_COMPARE
        )
        self.store.read(leaf_id)
        return self.leaves[leaf_id]

    def _fetch_tids(self, key, tids: list[int]) -> SearchResult:
        """Read the data pages holding ``tids`` (sorted; first random).

        In clustered mode for a non-unique key the rids are first
        occurrences; the fetch continues through following pages while
        they still lead with ``key`` — the paper's probe behaviour for
        consecutive duplicates.
        """
        if self.config.clustered and not self.unique:
            return self._fetch_clustered(key, tids)
        result = SearchResult(found=bool(tids), matches=len(tids), tids=tids)
        device = self._data_device
        pages = sorted({self.relation.page_of(t) for t in tids})
        for i, pid in enumerate(pages):
            if device is not None:
                device.read_page(pid, sequential=i > 0)
            result.pages_read += 1
            if device is not None:
                self.relation.scan_page_for_key(
                    self.relation.view_page(pid), self.key_column, key, device,
                    stop_early=self.unique,
                )
        return result

    def _fetch_clustered(self, key, seed_tids: list[int]) -> SearchResult:
        """Scan forward from each seed rid through consecutive duplicates."""
        result = SearchResult(found=False)
        device = self._data_device
        seen_pages: set[int] = set()
        for seed in sorted(seed_tids):
            pid = self.relation.page_of(seed)
            first_page = True
            while pid < self.relation.npages and pid not in seen_pages:
                view = self.relation.view_page(pid)
                values = view.column(self.key_column)
                if not first_page and values[0] != key:
                    break
                seen_pages.add(pid)
                if device is not None:
                    device.read_page(pid, sequential=not first_page)
                matches = 0
                for i, value in enumerate(values):
                    if value == key:
                        matches += 1
                        result.tids.append(view.first_tid + i)
                    elif value > key:
                        break
                if device is not None:
                    device.stats.tuples_scanned += len(values)
                result.matches += matches
                result.pages_read += 1
                if matches == 0 and not first_page:
                    break
                # Stop when duplicates cannot continue past this page.
                if values[-1] != key:
                    break
                first_page = False
                pid += 1
        result.found = result.matches > 0
        return result

    # ==================================================================
    # updates
    # ==================================================================
    def insert(self, key, tid: int) -> None:
        """Insert one (key, rid) entry, splitting the leaf when overfull."""
        leaf = self._descend_and_read(key)
        if leaf is None:
            raise LookupError("insert into an unbuilt tree; bulk_load first")
        slot = leaf.find(key)
        if slot is not None:
            leaf.ridlists[slot].append(tid)
        else:
            i = bisect.bisect_left(leaf.keys, key)
            leaf.keys.insert(i, key)
            leaf.ridlists.insert(i, [tid])
        if self._lo_key is None or key < self._lo_key:
            self._lo_key = key
        if self._hi_key is None or key > self._hi_key:
            self._hi_key = key
        self.store.write(leaf.node_id)
        ksz, psz = self.config.key_size, self.config.ptr_size
        if leaf.bytes_used(ksz, psz) > self.config.page_size:
            self._split_leaf(leaf)

    def delete(self, key, tid: int | None = None) -> DeleteOutcome:
        """Remove one rid (or the whole entry when ``tid`` is None).

        B+-Tree deletes are physical (the entry leaves the leaf), so the
        outcome is never ``tombstoned``.
        """
        leaf = self._descend_and_read(key)
        if leaf is None:
            return DeleteOutcome(removed=False)
        slot = leaf.find(key)
        if slot is None:
            return DeleteOutcome(removed=False)
        if tid is None:
            leaf.keys.pop(slot)
            leaf.ridlists.pop(slot)
        else:
            try:
                leaf.ridlists[slot].remove(tid)
            except ValueError:
                return DeleteOutcome(removed=False)
            if not leaf.ridlists[slot]:
                leaf.keys.pop(slot)
                leaf.ridlists.pop(slot)
        self.store.write(leaf.node_id)
        return DeleteOutcome(removed=True)

    def _split_leaf(self, leaf: BPLeaf) -> None:
        mid = max(1, len(leaf.keys) // 2)
        right = self._new_leaf()
        right.keys = leaf.keys[mid:]
        right.ridlists = leaf.ridlists[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.ridlists = leaf.ridlists[:mid]
        right.next_leaf_id = leaf.next_leaf_id
        right.prev_leaf_id = leaf.node_id
        if right.next_leaf_id is not None:
            self.leaves[right.next_leaf_id].prev_leaf_id = right.node_id
        leaf.next_leaf_id = right.node_id
        self.store.write(leaf.node_id)
        self.store.write(right.node_id)
        # split_child handles both shapes itself: a single-leaf root grows
        # its first internal node, an existing directory gains a fence.
        self.inner.split_child(leaf.node_id, right.keys[0], right.node_id)

    # ==================================================================
    # range scan
    # ==================================================================
    def range_scan(self, lo, hi) -> RangeScanResult:
        """Collect rids for keys in [lo, hi]; read exactly their data pages."""
        if lo > hi:
            raise ValueError(f"empty range: lo={lo} > hi={hi}")
        try:
            leaf_id, path = self.inner.descend(lo)
        except LookupError:
            return RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
        self._charge_cpu(
            len(path) * math.log2(max(2, self.inner.fanout)) * CPU_KEY_COMPARE
        )
        device = self._data_device
        matches = 0
        leaves_visited = 0
        pages: set[int] = set()
        current: BPLeaf | None = self.leaves[leaf_id]
        while current is not None:
            self.store.read(current.node_id, sequential=leaves_visited > 0)
            leaves_visited += 1
            stop = False
            for key, rids in zip(current.keys, current.ridlists):
                if key > hi:
                    stop = True
                    break
                if key >= lo:
                    matches += len(rids)
                    pages.update(self.relation.page_of(t) for t in rids)
            if stop or current.next_leaf_id is None:
                break
            current = self.leaves[current.next_leaf_id]
        if self.config.clustered:
            # Rid lists hold first occurrences; the matching tuples are the
            # contiguous span of the sorted column.  The span is clamped to
            # the keys *this tree's leaves actually hold*: a shard of a
            # ShardedIndex indexes only its slice of the relation, and its
            # scan legs may reach up to the routing boundary — without the
            # clamp a cross-shard scan would count the neighbour shard's
            # boundary tuples twice.  For an unsharded tree the clamp is a
            # no-op (its leaves span the whole column).
            values = np.asarray(self.relation.columns[self.key_column])
            if self._lo_key is not None:
                lo = max(lo, self._lo_key)
                hi = min(hi, self._hi_key)
            if lo > hi:
                return RangeScanResult(matches=0, pages_read=0,
                                       leaves_visited=leaves_visited)
            first = int(np.searchsorted(values, lo, side="left"))
            last = int(np.searchsorted(values, hi, side="right")) - 1
            if last < first:
                return RangeScanResult(matches=0, pages_read=0,
                                       leaves_visited=leaves_visited)
            matches = last - first + 1
            pages = set(range(self.relation.page_of(first),
                              self.relation.page_of(last) + 1))
        ordered = sorted(pages)
        if device is not None:
            for i, pid in enumerate(ordered):
                sequential = i > 0 and pid == ordered[i - 1] + 1
                device.read_page(pid, sequential=sequential)
        return RangeScanResult(matches=matches, pages_read=len(ordered),
                               leaves_visited=leaves_visited)

    def range_scan_many(self, windows,
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]:
        """Batch counterpart of :meth:`range_scan` (same protocol as
        BF-Tree's :meth:`~repro.core.bf_tree.BFTree.range_scan_many`).

        Returns exactly ``[self.range_scan(lo, hi) for lo, hi in
        windows]`` — identical results and IOStats, clock equal up to
        float summation order — with the per-scan work vectorized where
        the exact index allows: windows are routed in one pass over the
        flattened directory, the clustered path skips the per-rid leaf
        walk entirely (its collected rids are discarded by the
        searchsorted recount anyway) and data-page runs are charged
        through :meth:`Device.read_batch` instead of a per-page loop.
        ``latency_sink`` receives one simulated per-scan latency per
        window, as the scalar loop would bracket them.  Invalid windows
        (``lo > hi``) are rejected up front, before any charges land.
        """
        wins = normalize_scan_windows(windows)
        n = len(wins)
        results = [
            RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
            for _ in range(n)
        ]
        clock = (
            self.store.device.clock if self.store.device is not None else None
        )
        track = latency_sink is not None and clock is not None
        latencies = [0.0] * n
        try:
            fences, leaf_ids, paths = self.inner.routing_table()
        except LookupError:
            if latency_sink is not None:
                latency_sink.extend(latencies)
            return results
        slots = route_batch(fences, [lo for lo, _ in wins])
        device = self._data_device
        values = np.asarray(self.relation.columns[self.key_column])
        for j in range(n):
            lo, hi = wins[j]
            res = results[j]
            start_t = clock.now() if track else 0.0
            leaf_id = leaf_ids[slots[j]]
            path = paths[leaf_id]
            for node_id in path:
                self.store.read(node_id)
            self._charge_cpu(
                len(path) * math.log2(max(2, self.inner.fanout))
                * CPU_KEY_COMPARE
            )
            matches = 0
            pages: set[int] = set()
            current: BPLeaf | None = self.leaves[leaf_id]
            while current is not None:
                self.store.read(current.node_id,
                                sequential=res.leaves_visited > 0)
                res.leaves_visited += 1
                if self.config.clustered:
                    # Leaf keys are sorted, so "some key > hi" (the
                    # scalar walk's stop test) is just the last key.
                    stop = bool(current.keys) and current.keys[-1] > hi
                else:
                    stop = False
                    for key, rids in zip(current.keys, current.ridlists):
                        if key > hi:
                            stop = True
                            break
                        if key >= lo:
                            matches += len(rids)
                            pages.update(
                                self.relation.page_of(t) for t in rids
                            )
                if stop or current.next_leaf_id is None:
                    break
                current = self.leaves[current.next_leaf_id]
            if self.config.clustered:
                c_lo, c_hi = lo, hi
                if self._lo_key is not None:
                    c_lo = max(lo, self._lo_key)
                    c_hi = min(hi, self._hi_key)
                if c_lo > c_hi:
                    if track:
                        latencies[j] = clock.now() - start_t
                    continue
                first = int(np.searchsorted(values, c_lo, side="left"))
                last = int(np.searchsorted(values, c_hi, side="right")) - 1
                if last < first:
                    if track:
                        latencies[j] = clock.now() - start_t
                    continue
                first_page = self.relation.page_of(first)
                last_page = self.relation.page_of(last)
                npages = last_page - first_page + 1
                if device is not None:
                    device.read_batch(
                        *classify_read_runs([(first_page, npages)])[:2],
                        last_page=last_page,
                    )
                res.matches = last - first + 1
                res.pages_read = npages
            else:
                ordered = sorted(pages)
                if device is not None and ordered:
                    n_random, n_seq, last_pid = classify_read_runs(
                        [(pid, 1) for pid in ordered]
                    )
                    device.read_batch(n_random, n_seq, last_page=last_pid)
                res.matches = matches
                res.pages_read = len(ordered)
            if track:
                latencies[j] = clock.now() - start_t
        if latency_sink is not None:
            latency_sink.extend(latencies)
        return results

    # ==================================================================
    # size accounting
    # ==================================================================
    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def size_pages(self) -> int:
        return self.n_leaves + self.inner.n_internal_nodes

    @property
    def size_bytes(self) -> int:
        return self.size_pages * self.config.page_size

    @property
    def height(self) -> int:
        return self.inner.height

    def leaves_in_order(self) -> list[BPLeaf]:
        targets = {l.next_leaf_id for l in self.leaves.values()
                   if l.next_leaf_id is not None}
        heads = [l for lid, l in self.leaves.items() if lid not in targets]
        if not heads:
            return []
        head = min(heads, key=lambda l: (l.keys[0] if l.keys else 0))
        chain = [head]
        while chain[-1].next_leaf_id is not None:
            chain.append(self.leaves[chain[-1].next_leaf_id])
        return chain

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BPlusTree(column={self.key_column!r}, leaves={self.n_leaves}, "
            f"height={self.height}, pages={self.size_pages})"
        )
