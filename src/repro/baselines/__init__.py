"""Baseline access methods the paper compares BF-Trees against."""

from repro.baselines.bptree import BPLeaf, BPlusTree, BPlusTreeConfig
from repro.baselines.compressed import PrefixCompressionModel
from repro.baselines.fd_tree import FDTree, FDTreeConfig
from repro.baselines.hash_index import HashIndex
from repro.baselines.interpolation import SortedFileSearch
from repro.baselines.silt import SiltConfig, SiltStore

__all__ = [
    "BPLeaf",
    "BPlusTree",
    "BPlusTreeConfig",
    "PrefixCompressionModel",
    "FDTree",
    "FDTreeConfig",
    "HashIndex",
    "SortedFileSearch",
    "SiltConfig",
    "SiltStore",
]
