"""Command-line interface: run the paper's experiments from a shell.

Subcommands::

    python -m repro sizes       --workload synthetic --column pk
    python -m repro probe       --index bf --fpp 1e-3 --config MEM/SSD
    python -m repro probe       --index bf --batch --probes 10000
    python -m repro sweep       --column pk --probes 200
    python -m repro model       --fpp 1e-3
    python -m repro workloads
    python -m repro serve-bench --shards 1 2 4 8 --mix read_heavy --skew zipfian
    python -m repro serve-bench --durable --wal-dir /tmp/svc --shards 4
    python -m repro serve-bench --rebalance --skew hotspot --shards 4
    python -m repro checkpoint  --index bf --dir /tmp/idx
    python -m repro recover     --dir /tmp/idx

Every command prints the same tables the benchmark harness produces, so
results are scriptable without pytest.  A single ``--seed`` flag seeds
every random stream (relation data, probe keys, service traces) through
:func:`repro.workloads.derive_seed`, making a full run reproducible
from one knob; without it each stream keeps its historical default.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

from repro.api import make_index, registered_backends
from repro.baselines import BPlusTree
from repro.core import BFTree, BFTreeConfig
from repro.harness import (
    break_even_table,
    format_table,
    run_probes,
    run_service,
    sweep_bf_tree,
    us,
)
from repro.model import FIGURE4_PARAMS, compare_at, summarize
from repro.service import ShardedIndex
from repro.storage import CONFIGS_BY_NAME, FIVE_CONFIGS
from repro.workloads import (
    MIXES,
    derive_seed,
    generate_trace,
    point_probes,
    shd,
    synthetic,
    tpch,
)

def _seeded(module) -> Callable:
    """Relation factory honouring the master seed: ``seed=None`` omits
    the kwarg so each generator keeps its historical default (42/7/99)
    and runs without --seed reproduce all previously published numbers."""
    return lambda n, seed: (
        module.generate(n) if seed is None else module.generate(n, seed=seed)
    )


WORKLOADS: dict[str, Callable] = {
    "synthetic": _seeded(synthetic),
    "tpch": _seeded(tpch),
    "shd": _seeded(shd),
}

DEFAULT_COLUMNS = {"synthetic": "pk", "tpch": "shipdate", "shd": "timestamp"}


def _build_relation(args: argparse.Namespace):
    try:
        factory = WORKLOADS[args.workload]
    except KeyError:
        raise SystemExit(
            f"unknown workload {args.workload!r}; pick from {sorted(WORKLOADS)}"
        )
    master = getattr(args, "seed", None)
    relation = factory(
        args.tuples, None if master is None else derive_seed(master, "relation")
    )
    column = args.column or DEFAULT_COLUMNS[args.workload]
    if column not in relation.columns:
        raise SystemExit(
            f"column {column!r} not in workload {args.workload!r} "
            f"(have {sorted(relation.columns)})"
        )
    return relation, column


def _build_index(kind: str, relation, column: str, fpp: float,
                 unique: bool):
    """Thin registry lookup: every registered backend is buildable here,
    and the error path lists the same names ``--index`` advertises (one
    source of truth — :func:`repro.api.registered_backends`)."""
    try:
        return make_index(kind, relation, column, unique=unique, fpp=fpp)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_sizes(args: argparse.Namespace) -> int:
    relation, column = _build_relation(args)
    unique = column == "pk"
    bp = BPlusTree.bulk_load(relation, column, unique=unique)
    rows = [["B+-Tree", "-", bp.size_pages, "-"]]
    for fpp in args.fpp:
        tree = BFTree.bulk_load(relation, column, BFTreeConfig(fpp=fpp),
                                unique=unique)
        rows.append([
            "BF-Tree", f"{fpp:g}", tree.size_pages,
            f"{bp.size_pages / tree.size_pages:.2f}x",
        ])
    print(format_table(
        ["index", "fpp", "pages", "capacity gain"], rows,
        title=f"Index sizes: {args.workload}.{column} "
              f"({relation.ntuples} tuples)",
    ))
    return 0


def cmd_probe(args: argparse.Namespace) -> int:
    relation, column = _build_relation(args)
    unique = column == "pk"
    index = _build_index(args.index, relation, column, args.fpp[0], unique)
    probes = point_probes(relation, column, args.probes,
                          hit_rate=args.hit_rate,
                          seed=derive_seed(args.seed, "probes"))
    configs = (
        [CONFIGS_BY_NAME[args.config]] if args.config else list(FIVE_CONFIGS)
    )
    # The Index protocol guarantees search_many on every backend (the
    # generic scalar-loop fallback where no vectorized engine exists),
    # so --batch works uniformly instead of silently degrading.
    batch = args.batch
    rows = []
    payload = []
    for config in configs:
        stats = run_probes(index, probes, config, warm=args.warm,
                           batch=batch)
        rows.append([
            config.name, f"{us(stats.avg_latency):.1f}",
            f"{stats.false_reads_per_search:.3f}",
            f"{stats.data_reads_per_search:.2f}",
            f"{stats.index_reads_per_search:.2f}",
            f"{stats.hit_rate:.0%}",
        ])
        payload.append({
            "index": args.index,
            "workload": args.workload,
            "column": column,
            "config": config.name,
            "batch": batch,
            "warm": args.warm,
            "n_probes": stats.n_probes,
            "hit_rate": stats.hit_rate,
            "avg_latency_us": us(stats.avg_latency),
            "false_reads_per_search": stats.false_reads_per_search,
            "data_reads_per_search": stats.data_reads_per_search,
            "index_reads_per_search": stats.index_reads_per_search,
        })
    size = index.size_pages
    print(format_table(
        ["config", "latency (us)", "false reads", "data reads",
         "index reads", "hit rate"],
        rows,
        title=f"{args.index} probe on {args.workload}.{column} "
              f"({size} index pages, warm={args.warm}, batch={batch})",
    ))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    relation, column = _build_relation(args)
    unique = column == "pk"
    probes = point_probes(relation, column, args.probes,
                          hit_rate=args.hit_rate,
                          seed=derive_seed(args.seed, "probes"))
    sweep = sweep_bf_tree(relation, column, probes, fpps=args.fpp,
                          unique=unique, warm=args.warm)
    rows = []
    for fpp in sweep.fpps:
        rows.append(
            [f"{fpp:g}", f"{sweep.capacity_gain(fpp):.1f}x"]
            + [
                f"{sweep.normalized_performance(fpp, c):.3f}"
                for c in sweep.configs
            ]
        )
    print(format_table(
        ["fpp", "gain"] + sweep.configs, rows,
        title=f"BF-Tree sweep on {args.workload}.{column} "
              "(normalized performance vs B+-Tree; >1 means BF wins)",
    ))
    table = break_even_table(sweep, threshold=args.parity)
    print(format_table(
        ["config", "break-even capacity gain"],
        [[k, f"{v:.1f}x" if v else "never"] for k, v in table.items()],
        title=f"break-even points (parity threshold {args.parity})",
    ))
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    params = FIGURE4_PARAMS.with_fpp(args.fpp[0])
    summary = summarize(params)
    print(format_table(
        ["symbol", "value"],
        [[k, f"{v:,.2f}"] for k, v in summary.items()],
        title=f"Section 5 analytical model at fpp={params.fpp:g}",
    ))
    point = compare_at(params)
    print(format_table(
        ["series", "normalized to B+-Tree"],
        [
            ["BF-Tree time", f"{point.bf_time:.3f}"],
            ["FD-Tree time", f"{point.fd_time:.3f}"],
            ["SILT time (trie cached)", f"{point.silt_time_cached:.3f}"],
            ["SILT time (trie loaded)", f"{point.silt_time_loaded:.3f}"],
            ["BF-Tree size", f"{point.bf_size:.4f}"],
            ["compressed B+-Tree size", f"{point.compressed_size:.2f}"],
            ["SILT size", f"{point.silt_size:.2f}"],
        ],
        title="Figure 4 comparison at this fpp",
    ))
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Build an index and write a durable checkpoint to --dir."""
    from repro.persist import DurableIndex, read_manifest

    relation, column = _build_relation(args)
    unique = column == "pk"
    inner = _build_index(args.index, relation, column, args.fpp[0], unique)
    durable = DurableIndex(
        inner, args.dir, sync_every=args.sync_every,
        checkpoint_every=args.checkpoint_every, kind=args.index,
        column=column, unique=unique, fpp=args.fpp[0],
    )
    manifest = read_manifest(durable.manifest_path)
    print(format_table(
        ["field", "value"],
        [
            ["backend", manifest["backend"]],
            ["column", manifest["column"]],
            ["snapshot bytes", f"{manifest['snapshot']['bytes']:,}"],
            ["snapshot crc32", f"{manifest['snapshot']['crc32']:#010x}"],
            ["WAL generation", manifest["wal"]["generation"]],
            ["directory", str(durable.directory)],
        ],
        title=f"checkpoint: {args.index} on {args.workload}.{column} "
              f"({relation.ntuples} tuples)",
    ))
    durable.close()
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Recover a durable index from --dir and report what came back."""
    from repro.persist import recover, replay_wal
    from repro.persist.errors import PersistError

    relation, _ = _build_relation(args)
    try:
        index = recover(args.dir, relation)
    except PersistError as exc:
        raise SystemExit(f"recovery failed: {exc}") from None
    records, _ = replay_wal(index.wal_path)
    print(format_table(
        ["field", "value"],
        [
            ["backend", index._kind],
            ["height", index.height],
            ["leaves", index.n_leaves],
            ["index pages", index.size_pages],
            ["WAL ops replayed", len(records)],
            ["WAL generation", index._generation],
        ],
        title=f"recovered: {args.dir}",
    ))
    index.close()
    return 0


def _serve_bench_rebalance(args, relation, column, trace, config,
                           unique) -> int:
    """Windowed elastic replay per shard count, rebalancer attached."""
    import numpy as np

    from repro.service import (
        LatencySummary,
        Rebalancer,
        RebalancerConfig,
        run_elastic_service,
    )
    from repro.workloads import OP_READ

    rows = []
    reports = []
    for n_shards in args.shards:
        try:
            service = ShardedIndex.build(
                relation, column, n_shards=n_shards, kind=args.index,
                fpp=args.fpp[0], unique=unique,
            )
            rebalancer = Rebalancer(service, RebalancerConfig(
                hot_factor=args.hot_factor,
                cold_factor=args.cold_factor,
                sustain=args.sustain,
                cooldown=args.cooldown,
            ))
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        report = run_elastic_service(
            service, trace, config,
            rebalancer=rebalancer,
            window_ops=args.window_ops,
            warm=args.warm,
            batch=not args.no_batch,
            write_batch=False if args.no_write_batch else None,
            scan_batch=False if args.no_scan_batch else None,
            threads=args.threads,
            executor=args.executor,
            workers=args.workers,
        )
        reports.append(report)
        reads = LatencySummary.from_latencies(
            report.op_latencies[np.asarray(report.op_codes) == OP_READ]
        )
        rows.append([
            f"{report.initial_shards}->{report.final_shards}",
            str(report.final_epoch),
            f"{rebalancer.log.n_splits}/{rebalancer.log.n_merges}",
            f"{us(reads.p50):.1f}",
            f"{us(reads.p95):.1f}",
            f"{us(reads.p99):.1f}",
            f"{report.windows.mean_load_balance():.2f}",
            f"{report.windows.worst_load_balance():.2f}",
        ])
    print(format_table(
        ["shards", "epoch", "splits/merges", "read p50 (us)", "p95 (us)",
         "p99 (us)", "mean load bal", "worst load bal"],
        rows,
        title=f"serve-bench --rebalance: {args.index} on "
              f"{args.workload}.{column}, mix={args.mix}, "
              f"skew={args.skew}, {args.ops} ops x "
              f"{args.window_ops}-op windows, config={config}",
    ))
    for report in reports:
        for decision in report.log:
            print(f"  window {decision.window:>3}  epoch "
                  f"{decision.epoch:>2}  {decision.action:<5} "
                  f"{list(decision.source)} -> {list(decision.result)} "
                  f"(share {decision.share:.2f})")
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Throughput and tail latency of the sharded service vs shard count."""
    relation, column = _build_relation(args)
    unique = column == "pk"
    if args.durable and args.index == "durable":
        raise SystemExit("--durable already wraps every shard; pick the "
                         "base backend with --index (e.g. --index bf)")
    if args.rebalance and args.durable:
        raise SystemExit("--rebalance drives live in-memory splits/merges; "
                         "durable topology changes go through "
                         "repro.persist.split_durable_shard instead")
    trace = generate_trace(
        relation, column, mix=args.mix, n_ops=args.ops, skew=args.skew,
        theta=args.theta, seed=derive_seed(args.seed, "trace"),
        hit_rate=args.hit_rate, phases=args.phases,
        hotspot_width=args.hotspot_width,
    )
    config = args.config or "MEM/SSD"
    if args.rebalance:
        return _serve_bench_rebalance(args, relation, column, trace,
                                      config, unique)
    rows = []
    reports = []
    for n_shards in args.shards:
        # Registry-driven build: any registered backend serves; the
        # builder consumes fpp where it applies (BF) and ignores it
        # elsewhere.  Unshardable backends come back as one shard.
        try:
            if args.durable:
                import tempfile
                from pathlib import Path

                from repro.persist import make_durable_service

                wal_root = Path(
                    args.wal_dir
                    or tempfile.mkdtemp(prefix="repro-serve-wal-")
                )
                service = make_durable_service(
                    relation, column, wal_root / f"shards-{n_shards}",
                    n_shards=n_shards, kind=args.index,
                    sync_every=args.sync_every, fpp=args.fpp[0],
                    unique=unique,
                )
            else:
                service = ShardedIndex.build(
                    relation, column, n_shards=n_shards, kind=args.index,
                    fpp=args.fpp[0], unique=unique,
                )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        report = run_service(
            service, trace, config, warm=args.warm,
            batch=not args.no_batch,
            write_batch=False if args.no_write_batch else None,
            scan_batch=False if args.no_scan_batch else None,
            threads=args.threads,
            executor=args.executor,
            workers=args.workers,
        )
        reports.append(report)
        reads = report.latency("read")
        rows.append([
            str(report.n_shards),
            f"{us(reads.p50):.1f}",
            f"{us(reads.p95):.1f}",
            f"{us(reads.p99):.1f}",
            f"{report.stats.throughput():,.0f}",
            f"{report.stats.wall_throughput():,.0f}",
            f"{report.stats.load_balance:.2f}",
        ])
    print(format_table(
        ["shards", "read p50 (us)", "p95 (us)", "p99 (us)",
         "ops/sim-sec", "ops/wall-sec", "load bal"],
        rows,
        title=f"serve-bench: {args.index} on {args.workload}.{column}, "
              f"mix={args.mix}, skew={args.skew}, {args.ops} ops, "
              f"config={config}",
    ))
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name, factory in WORKLOADS.items():
        relation = factory(args.tuples, None)
        column = DEFAULT_COLUMNS[name]
        values = relation.columns[column]
        import numpy as np

        distinct = len(np.unique(np.asarray(values)))
        rows.append([
            name, relation.ntuples, relation.npages, column, distinct,
            f"{relation.ntuples / distinct:.1f}",
        ])
    print(format_table(
        ["workload", "tuples", "pages", "key column", "distinct keys",
         "avg cardinality"],
        rows,
        title="Workload generators",
    ))
    return 0


def _changed_py_files(root: "Path", base: str | None) -> list[str] | None:
    """Lintable files changed since the merge-base with ``base``.

    Returns None when git (or the base ref) is unavailable, in which
    case the caller falls back to a full run.
    """
    import subprocess

    from repro.analysis.lint.engine import TARGET_DIRS

    def run(*cmd: str) -> "subprocess.CompletedProcess[str]":
        return subprocess.run(["git", "-C", str(root), *cmd],
                              capture_output=True, text=True, timeout=60)

    try:
        merge_base = None
        for ref in ([base] if base else ["origin/main", "main"]):
            result = run("merge-base", "HEAD", ref)
            if result.returncode == 0:
                merge_base = result.stdout.strip()
                break
        if merge_base is None:
            return None
        diff = run("diff", "--name-only", merge_base)
        if diff.returncode != 0:
            return None
        files = {ln.strip() for ln in diff.stdout.splitlines() if ln.strip()}
        untracked = run("ls-files", "--others", "--exclude-standard")
        if untracked.returncode == 0:
            files.update(ln.strip() for ln in untracked.stdout.splitlines()
                         if ln.strip())
    except (OSError, subprocess.SubprocessError):
        return None
    return sorted(
        f for f in files
        if f.endswith(".py") and f.split("/", 1)[0] in TARGET_DIRS
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint; exit 0 clean, 1 on findings, 2 on engine error."""
    import traceback
    from pathlib import Path

    from repro.analysis import lint as reprolint

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parents[2])
    baseline = Path(args.baseline) if args.baseline else Path(
        "reprolint-baseline.json")
    if not baseline.is_absolute():
        baseline = root / baseline
    # A snapshot must see the *unfiltered* findings.
    baseline_path = None if args.write_baseline else baseline
    try:
        if args.changed:
            changed = _changed_py_files(root, args.base)
            if changed is None:
                print("reprolint: --changed needs git and the base ref; "
                      "running the full tree instead", file=sys.stderr)
                violations = reprolint.lint_repo(
                    root, baseline_path=baseline_path)
            else:
                paths = [Path(f) for f in changed if (root / f).is_file()]
                violations = reprolint.lint_files(
                    paths, root, baseline_path=baseline_path)
        else:
            violations = reprolint.lint_repo(
                root, baseline_path=baseline_path)
        if args.write_baseline:
            reprolint.write_baseline(violations, baseline)
            print(f"reprolint: baseline written to {baseline} "
                  f"({len(violations)} findings)")
            return 0
        renderer = {
            "text": reprolint.render_text,
            "json": reprolint.render_json,
            "sarif": reprolint.render_sarif,
        }[args.format]
        rendered = renderer(violations)
        if args.out:
            Path(args.out).write_text(rendered, "utf-8")
        else:
            sys.stdout.write(rendered)
        return 1 if violations else 0
    except Exception:
        traceback.print_exc()
        return 2


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="synthetic",
                        choices=sorted(WORKLOADS))
    parser.add_argument("--column", default=None,
                        help="indexed column (defaults per workload)")
    parser.add_argument("--tuples", type=int, default=65536,
                        help="relation size in tuples")
    parser.add_argument("--fpp", type=float, nargs="+",
                        default=[0.2, 0.02, 2e-3, 2e-4, 2e-6],
                        help="false-positive probabilities")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed for every random stream "
                             "(relation data, probe keys, traces); "
                             "omit to keep each stream's historical "
                             "default")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BF-Tree (VLDB 2014) reproduction toolkit",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the structural sanitizer after every mutation batch "
             "(equivalent to REPRO_SANITIZE=1; validates leaf chains, "
             "filter accounting, tombstones and shard routing); place "
             "before the subcommand",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sizes = sub.add_parser("sizes", help="Table-2-style index sizes")
    _add_common(p_sizes)
    p_sizes.set_defaults(func=cmd_sizes)

    p_probe = sub.add_parser("probe", help="measure point probes")
    _add_common(p_probe)
    p_probe.add_argument("--index", default="bf",
                         choices=registered_backends(),
                         help="index backend (from the repro.api registry)")
    p_probe.add_argument("--config", default=None,
                         choices=sorted(CONFIGS_BY_NAME))
    p_probe.add_argument("--probes", type=int, default=200)
    p_probe.add_argument("--hit-rate", type=float, default=1.0)
    p_probe.add_argument("--warm", action="store_true")
    p_probe.add_argument("--batch", action="store_true",
                         help="replay the probe set through the index's "
                              "search_many (vectorized batch-probe engine "
                              "where one exists, the protocol's bit-"
                              "identical scalar-loop fallback elsewhere; "
                              "same simulated results on every backend)")
    p_probe.add_argument("--out", default=None,
                         help="write the per-config probe stats as JSON "
                              "to this file")
    p_probe.set_defaults(func=cmd_probe)

    p_sweep = sub.add_parser("sweep", help="fpp sweep + break-even analysis")
    _add_common(p_sweep)
    p_sweep.add_argument("--probes", type=int, default=150)
    p_sweep.add_argument("--hit-rate", type=float, default=1.0)
    p_sweep.add_argument("--warm", action="store_true")
    p_sweep.add_argument("--parity", type=float, default=0.98)
    p_sweep.set_defaults(func=cmd_sweep)

    p_model = sub.add_parser("model", help="Section 5 analytical model")
    p_model.add_argument("--fpp", type=float, nargs="+", default=[1e-3])
    p_model.set_defaults(func=cmd_model)

    p_serve = sub.add_parser(
        "serve-bench",
        help="sharded service: throughput + tail latency vs shard count",
    )
    _add_common(p_serve)
    p_serve.add_argument("--index", default="bf",
                         choices=registered_backends(),
                         help="index backend (every registered backend "
                              "serves; leaf-sliceable trees are range-"
                              "partitioned, the rest run single-shard)")
    p_serve.add_argument("--shards", type=int, nargs="+",
                         default=[1, 2, 4, 8],
                         help="shard counts to measure")
    p_serve.add_argument("--mix", default="read_heavy",
                         choices=sorted(MIXES),
                         help="YCSB-style operation mix")
    p_serve.add_argument("--skew", default="zipfian",
                         choices=["zipfian", "uniform", "hotspot"],
                         help="key popularity distribution (hotspot = a "
                              "contiguous Zipfian hot region drifting "
                              "across the key space in --phases steps)")
    p_serve.add_argument("--theta", type=float, default=0.99,
                         help="Zipfian skew parameter (0, 1)")
    p_serve.add_argument("--phases", type=int, default=4,
                         help="hotspot phases per trace (skew=hotspot)")
    p_serve.add_argument("--hotspot-width", type=float, default=0.25,
                         help="hot region width as a fraction of the key "
                              "domain (skew=hotspot)")
    p_serve.add_argument("--ops", type=int, default=2000,
                         help="operations per trace")
    p_serve.add_argument("--hit-rate", type=float, default=1.0)
    p_serve.add_argument("--config", default=None,
                         choices=sorted(CONFIGS_BY_NAME),
                         help="storage config (default MEM/SSD)")
    p_serve.add_argument("--warm", action="store_true")
    p_serve.add_argument("--no-batch", action="store_true",
                         help="disable the vectorized batch-probe engine "
                              "(per-op dispatch; same simulated results; "
                              "also disables write and scan batching "
                              "unless --no-write-batch/--no-scan-batch "
                              "say otherwise)")
    p_serve.add_argument("--no-write-batch", action="store_true",
                         help="disable Router write batching (inserts "
                              "dispatch per op instead of through the "
                              "vectorized insert_many batch write engine; "
                              "same simulated results)")
    p_serve.add_argument("--no-scan-batch", action="store_true",
                         help="disable Router scan batching (scans flush "
                              "the read buffer and dispatch per op "
                              "instead of riding the shared read-phase "
                              "buffer into the vectorized range_scan_many "
                              "batch scan engine; same simulated results)")
    p_serve.add_argument("--threads", type=int, default=None,
                         help="replay shards on a thread pool of this size "
                              "(GIL-bound: overlap is limited to NumPy "
                              "passes; use --executor process for "
                              "core-count speedups)")
    p_serve.add_argument("--executor", default=None,
                         choices=["serial", "thread", "process"],
                         help="shard execution model: serial (reference), "
                              "thread (GIL-bound pool), or process "
                              "(one forked worker per shard, shared-memory "
                              "batches, true multi-core parallelism); "
                              "default follows --threads")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="cap the process executor's worker pool "
                              "(default: one worker per shard)")
    p_serve.add_argument("--rebalance", action="store_true",
                         help="attach the hot-shard Rebalancer: replay in "
                              "--window-ops windows, splitting sustained "
                              "hot shards and merging cold neighbours "
                              "live; reports the decision log")
    p_serve.add_argument("--window-ops", type=int, default=256,
                         help="ops per load window when --rebalance")
    p_serve.add_argument("--hot-factor", type=float, default=1.7,
                         help="split when a shard's clock share exceeds "
                              "hot-factor / n for --sustain windows")
    p_serve.add_argument("--cold-factor", type=float, default=0.6,
                         help="merge an adjacent pair whose combined "
                              "share stays under cold-factor * 2 / n")
    p_serve.add_argument("--sustain", type=int, default=1,
                         help="consecutive windows before acting")
    p_serve.add_argument("--cooldown", type=int, default=1,
                         help="quiet windows after any topology action")
    p_serve.add_argument("--durable", action="store_true",
                         help="wrap every shard in a DurableIndex: "
                              "mutations are WAL-logged (fsync-batched) "
                              "before applying, and each shard owns a "
                              "recoverable checkpoint directory")
    p_serve.add_argument("--wal-dir", default=None,
                         help="root directory for the per-shard WAL + "
                              "snapshot directories (default: a fresh "
                              "temp directory); recover later with "
                              "repro.persist.recover_service")
    p_serve.add_argument("--sync-every", type=int, default=32,
                         help="WAL records per fsync when --durable "
                              "(1 acknowledges every op individually)")
    p_serve.add_argument("--json", action="store_true",
                         help="also print the full reports as JSON")
    p_serve.add_argument("--out", default=None,
                         help="write the full JSON reports to this file")
    # The sweep grid's 0.2 head would drown the service in false reads;
    # serve at the paper's accurate end instead.
    p_serve.set_defaults(func=cmd_serve_bench, fpp=[1e-3])

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="build an index and write a durable checkpoint directory",
    )
    _add_common(p_ckpt)
    p_ckpt.add_argument("--index", default="bf",
                        choices=[n for n in registered_backends()
                                 if n != "durable"],
                        help="backend to wrap (durable itself is the "
                             "wrapper this command builds)")
    p_ckpt.add_argument("--dir", required=True,
                        help="durability directory (manifest + snapshot "
                             "+ WAL)")
    p_ckpt.add_argument("--sync-every", type=int, default=1,
                        help="WAL records per fsync")
    p_ckpt.add_argument("--checkpoint-every", type=int, default=None,
                        help="auto-checkpoint after this many mutations")
    p_ckpt.set_defaults(func=cmd_checkpoint)

    p_rec = sub.add_parser(
        "recover",
        help="recover a durable index (snapshot + WAL-tail replay)",
    )
    _add_common(p_rec)
    p_rec.add_argument("--dir", required=True,
                       help="durability directory written by checkpoint")
    p_rec.set_defaults(func=cmd_recover)

    p_wl = sub.add_parser("workloads", help="workload generator statistics")
    p_wl.add_argument("--tuples", type=int, default=32768)
    p_wl.set_defaults(func=cmd_workloads)

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint's project-invariant static analysis",
    )
    p_lint.add_argument("--root", default=None,
                        help="repository root to lint (defaults to the "
                             "checkout this package was imported from)")
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="finding renderer (text, json, or SARIF 2.1.0)")
    p_lint.add_argument("--out", default=None,
                        help="write rendered findings to this file instead "
                             "of stdout")
    p_lint.add_argument("--changed", action="store_true",
                        help="lint only files changed since the merge-base "
                             "with --base (full run if git is unavailable)")
    p_lint.add_argument("--base", default=None,
                        help="base ref for --changed (default: origin/main, "
                             "then main)")
    p_lint.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "<root>/reprolint-baseline.json; matched on "
                             "rule+path+message, line-insensitive)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="snapshot the current findings as the new "
                             "baseline and exit 0")
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sanitize:
        from repro.analysis.sanitize import force

        force(True)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
