"""Router: splits mixed-operation batches per shard and dispatches them.

The router turns a :class:`~repro.workloads.mixed.MixedTrace` into
per-shard work lists and replays them:

* point reads are routed by key and **batched** — consecutive reads on
  one shard flow through the shard's vectorized ``search_many`` (the
  PR-1 batch-probe engine), with the per-op latency sink recovering the
  exact scalar latencies for the percentile report;
* inserts are **write-batched** the same way: consecutive inserts on
  one shard flush through ``insert_many`` (the vectorized batch write
  engine), with per-op latencies from its sink; a read or scan arrival
  flushes the write buffer first, so an operation issued after an
  insert always observes it (read-your-writes order is preserved);
* scans are executed in place, clock-bracketed per op;
* a scan whose window spans multiple shards is split into per-shard
  legs (scatter-gather); its latency is the *sum* of its legs'
  simulated time, and its result merges the legs' counts.

Per-shard operation order always follows trace order, so a read issued
after an insert to the same shard observes it.  Because every shard owns
a private tree, stack and clock, shards share no mutable state — the
optional thread pool (``threads=N``) replays shards concurrently for
real wall-clock overlap (NumPy filter passes release the GIL; the pure
-Python portions interleave), with results scattered back into trace
order afterwards.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.bf_tree import RangeScanResult, SearchResult
from repro.service.sharded import ShardedIndex
from repro.service.stats import ServiceStats
from repro.workloads.mixed import OP_INSERT, OP_READ, OP_SCAN, MixedTrace


@dataclass(frozen=True)
class _SubOp:
    """One shard-local unit of work derived from a trace operation."""

    op_index: int
    code: int
    key: object
    tid: int = -1
    sub_lo: object = None
    sub_hi: object = None


class Router:
    """Dispatches trace operations to the shards of a :class:`ShardedIndex`."""

    def __init__(
        self,
        service: ShardedIndex,
        batch: bool = True,
        batch_size: int = 512,
        threads: int | None = None,
        write_batch: bool | None = None,
    ) -> None:
        """``batch`` controls read batching; ``write_batch`` controls
        insert batching and defaults to following ``batch``.  Both modes
        produce bit-identical simulated results to per-op dispatch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1 (or None for serial)")
        self.service = service
        self.batch = batch
        self.batch_size = batch_size
        self.threads = threads
        self.write_batch = batch if write_batch is None else write_batch

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, trace: MixedTrace) -> list[list[_SubOp]]:
        """Split the trace into per-shard sub-op lists (trace order kept)."""
        per_shard: list[list[_SubOp]] = [[] for _ in self.service.shards]
        assign = self.service.route(trace.keys)
        for i in range(len(trace)):
            code = int(trace.ops[i])
            key = trace.keys[i].item()
            if code == OP_READ:
                per_shard[assign[i]].append(_SubOp(i, code, key))
            elif code == OP_INSERT:
                per_shard[assign[i]].append(
                    _SubOp(i, code, key, tid=int(trace.tids[i]))
                )
            else:  # OP_SCAN: one leg per overlapping shard
                hi = key + int(trace.scan_widths[i]) - 1
                for s, sub_lo, sub_hi in self.service.scan_plan(key, hi):
                    per_shard[s].append(
                        _SubOp(i, code, key, sub_lo=sub_lo, sub_hi=sub_hi)
                    )
        return per_shard

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, trace: MixedTrace
               ) -> tuple[list[object], ServiceStats]:
        """Replay ``trace`` against the bound service.

        Returns (per-op results aligned with the trace, ServiceStats).
        Reads yield :class:`SearchResult`, scans a merged
        :class:`RangeScanResult`, inserts ``None``.
        """
        if any(not shard.bound for shard in self.service.shards):
            raise RuntimeError("service is not bound; call bind() first")
        per_shard = self.plan(trace)
        io_before = [
            shard.stack.stats.snapshot() for shard in self.service.shards
        ]
        clock_before = [
            shard.stack.clock.now() for shard in self.service.shards
        ]
        t0 = time.perf_counter()
        if self.threads is not None and self.service.n_shards > 1:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                outcomes = list(
                    pool.map(
                        self._replay_shard,
                        range(self.service.n_shards),
                        per_shard,
                    )
                )
        else:
            outcomes = [
                self._replay_shard(s, subops)
                for s, subops in enumerate(per_shard)
            ]
        wall_secs = time.perf_counter() - t0

        results: list[object] = [None] * len(trace)
        latencies = np.zeros(len(trace), dtype=np.float64)
        for shard_outcome in outcomes:
            for op_index, code, latency, result in shard_outcome:
                latencies[op_index] += latency
                if code == OP_SCAN:
                    merged = results[op_index]
                    if merged is None:
                        merged = RangeScanResult(
                            matches=0, pages_read=0, leaves_visited=0
                        )
                        results[op_index] = merged
                    merged.matches += result.matches
                    merged.pages_read += result.pages_read
                    merged.leaves_visited += result.leaves_visited
                else:
                    results[op_index] = result
        stats = ServiceStats(
            per_shard_io=[
                shard.stack.stats.diff(before)
                for shard, before in zip(self.service.shards, io_before)
            ],
            per_shard_clock=[
                shard.stack.clock.now() - before
                for shard, before in zip(self.service.shards, clock_before)
            ],
            op_codes=trace.ops,
            op_latencies=latencies,
            wall_secs=wall_secs,
        )
        return results, stats

    # ------------------------------------------------------------------
    def _replay_shard(
        self, s: int, subops: list[_SubOp]
    ) -> list[tuple[int, int, float, object]]:
        """Run one shard's sub-ops in order; return (op_index, code,
        latency, result) records (thread-confined, merged by replay)."""
        shard = self.service.shards[s]
        index = shard.index
        clock = shard.stack.clock
        out: list[tuple[int, int, float, object]] = []
        read_buffer: list[_SubOp] = []
        write_buffer: list[_SubOp] = []

        def flush_reads() -> None:
            if not read_buffer:
                return
            for start in range(0, len(read_buffer), self.batch_size):
                chunk = read_buffer[start : start + self.batch_size]
                if self.batch:
                    sink: list[float] = []
                    chunk_results = index.search_many(
                        [op.key for op in chunk], latency_sink=sink
                    )
                    for op, latency, result in zip(chunk, sink,
                                                   chunk_results):
                        out.append((op.op_index, op.code, latency, result))
                else:
                    for op in chunk:
                        begin = clock.now()
                        result = index.search(op.key)
                        out.append(
                            (op.op_index, op.code, clock.now() - begin,
                             result)
                        )
            read_buffer.clear()

        def flush_writes() -> None:
            if not write_buffer:
                return
            for start in range(0, len(write_buffer), self.batch_size):
                chunk = write_buffer[start : start + self.batch_size]
                if self.write_batch:
                    sink: list[float] = []
                    self.service.insert_many_on(
                        shard,
                        [op.key for op in chunk],
                        [op.tid for op in chunk],
                        latency_sink=sink,
                    )
                    for op, latency in zip(chunk, sink):
                        out.append((op.op_index, op.code, latency, None))
                else:
                    for op in chunk:
                        begin = clock.now()
                        self.service.insert_on(shard, op.key, op.tid)
                        out.append(
                            (op.op_index, op.code, clock.now() - begin,
                             None)
                        )
            write_buffer.clear()

        # At most one buffer is ever non-empty: an op of the other kind
        # flushes it first, which keeps per-shard trace order (a read
        # issued after an insert observes it, and vice versa).
        for op in subops:
            if op.code == OP_READ:
                flush_writes()
                read_buffer.append(op)
            elif op.code == OP_INSERT:
                flush_reads()
                write_buffer.append(op)
            else:
                flush_reads()
                flush_writes()
                begin = clock.now()
                result = index.range_scan(op.sub_lo, op.sub_hi)
                out.append(
                    (op.op_index, op.code, clock.now() - begin, result)
                )
        flush_reads()
        flush_writes()
        return out
