"""Router: splits mixed-operation batches per shard and dispatches them.

The router turns a :class:`~repro.workloads.mixed.MixedTrace` into
per-shard work lists and hands them to a pluggable
:class:`~repro.service.executor.ShardExecutor` for execution:

* point reads are routed by key and **batched** — consecutive reads on
  one shard flow through the shard's vectorized ``search_many`` (the
  PR-1 batch-probe engine), with the per-op latency sink recovering the
  exact scalar latencies for the percentile report;
* inserts are **write-batched** the same way: consecutive inserts on
  one shard flush through ``insert_many`` (the vectorized batch write
  engine), with per-op latencies from its sink; a read or scan arrival
  flushes the write buffer first, so an operation issued after an
  insert always observes it (read-your-writes order is preserved);
* scans are **scan-batched** alongside the reads: scans and point
  reads are both read-only, so they share one read-phase buffer — a
  scan arrival no longer flushes the read buffer (only writes fence
  the read phase) — and each flush dispatches the reads through
  ``search_many`` and the scans through the vectorized
  ``range_scan_many`` batch scan engine, per-op latencies from their
  sinks;
* a scan whose window spans multiple shards is split into per-shard
  legs (scatter-gather, planned vectorized via ``scan_plan_many``);
  its latency is the *sum* of its legs' simulated time, and its result
  merges the legs' counts.

**Topology discipline.**  Routing goes through the service's
:class:`~repro.service.routing.RoutingTable`; plan-time shard ordinals
are resolved to *stable shard ids* before any work is buffered, and
every flush re-resolves its shard id through the table at dispatch time
(reprolint rule P4 forbids retaining ``shards[i]`` objects here).  The
Router registers a **drain hook** with the service for its lifetime:
when a shard's range is about to migrate (``split_shard`` /
``merge_shards``), any buffered sub-ops for that shard are flushed to
the *old* shard before the epoch flips — read-your-writes holds across
live topology changes (the process executor additionally tears down and
resynchronizes its workers at the drain, and respawns them under the
new epoch).  Should a buffered shard id nonetheless vanish (retired
mid-replay), the flush falls back to service-level batch calls, which
re-route each op by key under the new epoch.

Per-shard operation order always follows trace order, so a read issued
after an insert to the same shard observes it.  Because every shard owns
a private tree, stack and clock, shards share no mutable state — which
executor replays them is a pure deployment knob:

===========  ==========================================================
``serial``   One shard after another on the calling thread.  The
             reference semantics; lowest overhead for small traces.
``thread``   One thread per shard (``threads=N`` cap).  **GIL-bound**:
             only NumPy filter passes overlap in wall-clock time; the
             pure-Python replay portions time-slice one core.  Kept for
             compatibility — do not expect core-count speedups.
``process``  One long-lived forked worker per shard (``workers=N``
             cap), batches shipped via shared memory.  Real multi-core
             parallelism; the choice for throughput on ≥ 2 cores.
===========  ==========================================================

All three produce bit-identical results, IOStats and per-op simulated
latencies (``tests/test_service.py::TestExecutorEquivalence``).  Live
topology changes remain a control-plane action: trigger them between
replay calls (as the elastic control loop does) or from the replaying
thread via a drain hook — not concurrently from another thread.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.api.results import RangeScanResult
from repro.service.executor import ReplayCore, ShardExecutor, SubOp, make_executor
from repro.service.sharded import ShardedIndex
from repro.service.stats import ServiceStats
from repro.storage.iostats import IOStats
from repro.workloads.mixed import OP_INSERT, OP_READ, OP_SCAN, MixedTrace


class Router:
    """Dispatches trace operations to the shards of a :class:`ShardedIndex`."""

    def __init__(
        self,
        service: ShardedIndex,
        batch: bool = True,
        batch_size: int = 512,
        threads: int | None = None,
        write_batch: bool | None = None,
        scan_batch: bool | None = None,
        executor: str | ShardExecutor | None = None,
        workers: int | None = None,
    ) -> None:
        """``batch`` controls read batching; ``write_batch`` controls
        insert batching and ``scan_batch`` controls scan batching — both
        default to following ``batch``.  ``executor`` picks the
        execution model (``"serial"``/``"thread"``/``"process"`` or a
        prebuilt :class:`ShardExecutor`); ``None`` keeps the historical
        behavior of following ``threads``.  All modes produce
        bit-identical simulated results to per-op dispatch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1 (or None for serial)")
        self.service = service
        self.batch = batch
        self.batch_size = batch_size
        self.threads = threads
        self.write_batch = batch if write_batch is None else write_batch
        self.scan_batch = batch if scan_batch is None else scan_batch
        self._core = ReplayCore(
            service,
            batch=self.batch,
            batch_size=self.batch_size,
            write_batch=self.write_batch,
            scan_batch=self.scan_batch,
        )
        self.executor = make_executor(executor, threads=threads,
                                      workers=workers)
        self.executor.attach(self._core)
        service.register_drain_hook(self._drain)

    def close(self) -> None:
        """Unregister the drain hook and release executor resources
        (worker processes for the process executor — which also folds
        any outstanding worker state back into the service, so call
        this before checkpointing or unbinding)."""
        self.service.unregister_drain_hook(self._drain)
        self.executor.close()

    def _drain(self, sid: int) -> None:
        """Service drain hook: a topology change is about to retire
        shard ``sid`` — flush everything buffered for it to the old
        shard while the old routing epoch is still current."""
        self.executor.drain(sid)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, trace: MixedTrace) -> list[list[SubOp]]:
        """Split the trace into per-shard sub-op lists (trace order kept).

        List positions are the *current epoch's* shard ordinals; replay
        resolves them to stable ids immediately, before any dispatch.
        """
        per_shard: list[list[SubOp]] = [[] for _ in self.service.shards]
        assign = self.service.route(trace.keys)
        # Scan legs are planned for the whole trace in one vectorized
        # pass (both window endpoints routed batch-wise), then spliced
        # back at each scan's trace position.
        scan_idx = np.nonzero(trace.ops == OP_SCAN)[0]
        scan_legs: dict[int, list[tuple[int, Any, Any]]] = {}
        if len(scan_idx):
            windows = [
                (trace.keys[i].item(),
                 trace.keys[i].item() + int(trace.scan_widths[i]) - 1)
                for i in scan_idx
            ]
            for i, legs in zip(scan_idx.tolist(),
                               self.service.scan_plan_many(windows)):
                scan_legs[i] = legs
        for i in range(len(trace)):
            code = int(trace.ops[i])
            key = trace.keys[i].item()
            if code == OP_READ:
                per_shard[assign[i]].append(SubOp(i, code, key))
            elif code == OP_INSERT:
                per_shard[assign[i]].append(
                    SubOp(i, code, key, tid=int(trace.tids[i]))
                )
            else:  # OP_SCAN: one leg per overlapping shard
                for s, sub_lo, sub_hi in scan_legs[i]:
                    per_shard[s].append(
                        SubOp(i, code, key, sub_lo=sub_lo, sub_hi=sub_hi)
                    )
        return per_shard

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, trace: MixedTrace
               ) -> tuple[list[Any], ServiceStats]:
        """Replay ``trace`` against the bound service.

        Returns (per-op results aligned with the trace, ServiceStats).
        Reads yield :class:`SearchResult`, scans a merged
        :class:`RangeScanResult`, inserts ``None``.
        """
        service = self.service
        if any(not shard.bound for shard in service.shards):
            raise RuntimeError("service is not bound; call bind() first")
        per_shard = self.plan(trace)
        # Resolve this epoch's ordinals to stable ids before dispatch;
        # snapshot per-shard counters by id so the books stay right even
        # if the topology changes under us mid-replay.
        table = service.table
        sids = [table.id_at(s) for s in range(len(per_shard))]
        before: dict[int, tuple[IOStats, float]] = {}
        for shard in service.shards:
            assert shard.stack is not None
            before[shard.shard_id] = (
                shard.stack.stats.snapshot(), shard.stack.clock.now()
            )
        retired_io0 = service.retired_io.snapshot()
        retired_clock0 = service.retired_clock
        t0 = time.perf_counter()
        outcomes = self.executor.run(list(zip(sids, per_shard)))
        wall_secs = time.perf_counter() - t0

        results: list[Any] = [None] * len(trace)
        latencies = np.zeros(len(trace), dtype=np.float64)
        for shard_outcome in outcomes:
            for op_index, code, latency, result in shard_outcome:
                latencies[op_index] += latency
                if code == OP_SCAN:
                    merged = results[op_index]
                    if merged is None:
                        merged = RangeScanResult(
                            matches=0, pages_read=0, leaves_visited=0
                        )
                        results[op_index] = merged
                    merged.matches += result.matches
                    merged.pages_read += result.pages_read
                    merged.leaves_visited += result.leaves_visited
                else:
                    results[op_index] = result

        per_shard_io: list[IOStats] = []
        per_shard_clock: list[float] = []
        shard_ids: list[int] = []
        live_ids = set()
        for shard in service.shards:
            assert shard.stack is not None
            io0, c0 = before.get(shard.shard_id, (IOStats(), 0.0))
            per_shard_io.append(shard.stack.stats.diff(io0))
            per_shard_clock.append(shard.stack.clock.now() - c0)
            shard_ids.append(shard.shard_id)
            live_ids.add(shard.shard_id)
        # Work retired mid-replay (a shard split/merged away while its
        # buffers were live): the service accumulators grew by those
        # shards' *lifetime* counters; subtract their replay-start
        # snapshots to keep only this replay's share.
        retired_io = service.retired_io.diff(retired_io0)
        retired_clock = service.retired_clock - retired_clock0
        for sid, (io0, c0) in before.items():
            if sid not in live_ids:
                retired_io = retired_io.diff(io0)
                retired_clock -= c0
        stats = ServiceStats(
            per_shard_io=per_shard_io,
            per_shard_clock=per_shard_clock,
            op_codes=trace.ops,
            op_latencies=latencies,
            wall_secs=wall_secs,
            shard_ids=shard_ids,
            retired_io=retired_io,
            retired_clock=retired_clock,
            epoch=service.topology_epoch,
        )
        return results, stats
