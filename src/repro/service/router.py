"""Router: splits mixed-operation batches per shard and dispatches them.

The router turns a :class:`~repro.workloads.mixed.MixedTrace` into
per-shard work lists and replays them:

* point reads are routed by key and **batched** — consecutive reads on
  one shard flow through the shard's vectorized ``search_many`` (the
  PR-1 batch-probe engine), with the per-op latency sink recovering the
  exact scalar latencies for the percentile report;
* inserts are **write-batched** the same way: consecutive inserts on
  one shard flush through ``insert_many`` (the vectorized batch write
  engine), with per-op latencies from its sink; a read or scan arrival
  flushes the write buffer first, so an operation issued after an
  insert always observes it (read-your-writes order is preserved);
* scans are **scan-batched** alongside the reads: scans and point
  reads are both read-only, so they share one read-phase buffer — a
  scan arrival no longer flushes the read buffer (only writes fence
  the read phase) — and each flush dispatches the reads through
  ``search_many`` and the scans through the vectorized
  ``range_scan_many`` batch scan engine, per-op latencies from their
  sinks;
* a scan whose window spans multiple shards is split into per-shard
  legs (scatter-gather, planned vectorized via ``scan_plan_many``);
  its latency is the *sum* of its legs' simulated time, and its result
  merges the legs' counts.

**Topology discipline.**  Routing goes through the service's
:class:`~repro.service.routing.RoutingTable`; plan-time shard ordinals
are resolved to *stable shard ids* before any work is buffered, and
every flush re-resolves its shard id through the table at dispatch time
(reprolint rule P4 forbids retaining ``shards[i]`` objects here).  The
Router registers a **drain hook** with the service for its lifetime:
when a shard's range is about to migrate (``split_shard`` /
``merge_shards``), any buffered sub-ops for that shard are flushed to
the *old* shard before the epoch flips — read-your-writes holds across
live topology changes.  Should a buffered shard id nonetheless vanish
(retired mid-replay), the flush falls back to service-level batch calls,
which re-route each op by key under the new epoch.

Per-shard operation order always follows trace order, so a read issued
after an insert to the same shard observes it.  Because every shard owns
a private tree, stack and clock, shards share no mutable state — the
optional thread pool (``threads=N``) replays shards concurrently for
real wall-clock overlap (NumPy filter passes release the GIL; the pure
-Python portions interleave), with results scattered back into trace
order afterwards.  Live topology changes are a control-plane action:
trigger them between replay calls (as the elastic control loop does) or
from the replaying thread via a drain hook — not concurrently from
another thread.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.results import RangeScanResult
from repro.service.sharded import ShardedIndex
from repro.service.stats import ServiceStats
from repro.storage.iostats import IOStats
from repro.workloads.mixed import OP_INSERT, OP_READ, OP_SCAN, MixedTrace


@dataclass(frozen=True)
class _SubOp:
    """One shard-local unit of work derived from a trace operation."""

    op_index: int
    code: int
    key: Any
    tid: int = -1
    sub_lo: Any = None
    sub_hi: Any = None


@dataclass
class _ShardSession:
    """Replay state for one shard, keyed by its stable id.

    Holding the *id* (not the Shard object) is what lets the drain hook
    and the flush paths resolve the current owner through the routing
    table at dispatch time.
    """

    sid: int
    out: list[tuple[int, int, float, Any]] = field(default_factory=list)
    read_buffer: list[_SubOp] = field(default_factory=list)
    write_buffer: list[_SubOp] = field(default_factory=list)


class Router:
    """Dispatches trace operations to the shards of a :class:`ShardedIndex`."""

    def __init__(
        self,
        service: ShardedIndex,
        batch: bool = True,
        batch_size: int = 512,
        threads: int | None = None,
        write_batch: bool | None = None,
        scan_batch: bool | None = None,
    ) -> None:
        """``batch`` controls read batching; ``write_batch`` controls
        insert batching and ``scan_batch`` controls scan batching — both
        default to following ``batch``.  All modes produce bit-identical
        simulated results to per-op dispatch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1 (or None for serial)")
        self.service = service
        self.batch = batch
        self.batch_size = batch_size
        self.threads = threads
        self.write_batch = batch if write_batch is None else write_batch
        self.scan_batch = batch if scan_batch is None else scan_batch
        #: Live replay sessions by stable shard id (drain-hook target).
        self._sessions: dict[int, _ShardSession] = {}
        service.register_drain_hook(self._drain)

    def close(self) -> None:
        """Unregister the drain hook (call when done with this Router)."""
        self.service.unregister_drain_hook(self._drain)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, trace: MixedTrace) -> list[list[_SubOp]]:
        """Split the trace into per-shard sub-op lists (trace order kept).

        List positions are the *current epoch's* shard ordinals; replay
        resolves them to stable ids immediately, before any dispatch.
        """
        per_shard: list[list[_SubOp]] = [[] for _ in self.service.shards]
        assign = self.service.route(trace.keys)
        # Scan legs are planned for the whole trace in one vectorized
        # pass (both window endpoints routed batch-wise), then spliced
        # back at each scan's trace position.
        scan_idx = np.nonzero(trace.ops == OP_SCAN)[0]
        scan_legs: dict[int, list[tuple[int, Any, Any]]] = {}
        if len(scan_idx):
            windows = [
                (trace.keys[i].item(),
                 trace.keys[i].item() + int(trace.scan_widths[i]) - 1)
                for i in scan_idx
            ]
            for i, legs in zip(scan_idx.tolist(),
                               self.service.scan_plan_many(windows)):
                scan_legs[i] = legs
        for i in range(len(trace)):
            code = int(trace.ops[i])
            key = trace.keys[i].item()
            if code == OP_READ:
                per_shard[assign[i]].append(_SubOp(i, code, key))
            elif code == OP_INSERT:
                per_shard[assign[i]].append(
                    _SubOp(i, code, key, tid=int(trace.tids[i]))
                )
            else:  # OP_SCAN: one leg per overlapping shard
                for s, sub_lo, sub_hi in scan_legs[i]:
                    per_shard[s].append(
                        _SubOp(i, code, key, sub_lo=sub_lo, sub_hi=sub_hi)
                    )
        return per_shard

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, trace: MixedTrace
               ) -> tuple[list[Any], ServiceStats]:
        """Replay ``trace`` against the bound service.

        Returns (per-op results aligned with the trace, ServiceStats).
        Reads yield :class:`SearchResult`, scans a merged
        :class:`RangeScanResult`, inserts ``None``.
        """
        service = self.service
        if any(not shard.bound for shard in service.shards):
            raise RuntimeError("service is not bound; call bind() first")
        per_shard = self.plan(trace)
        # Resolve this epoch's ordinals to stable ids before dispatch;
        # snapshot per-shard counters by id so the books stay right even
        # if the topology changes under us mid-replay.
        table = service.table
        sids = [table.id_at(s) for s in range(len(per_shard))]
        before: dict[int, tuple[IOStats, float]] = {}
        for shard in service.shards:
            assert shard.stack is not None
            before[shard.shard_id] = (
                shard.stack.stats.snapshot(), shard.stack.clock.now()
            )
        retired_io0 = service.retired_io.snapshot()
        retired_clock0 = service.retired_clock
        t0 = time.perf_counter()
        if self.threads is not None and len(sids) > 1:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                outcomes = list(
                    pool.map(self._replay_shard, sids, per_shard)
                )
        else:
            outcomes = [
                self._replay_shard(sid, subops)
                for sid, subops in zip(sids, per_shard)
            ]
        wall_secs = time.perf_counter() - t0

        results: list[Any] = [None] * len(trace)
        latencies = np.zeros(len(trace), dtype=np.float64)
        for shard_outcome in outcomes:
            for op_index, code, latency, result in shard_outcome:
                latencies[op_index] += latency
                if code == OP_SCAN:
                    merged = results[op_index]
                    if merged is None:
                        merged = RangeScanResult(
                            matches=0, pages_read=0, leaves_visited=0
                        )
                        results[op_index] = merged
                    merged.matches += result.matches
                    merged.pages_read += result.pages_read
                    merged.leaves_visited += result.leaves_visited
                else:
                    results[op_index] = result

        per_shard_io: list[IOStats] = []
        per_shard_clock: list[float] = []
        shard_ids: list[int] = []
        live_ids = set()
        for shard in service.shards:
            assert shard.stack is not None
            io0, c0 = before.get(shard.shard_id, (IOStats(), 0.0))
            per_shard_io.append(shard.stack.stats.diff(io0))
            per_shard_clock.append(shard.stack.clock.now() - c0)
            shard_ids.append(shard.shard_id)
            live_ids.add(shard.shard_id)
        # Work retired mid-replay (a shard split/merged away while its
        # buffers were live): the service accumulators grew by those
        # shards' *lifetime* counters; subtract their replay-start
        # snapshots to keep only this replay's share.
        retired_io = service.retired_io.diff(retired_io0)
        retired_clock = service.retired_clock - retired_clock0
        for sid, (io0, c0) in before.items():
            if sid not in live_ids:
                retired_io = retired_io.diff(io0)
                retired_clock -= c0
        stats = ServiceStats(
            per_shard_io=per_shard_io,
            per_shard_clock=per_shard_clock,
            op_codes=trace.ops,
            op_latencies=latencies,
            wall_secs=wall_secs,
            shard_ids=shard_ids,
            retired_io=retired_io,
            retired_clock=retired_clock,
            epoch=service.topology_epoch,
        )
        return results, stats

    # ------------------------------------------------------------------
    # per-shard dispatch (buffers keyed by stable shard id)
    # ------------------------------------------------------------------
    def _replay_shard(
        self, sid: int, subops: list[_SubOp]
    ) -> list[tuple[int, int, float, Any]]:
        """Run one shard's sub-ops in order; return (op_index, code,
        latency, result) records (thread-confined, merged by replay)."""
        session = _ShardSession(sid=sid)
        self._sessions[sid] = session
        try:
            # At most one buffer is ever non-empty: an op of the other
            # phase flushes it first, which keeps per-shard trace order
            # (a read or scan issued after an insert observes it, and
            # vice versa).  Reads and scans share the read phase — only
            # writes fence it.
            for op in subops:
                if op.code == OP_READ:
                    self._flush_writes(session)
                    session.read_buffer.append(op)
                elif op.code == OP_INSERT:
                    self._flush_reads(session)
                    session.write_buffer.append(op)
                elif op.code == OP_SCAN and self.scan_batch:
                    self._flush_writes(session)
                    session.read_buffer.append(op)
                elif op.code == OP_SCAN:
                    self._flush_reads(session)
                    self._flush_writes(session)
                    self._scalar_scan(session, op)
                else:
                    # Fail loudly: a new op code buffered as if it were
                    # a scan would be silently dropped by _flush_reads.
                    raise ValueError(f"unknown op code {op.code}")
            self._flush_reads(session)
            self._flush_writes(session)
        finally:
            self._sessions.pop(sid, None)
        return session.out

    def _drain(self, sid: int) -> None:
        """Service drain hook: a topology change is about to retire
        shard ``sid`` — flush everything buffered for it to the old
        shard while the old routing epoch is still current."""
        session = self._sessions.get(sid)
        if session is None:
            return
        self._flush_reads(session)
        self._flush_writes(session)

    # ------------------------------------------------------------------
    def _flush_reads(self, session: _ShardSession) -> None:
        # The read-phase buffer holds point reads and (with scan
        # batching) scan legs: both are read-only, so each chunk can
        # dispatch its reads and its scans as two sub-batches — every
        # charge on the read path declares its access pattern
        # explicitly, so the relative order cannot change any simulated
        # number.
        buffer = session.read_buffer
        if not buffer:
            return
        service = self.service
        shard = service.shard_by_id(session.sid)
        out = session.out
        for start in range(0, len(buffer), self.batch_size):
            chunk = buffer[start : start + self.batch_size]
            reads = [op for op in chunk if op.code == OP_READ]
            scans = [op for op in chunk if op.code == OP_SCAN]
            if reads and (shard is None or self.batch):
                sink: list[float] = []
                if shard is None:
                    # Shard retired mid-replay: re-route by key under
                    # the current epoch.
                    chunk_results: list[Any] = list(service.search_many(
                        [op.key for op in reads], latency_sink=sink
                    ))
                else:
                    chunk_results = list(shard.index.search_many(
                        [op.key for op in reads], latency_sink=sink
                    ))
                for op, latency, result in zip(reads, sink, chunk_results):
                    out.append((op.op_index, op.code, latency, result))
            elif reads:
                assert shard is not None and shard.stack is not None
                clock = shard.stack.clock
                for op in reads:
                    begin = clock.now()
                    result = shard.index.search(op.key)
                    out.append(
                        (op.op_index, op.code, clock.now() - begin, result)
                    )
            if scans:
                scan_sink: list[float] = []
                if shard is None:
                    # Re-plan each leg's sub-window across the new
                    # topology; the legs still partition the original
                    # scan window, so merged counts stay exact.
                    scan_results = service.range_scan_many(
                        [(op.sub_lo, op.sub_hi) for op in scans],
                        latency_sink=scan_sink,
                    )
                else:
                    scan_results = shard.index.range_scan_many(
                        [(op.sub_lo, op.sub_hi) for op in scans],
                        latency_sink=scan_sink,
                    )
                for op, latency, result in zip(scans, scan_sink,
                                               scan_results):
                    out.append((op.op_index, op.code, latency, result))
        buffer.clear()

    def _flush_writes(self, session: _ShardSession) -> None:
        buffer = session.write_buffer
        if not buffer:
            return
        service = self.service
        shard = service.shard_by_id(session.sid)
        out = session.out
        for start in range(0, len(buffer), self.batch_size):
            chunk = buffer[start : start + self.batch_size]
            if shard is None:
                # Shard retired mid-replay: re-route by key under the
                # current epoch.
                sink: list[float] = []
                service.insert_many(
                    [op.key for op in chunk],
                    [op.tid for op in chunk],
                    latency_sink=sink,
                )
                for op, latency in zip(chunk, sink):
                    out.append((op.op_index, op.code, latency, None))
            elif self.write_batch:
                sink = []
                service.insert_many_on(
                    shard,
                    [op.key for op in chunk],
                    [op.tid for op in chunk],
                    latency_sink=sink,
                )
                for op, latency in zip(chunk, sink):
                    out.append((op.op_index, op.code, latency, None))
            else:
                assert shard.stack is not None
                clock = shard.stack.clock
                for op in chunk:
                    begin = clock.now()
                    service.insert_on(shard, op.key, op.tid)
                    out.append(
                        (op.op_index, op.code, clock.now() - begin, None)
                    )
        buffer.clear()

    def _scalar_scan(self, session: _ShardSession, op: _SubOp) -> None:
        service = self.service
        shard = service.shard_by_id(session.sid)
        if shard is None:
            sink: list[float] = []
            result = service.range_scan_many(
                [(op.sub_lo, op.sub_hi)], latency_sink=sink
            )[0]
            session.out.append((op.op_index, op.code, sink[0], result))
            return
        assert shard.stack is not None
        clock = shard.stack.clock
        begin = clock.now()
        result = shard.index.range_scan(op.sub_lo, op.sub_hi)
        session.out.append(
            (op.op_index, op.code, clock.now() - begin, result)
        )
