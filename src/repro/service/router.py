"""Router: splits mixed-operation batches per shard and dispatches them.

The router turns a :class:`~repro.workloads.mixed.MixedTrace` into
per-shard work lists and replays them:

* point reads are routed by key and **batched** — consecutive reads on
  one shard flow through the shard's vectorized ``search_many`` (the
  PR-1 batch-probe engine), with the per-op latency sink recovering the
  exact scalar latencies for the percentile report;
* inserts are **write-batched** the same way: consecutive inserts on
  one shard flush through ``insert_many`` (the vectorized batch write
  engine), with per-op latencies from its sink; a read or scan arrival
  flushes the write buffer first, so an operation issued after an
  insert always observes it (read-your-writes order is preserved);
* scans are **scan-batched** alongside the reads: scans and point
  reads are both read-only, so they share one read-phase buffer — a
  scan arrival no longer flushes the read buffer (only writes fence
  the read phase) — and each flush dispatches the reads through
  ``search_many`` and the scans through the vectorized
  ``range_scan_many`` batch scan engine, per-op latencies from their
  sinks;
* a scan whose window spans multiple shards is split into per-shard
  legs (scatter-gather, planned vectorized via ``scan_plan_many``);
  its latency is the *sum* of its legs' simulated time, and its result
  merges the legs' counts.

Per-shard operation order always follows trace order, so a read issued
after an insert to the same shard observes it.  Because every shard owns
a private tree, stack and clock, shards share no mutable state — the
optional thread pool (``threads=N``) replays shards concurrently for
real wall-clock overlap (NumPy filter passes release the GIL; the pure
-Python portions interleave), with results scattered back into trace
order afterwards.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.api.results import RangeScanResult, SearchResult
from repro.service.sharded import ShardedIndex
from repro.service.stats import ServiceStats
from repro.workloads.mixed import OP_INSERT, OP_READ, OP_SCAN, MixedTrace


@dataclass(frozen=True)
class _SubOp:
    """One shard-local unit of work derived from a trace operation."""

    op_index: int
    code: int
    key: object
    tid: int = -1
    sub_lo: object = None
    sub_hi: object = None


class Router:
    """Dispatches trace operations to the shards of a :class:`ShardedIndex`."""

    def __init__(
        self,
        service: ShardedIndex,
        batch: bool = True,
        batch_size: int = 512,
        threads: int | None = None,
        write_batch: bool | None = None,
        scan_batch: bool | None = None,
    ) -> None:
        """``batch`` controls read batching; ``write_batch`` controls
        insert batching and ``scan_batch`` controls scan batching — both
        default to following ``batch``.  All modes produce bit-identical
        simulated results to per-op dispatch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1 (or None for serial)")
        self.service = service
        self.batch = batch
        self.batch_size = batch_size
        self.threads = threads
        self.write_batch = batch if write_batch is None else write_batch
        self.scan_batch = batch if scan_batch is None else scan_batch

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, trace: MixedTrace) -> list[list[_SubOp]]:
        """Split the trace into per-shard sub-op lists (trace order kept)."""
        per_shard: list[list[_SubOp]] = [[] for _ in self.service.shards]
        assign = self.service.route(trace.keys)
        # Scan legs are planned for the whole trace in one vectorized
        # pass (both window endpoints routed batch-wise), then spliced
        # back at each scan's trace position.
        scan_idx = np.nonzero(trace.ops == OP_SCAN)[0]
        scan_legs: dict[int, list] = {}
        if len(scan_idx):
            windows = [
                (trace.keys[i].item(),
                 trace.keys[i].item() + int(trace.scan_widths[i]) - 1)
                for i in scan_idx
            ]
            for i, legs in zip(scan_idx.tolist(),
                               self.service.scan_plan_many(windows)):
                scan_legs[i] = legs
        for i in range(len(trace)):
            code = int(trace.ops[i])
            key = trace.keys[i].item()
            if code == OP_READ:
                per_shard[assign[i]].append(_SubOp(i, code, key))
            elif code == OP_INSERT:
                per_shard[assign[i]].append(
                    _SubOp(i, code, key, tid=int(trace.tids[i]))
                )
            else:  # OP_SCAN: one leg per overlapping shard
                for s, sub_lo, sub_hi in scan_legs[i]:
                    per_shard[s].append(
                        _SubOp(i, code, key, sub_lo=sub_lo, sub_hi=sub_hi)
                    )
        return per_shard

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, trace: MixedTrace
               ) -> tuple[list[object], ServiceStats]:
        """Replay ``trace`` against the bound service.

        Returns (per-op results aligned with the trace, ServiceStats).
        Reads yield :class:`SearchResult`, scans a merged
        :class:`RangeScanResult`, inserts ``None``.
        """
        if any(not shard.bound for shard in self.service.shards):
            raise RuntimeError("service is not bound; call bind() first")
        per_shard = self.plan(trace)
        io_before = [
            shard.stack.stats.snapshot() for shard in self.service.shards
        ]
        clock_before = [
            shard.stack.clock.now() for shard in self.service.shards
        ]
        t0 = time.perf_counter()
        if self.threads is not None and self.service.n_shards > 1:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                outcomes = list(
                    pool.map(
                        self._replay_shard,
                        range(self.service.n_shards),
                        per_shard,
                    )
                )
        else:
            outcomes = [
                self._replay_shard(s, subops)
                for s, subops in enumerate(per_shard)
            ]
        wall_secs = time.perf_counter() - t0

        results: list[object] = [None] * len(trace)
        latencies = np.zeros(len(trace), dtype=np.float64)
        for shard_outcome in outcomes:
            for op_index, code, latency, result in shard_outcome:
                latencies[op_index] += latency
                if code == OP_SCAN:
                    merged = results[op_index]
                    if merged is None:
                        merged = RangeScanResult(
                            matches=0, pages_read=0, leaves_visited=0
                        )
                        results[op_index] = merged
                    merged.matches += result.matches
                    merged.pages_read += result.pages_read
                    merged.leaves_visited += result.leaves_visited
                else:
                    results[op_index] = result
        stats = ServiceStats(
            per_shard_io=[
                shard.stack.stats.diff(before)
                for shard, before in zip(self.service.shards, io_before)
            ],
            per_shard_clock=[
                shard.stack.clock.now() - before
                for shard, before in zip(self.service.shards, clock_before)
            ],
            op_codes=trace.ops,
            op_latencies=latencies,
            wall_secs=wall_secs,
        )
        return results, stats

    # ------------------------------------------------------------------
    def _replay_shard(
        self, s: int, subops: list[_SubOp]
    ) -> list[tuple[int, int, float, object]]:
        """Run one shard's sub-ops in order; return (op_index, code,
        latency, result) records (thread-confined, merged by replay)."""
        shard = self.service.shards[s]
        index = shard.index
        clock = shard.stack.clock
        out: list[tuple[int, int, float, object]] = []
        read_buffer: list[_SubOp] = []
        write_buffer: list[_SubOp] = []

        def flush_reads() -> None:
            # The read-phase buffer holds point reads and (with scan
            # batching) scan legs: both are read-only, so each chunk can
            # dispatch its reads and its scans as two sub-batches —
            # every charge on the read path declares its access pattern
            # explicitly, so the relative order cannot change any
            # simulated number.
            if not read_buffer:
                return
            for start in range(0, len(read_buffer), self.batch_size):
                chunk = read_buffer[start : start + self.batch_size]
                reads = [op for op in chunk if op.code == OP_READ]
                scans = [op for op in chunk if op.code == OP_SCAN]
                if reads and self.batch:
                    sink: list[float] = []
                    chunk_results = index.search_many(
                        [op.key for op in reads], latency_sink=sink
                    )
                    for op, latency, result in zip(reads, sink,
                                                   chunk_results):
                        out.append((op.op_index, op.code, latency, result))
                elif reads:
                    for op in reads:
                        begin = clock.now()
                        result = index.search(op.key)
                        out.append(
                            (op.op_index, op.code, clock.now() - begin,
                             result)
                        )
                if scans:
                    scan_sink: list[float] = []
                    scan_results = index.range_scan_many(
                        [(op.sub_lo, op.sub_hi) for op in scans],
                        latency_sink=scan_sink,
                    )
                    for op, latency, result in zip(scans, scan_sink,
                                                   scan_results):
                        out.append((op.op_index, op.code, latency, result))
            read_buffer.clear()

        def flush_writes() -> None:
            if not write_buffer:
                return
            for start in range(0, len(write_buffer), self.batch_size):
                chunk = write_buffer[start : start + self.batch_size]
                if self.write_batch:
                    sink: list[float] = []
                    self.service.insert_many_on(
                        shard,
                        [op.key for op in chunk],
                        [op.tid for op in chunk],
                        latency_sink=sink,
                    )
                    for op, latency in zip(chunk, sink):
                        out.append((op.op_index, op.code, latency, None))
                else:
                    for op in chunk:
                        begin = clock.now()
                        self.service.insert_on(shard, op.key, op.tid)
                        out.append(
                            (op.op_index, op.code, clock.now() - begin,
                             None)
                        )
            write_buffer.clear()

        # At most one buffer is ever non-empty: an op of the other phase
        # flushes it first, which keeps per-shard trace order (a read or
        # scan issued after an insert observes it, and vice versa).
        # Reads and scans share the read phase — only writes fence it.
        for op in subops:
            if op.code == OP_READ:
                flush_writes()
                read_buffer.append(op)
            elif op.code == OP_INSERT:
                flush_reads()
                write_buffer.append(op)
            elif op.code == OP_SCAN and self.scan_batch:
                flush_writes()
                read_buffer.append(op)
            elif op.code == OP_SCAN:
                flush_reads()
                flush_writes()
                begin = clock.now()
                result = index.range_scan(op.sub_lo, op.sub_hi)
                out.append(
                    (op.op_index, op.code, clock.now() - begin, result)
                )
            else:
                # Fail loudly: a new op code buffered as if it were a
                # scan would be silently dropped by flush_reads.
                raise ValueError(f"unknown op code {op.code}")
        flush_reads()
        flush_writes()
        return out
