"""Hot-shard rebalancing: a hysteresis control loop over windowed load.

A static partition melts under time-varying skew: the one shard owning
the current hotspot saturates while its neighbours idle.  The
:class:`Rebalancer` watches per-window shard load
(:class:`~repro.service.stats.LoadWindow`, keyed by stable shard id) and
steers the service's live topology operations:

* **split** a shard whose clock share has exceeded ``hot_factor / n``
  (n = live shard count) for ``sustain`` consecutive windows — spreading
  the hot key range over two fresh stacks;
* **merge** the adjacent pair with the smallest combined share once it
  has stayed under ``cold_factor * 2 / n`` for ``sustain`` windows —
  reclaiming shards the hotspot has moved away from;
* after any action, hold off for ``cooldown`` windows and reset all
  streaks (hysteresis: one decision must prove itself before the next).

Thresholds are *relative* to the live shard count, so the same config
behaves sensibly at 4 shards and at 12.  At most one topology action
fires per window, and every decision is recorded in the
:class:`RebalanceLog` that ``serve-bench --rebalance`` and
``benchmarks/bench_rebalance.py`` surface.

:func:`run_elastic_service` is the driving loop: it replays a trace in
fixed-size windows through one :class:`~repro.service.router.Router`,
feeds each window's load to the rebalancer *between* windows (buffered
sub-ops are always flushed by then; mid-window migrations are covered by
the Router's drain hook), and collects per-op results, latencies and
stable owner ids for the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.service.router import Router
from repro.service.sharded import ShardedIndex
from repro.service.stats import (
    LatencySummary,
    LoadWindow,
    WindowedLoad,
    queued_response_times,
)
from repro.storage.config import StorageConfig
from repro.storage.iostats import IOStats
from repro.workloads.mixed import MixedTrace


@dataclass(frozen=True)
class RebalancerConfig:
    """Knobs of the hysteresis control loop (relative thresholds)."""

    hot_factor: float = 1.7     # hot when share > hot_factor / n_live
    cold_factor: float = 0.6    # pair cold when sum < cold_factor * 2 / n
    sustain: int = 2            # consecutive windows before acting
    cooldown: int = 2           # quiet windows after any action
    min_shards: int = 2         # never merge below this
    max_shards: int = 16        # never split above this
    min_split_leaves: int = 4   # split needs two leaves per child

    def __post_init__(self) -> None:
        if self.hot_factor <= 1.0:
            raise ValueError("hot_factor must be > 1 (share of fair load)")
        if not 0.0 < self.cold_factor < 1.0:
            raise ValueError("cold_factor must be in (0, 1)")
        if self.sustain < 1:
            raise ValueError("sustain must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")


@dataclass(frozen=True)
class RebalanceDecision:
    """One applied topology action, as recorded in the log."""

    window: int                 # window ordinal that triggered it
    epoch: int                  # routing-table epoch *after* the action
    action: str                 # "split" | "merge"
    source: tuple[int, ...]     # shard ids consumed
    result: tuple[int, ...]     # shard ids produced
    share: float                # observed clock share motivating it

    def to_dict(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "epoch": self.epoch,
            "action": self.action,
            "source": list(self.source),
            "result": list(self.result),
            "share": self.share,
        }


class RebalanceLog:
    """Append-only record of every topology decision of one run."""

    def __init__(self) -> None:
        self.decisions: list[RebalanceDecision] = []

    def append(self, decision: RebalanceDecision) -> None:
        self.decisions.append(decision)

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self) -> Iterator[RebalanceDecision]:
        return iter(self.decisions)

    @property
    def n_splits(self) -> int:
        return sum(1 for d in self.decisions if d.action == "split")

    @property
    def n_merges(self) -> int:
        return sum(1 for d in self.decisions if d.action == "merge")

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_splits": self.n_splits,
            "n_merges": self.n_merges,
            "decisions": [d.to_dict() for d in self.decisions],
        }


class Rebalancer:
    """Watches windowed load and applies split/merge with hysteresis."""

    def __init__(self, service: ShardedIndex,
                 config: RebalancerConfig | None = None) -> None:
        self.service = service
        self.config = RebalancerConfig() if config is None else config
        self.log = RebalanceLog()
        self._hot_streak: dict[int, int] = {}
        self._cold_streak: dict[tuple[int, int], int] = {}
        self._cooldown = 0

    # ------------------------------------------------------------------
    def observe(self, window: LoadWindow) -> list[RebalanceDecision]:
        """Fold one load window into the streaks; maybe act.

        Call between replay windows.  Applies at most one topology
        action and returns the decisions made (possibly empty).
        """
        cfg = self.config
        if self._cooldown > 0:
            self._cooldown -= 1
            self._hot_streak.clear()
            self._cold_streak.clear()
            return []
        total = window.total_clock
        if total <= 0.0:
            return []
        order = self.service.table.shard_ids
        n = len(order)
        shares = {
            sid: float(window.clock.get(sid, 0.0)) / total for sid in order
        }

        decision = self._try_split(window, order, shares, n)
        if decision is None:
            decision = self._try_merge(window, order, shares, n)
        if decision is None:
            return []
        self.log.append(decision)
        self._hot_streak.clear()
        self._cold_streak.clear()
        self._cooldown = cfg.cooldown
        return [decision]

    # ------------------------------------------------------------------
    def _splittable(self, sid: int) -> bool:
        shard = self.service.shard_by_id(sid)
        if shard is None or not shard.index.supports_sharding:
            return False
        return shard.index.n_leaves >= self.config.min_split_leaves

    def _mergeable(self, sid_a: int, sid_b: int) -> bool:
        a = self.service.shard_by_id(sid_a)
        b = self.service.shard_by_id(sid_b)
        return (
            a is not None and b is not None
            and a.index.supports_sharding and b.index.supports_sharding
        )

    def _try_split(self, window: LoadWindow, order: list[int],
                   shares: dict[int, float],
                   n: int) -> RebalanceDecision | None:
        cfg = self.config
        threshold = cfg.hot_factor / n
        streaks = {
            sid: self._hot_streak.get(sid, 0) + 1
            for sid in order if shares[sid] > threshold
        }
        self._hot_streak = streaks
        if n >= cfg.max_shards:
            return None
        candidate: int | None = None
        for sid in order:
            if streaks.get(sid, 0) >= cfg.sustain and self._splittable(sid):
                if candidate is None or shares[sid] > shares[candidate]:
                    candidate = sid
        if candidate is None:
            return None
        # Cut at the window's observed load centroid when known (half
        # the hot traffic on each child); fall back to the leaf midpoint.
        left, right = self.service.split_shard(
            candidate, at=window.split_hints.get(candidate)
        )
        return RebalanceDecision(
            window=window.index,
            epoch=self.service.topology_epoch,
            action="split",
            source=(candidate,),
            result=(left, right),
            share=shares[candidate],
        )

    def _try_merge(self, window: LoadWindow, order: list[int],
                   shares: dict[int, float],
                   n: int) -> RebalanceDecision | None:
        cfg = self.config
        threshold = cfg.cold_factor * 2.0 / n
        streaks = {}
        for a, b in zip(order, order[1:]):
            if shares[a] + shares[b] < threshold:
                streaks[(a, b)] = self._cold_streak.get((a, b), 0) + 1
        self._cold_streak = streaks
        if n <= cfg.min_shards:
            return None
        pair: tuple[int, int] | None = None
        for (a, b), streak in streaks.items():
            if streak >= cfg.sustain and self._mergeable(a, b):
                if pair is None or (
                    shares[a] + shares[b] < shares[pair[0]] + shares[pair[1]]
                ):
                    pair = (a, b)
        if pair is None:
            return None
        merged = self.service.merge_shards(*pair)
        return RebalanceDecision(
            window=window.index,
            epoch=self.service.topology_epoch,
            action="merge",
            source=pair,
            result=(merged,),
            share=shares[pair[0]] + shares[pair[1]],
        )


# ---------------------------------------------------------------------------
# elastic replay loop
# ---------------------------------------------------------------------------


@dataclass
class ElasticReport:
    """Outcome of one windowed (optionally rebalancing) trace replay."""

    results: list[Any]
    op_codes: np.ndarray
    op_latencies: np.ndarray
    owners: np.ndarray              # stable shard id per op, at dispatch
    windows: WindowedLoad
    log: RebalanceLog
    io: IOStats
    wall_secs: float
    window_ops: int
    initial_shards: int
    final_shards: int
    final_epoch: int
    shard_clock_totals: dict[int, float] = field(default_factory=dict)

    @property
    def n_ops(self) -> int:
        return int(self.op_codes.size)

    def latency_summary(self) -> LatencySummary:
        return LatencySummary.from_latencies(self.op_latencies)

    def queued_latency_summary(self, arrival_rate: float) -> LatencySummary:
        """Open-loop queueing tail at a fixed arrival rate (ops per
        simulated second) — see
        :func:`~repro.service.stats.queued_response_times`."""
        return LatencySummary.from_latencies(
            queued_response_times(self.owners, self.op_latencies,
                                  arrival_rate)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_ops": self.n_ops,
            "window_ops": self.window_ops,
            "initial_shards": self.initial_shards,
            "final_shards": self.final_shards,
            "final_epoch": self.final_epoch,
            "latency": self.latency_summary().to_dict(),
            "load": self.windows.to_dict(),
            "rebalance": self.log.to_dict(),
            "wall_secs": self.wall_secs,
            "io": self.io.snapshot().__dict__,
        }


def run_elastic_service(
    service: ShardedIndex,
    trace: MixedTrace,
    config: StorageConfig | str,
    *,
    rebalancer: Rebalancer | None = None,
    window_ops: int = 512,
    warm: bool = False,
    batch: bool = True,
    batch_size: int = 512,
    threads: int | None = None,
    write_batch: bool | None = None,
    scan_batch: bool | None = None,
    executor: str | None = None,
    workers: int | None = None,
) -> ElasticReport:
    """Replay ``trace`` in windows, letting ``rebalancer`` (if given)
    reshape the topology between windows.

    With ``rebalancer=None`` this is a windowed replay over a static
    topology — the control it is benchmarked against.  Results are
    per-op and aligned with the trace, exactly as
    :meth:`Router.replay` returns them.  ``executor``/``workers``
    select the shard-execution model (see
    :mod:`repro.service.executor`); topology changes between windows
    are exactly the control-plane sync points the process executor's
    drain handling is built around.
    """
    service.bind(config, warm=warm)
    router = Router(service, batch=batch, batch_size=batch_size,
                    threads=threads, write_batch=write_batch,
                    scan_batch=scan_batch, executor=executor,
                    workers=workers)
    initial_shards = service.n_shards
    windows = WindowedLoad()
    log = rebalancer.log if rebalancer is not None else RebalanceLog()
    results: list[Any] = []
    latency_parts: list[np.ndarray] = []
    owner_parts: list[np.ndarray] = []
    t0 = time.perf_counter()
    try:
        for w, chunk in enumerate(trace.iter_windows(window_ops)):
            # Owners resolved to stable ids at this window's epoch (scan
            # owners = the shard owning the scan's start key).
            owner_parts.append(service.table.route_ids(chunk.keys))
            chunk_results, stats = router.replay(chunk)
            results.extend(chunk_results)
            latency_parts.append(stats.op_latencies)
            assert stats.shard_ids is not None
            ids = owner_parts[-1]
            ops_by_shard = {
                int(sid): int(count)
                for sid, count in zip(*np.unique(ids, return_counts=True))
            }
            hints = {
                sid: np.median(np.asarray(chunk.keys)[ids == sid])
                for sid in ops_by_shard
            }
            window = LoadWindow(
                index=w,
                epoch=stats.epoch if stats.epoch is not None else 0,
                ops=ops_by_shard,
                clock=dict(zip(stats.shard_ids, stats.per_shard_clock)),
                split_hints=hints,
            )
            windows.record(window)
            if rebalancer is not None:
                rebalancer.observe(window)
        wall_secs = time.perf_counter() - t0
        report = ElasticReport(
            results=results,
            op_codes=trace.ops,
            op_latencies=(
                np.concatenate(latency_parts) if latency_parts
                else np.zeros(0, dtype=np.float64)
            ),
            owners=(
                np.concatenate(owner_parts) if owner_parts
                else np.zeros(0, dtype=np.int64)
            ),
            windows=windows,
            log=log,
            io=service.merged_io(),
            wall_secs=wall_secs,
            window_ops=window_ops,
            initial_shards=initial_shards,
            final_shards=service.n_shards,
            final_epoch=service.topology_epoch,
            shard_clock_totals=windows.totals_by_shard(),
        )
        return report
    finally:
        router.close()
        service.unbind()
