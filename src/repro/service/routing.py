"""First-class routing table: an epoch-versioned key-range -> shard-id map.

Before this module existed the partition layout lived implicitly in the
order of ``ShardedIndex.shards`` and a ``lo_key`` boundary array baked in
at construction.  A dynamic topology (live split/merge, rebalancing)
needs routing to be a *mutable, versioned* object that every layer
consults instead of caching:

* each :class:`RouteEntry` maps the key range ``[lo_key, next.lo_key)``
  to a **stable shard id** — ids name shards for their whole lifetime
  (split and merge always mint fresh ids for the children, so a live id
  implies an unchanged key range);
* the table's **epoch** increments on every topology change.  Positional
  shard ordinals (what :meth:`route` returns, and what indexes the
  service's ordered shard list) are only meaningful within one epoch —
  no layer may retain them across an epoch bump (reprolint's
  protocol-discipline rule P4 enforces this statically for the service
  layer);
* routing stays rightmost-biased (``searchsorted(..., side="right")``)
  exactly as the static layout was: entry ``o >= 1`` serves keys
  ``>=`` its ``lo_key``, and the leftmost entry serves the open left
  end (``lo_key is None``).

The sanitizer (:func:`repro.analysis.sanitize.check_sharded`) validates
the table against the shards' actual leaf spans at every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class RouteEntry:
    """One routing fence: keys in ``[lo_key, next lo_key)`` -> ``shard_id``.

    ``lo_key is None`` marks the open left end (leftmost entry only).
    """

    lo_key: Any
    shard_id: int


class RoutingTable:
    """Ordered, epoch-versioned map from key ranges to stable shard ids."""

    def __init__(
        self,
        entries: Sequence[RouteEntry | tuple[Any, int]],
        *,
        epoch: int = 0,
    ) -> None:
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self._entries: list[RouteEntry] = [
            e if isinstance(e, RouteEntry)
            else RouteEntry(lo_key=e[0], shard_id=int(e[1]))
            for e in entries
        ]
        self._epoch = int(epoch)
        self._rebuild()
        self._validate()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recompute the searchsorted fence array from the entries."""
        self._boundaries = np.asarray([e.lo_key for e in self._entries[1:]])

    def _validate(self) -> None:
        if not self._entries:
            raise ValueError("routing table needs at least one entry")
        if self._entries[0].lo_key is not None:
            raise ValueError(
                f"leftmost entry must have lo_key None (open left end), "
                f"got {self._entries[0].lo_key!r}"
            )
        fences = [e.lo_key for e in self._entries[1:]]
        if any(lo is None for lo in fences):
            raise ValueError("only the leftmost entry may have lo_key None")
        if any(b <= a for a, b in zip(fences, fences[1:])):
            raise ValueError(
                f"routing fences must be strictly increasing: {fences!r}"
            )
        ids = [e.shard_id for e in self._entries]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in routing table: {ids!r}")
        if any(i < 0 for i in ids):
            raise ValueError(f"shard ids must be >= 0: {ids!r}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Topology version; bumped by every :meth:`split`/:meth:`merge`."""
        return self._epoch

    @property
    def entries(self) -> tuple[RouteEntry, ...]:
        return tuple(self._entries)

    @property
    def boundaries(self) -> np.ndarray:
        """Routing fences (entry ``o >= 1`` serves keys >= fence ``o-1``)."""
        return self._boundaries

    @property
    def shard_ids(self) -> list[int]:
        """Stable shard ids in key-range order (this epoch's ordinals)."""
        return [e.shard_id for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._entries)

    def __contains__(self, shard_id: object) -> bool:
        return any(e.shard_id == shard_id for e in self._entries)

    def id_at(self, ordinal: int) -> int:
        """Stable shard id of the entry at ``ordinal`` (this epoch)."""
        return self._entries[ordinal].shard_id

    def ordinal_of(self, shard_id: int) -> int:
        """Position of ``shard_id`` in key-range order (this epoch only —
        never cache the result across an epoch bump)."""
        for o, entry in enumerate(self._entries):
            if entry.shard_id == shard_id:
                return o
        raise KeyError(f"shard id {shard_id} is not in the routing table")

    def lo_of(self, ordinal: int) -> Any:
        """Inclusive lower fence of the entry (None = open left end)."""
        return self._entries[ordinal].lo_key

    def boundary_of(self, ordinal: int) -> Any:
        """Exclusive upper fence: the next entry's ``lo_key`` (None for
        the rightmost entry, which serves the open right end)."""
        if ordinal + 1 < len(self._entries):
            return self._entries[ordinal + 1].lo_key
        return None

    def span_of(self, shard_id: int) -> tuple[Any, Any]:
        """``(lo, hi)`` key range served by ``shard_id`` (hi exclusive;
        None on either side marks an open end)."""
        o = self.ordinal_of(shard_id)
        return self.lo_of(o), self.boundary_of(o)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, keys: Sequence[Any]) -> np.ndarray:
        """Entry ordinal for each key (vectorized, rightmost-biased).

        Ordinals index this epoch's key-range order; resolve them to
        stable ids (:meth:`id_at` / :meth:`route_ids`) before holding on
        to the assignment.
        """
        if len(self._entries) == 1:
            return np.zeros(len(keys), dtype=np.int64)
        return np.searchsorted(self._boundaries, np.asarray(keys),
                               side="right")

    def route_ids(self, keys: Sequence[Any]) -> np.ndarray:
        """Stable shard id for each key (epoch-safe to retain)."""
        ids = np.asarray([e.shard_id for e in self._entries], dtype=np.int64)
        result: np.ndarray = ids[self.route(keys)]
        return result

    def route_key(self, key: Any) -> int:
        """Entry ordinal owning one key (this epoch)."""
        return int(self.route(np.asarray([key]))[0])

    # ------------------------------------------------------------------
    # topology mutation
    # ------------------------------------------------------------------
    def split(self, shard_id: int, boundary: Any,
              left_id: int, right_id: int) -> int:
        """Replace ``shard_id``'s range with two child ranges cut at
        ``boundary`` (left keeps the original lo, right starts at the
        boundary).  Bumps and returns the epoch."""
        o = self.ordinal_of(shard_id)
        old = self._entries[o]
        if boundary is None:
            raise ValueError("split boundary may not be None")
        if old.lo_key is not None and boundary <= old.lo_key:
            raise ValueError(
                f"split boundary {boundary!r} not above the range's "
                f"lo_key {old.lo_key!r}"
            )
        hi = self.boundary_of(o)
        if hi is not None and boundary >= hi:
            raise ValueError(
                f"split boundary {boundary!r} not below the range's "
                f"upper fence {hi!r}"
            )
        fresh = {left_id, right_id}
        if len(fresh) != 2:
            raise ValueError("left and right child ids must differ")
        live = set(self.shard_ids) - {shard_id}
        if fresh & live:
            raise ValueError(
                f"child ids {sorted(fresh & live)} already routed"
            )
        self._entries[o : o + 1] = [
            RouteEntry(lo_key=old.lo_key, shard_id=left_id),
            RouteEntry(lo_key=boundary, shard_id=right_id),
        ]
        self._rebuild()
        self._epoch += 1
        self._validate()
        return self._epoch

    def merge(self, left_id: int, right_id: int, merged_id: int) -> int:
        """Replace two *adjacent* ranges with one under a fresh id.
        Bumps and returns the epoch."""
        oa = self.ordinal_of(left_id)
        ob = self.ordinal_of(right_id)
        if ob != oa + 1:
            raise ValueError(
                f"shards {left_id} and {right_id} are not adjacent in "
                f"key-range order (ordinals {oa}, {ob})"
            )
        live = set(self.shard_ids) - {left_id, right_id}
        if merged_id in live:
            raise ValueError(f"merged id {merged_id} already routed")
        lo = self._entries[oa].lo_key
        self._entries[oa : ob + 1] = [
            RouteEntry(lo_key=lo, shard_id=merged_id)
        ]
        self._rebuild()
        self._epoch += 1
        self._validate()
        return self._epoch

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "epoch": self._epoch,
            "entries": [
                {"lo_key": e.lo_key, "shard_id": e.shard_id}
                for e in self._entries
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RoutingTable(epoch={self._epoch}, "
            f"entries={len(self._entries)})"
        )
