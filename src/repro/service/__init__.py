"""Sharded index service: the backend-agnostic partitioned serving layer.

The production-facing subsystem: a :class:`ShardedIndex` range-partitions
one indexed column across N independent shards (each with its own
device/clock/buffer-pool stack), a :class:`Router` splits mixed
read/insert/scan batches per shard and dispatches them through the
vectorized batch-probe *and* batch-write engines (optionally on a
thread pool), and :class:`ServiceStats` merges per-shard IOStats and
folds per-op simulated latencies into p50/p95/p99 summaries.

Everything here speaks the unified Index protocol (:mod:`repro.api`):
any registered backend serves — leaf-sliceable trees (BF, B+) are
range-partitioned, the rest run as a single-shard degenerate case —
with no backend-specific branches in the service code.
"""

from repro.service.router import Router
from repro.service.sharded import Shard, ShardedIndex
from repro.service.stats import LatencySummary, ServiceStats

__all__ = [
    "Router",
    "Shard",
    "ShardedIndex",
    "LatencySummary",
    "ServiceStats",
]
