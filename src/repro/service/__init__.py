"""Sharded index service: the backend-agnostic partitioned serving layer.

The production-facing subsystem: a :class:`ShardedIndex` range-partitions
one indexed column across N independent shards (each with its own
device/clock/buffer-pool stack) under an epoch-versioned
:class:`RoutingTable`, a :class:`Router` splits mixed read/insert/scan
batches per shard and dispatches them through the vectorized batch-probe
*and* batch-write engines on a pluggable :class:`ShardExecutor`
(serial, GIL-bound threads, or true process-per-shard parallelism —
see :mod:`repro.service.executor`), and :class:`ServiceStats` merges
per-shard IOStats and folds per-op simulated latencies into
p50/p95/p99 summaries.

The topology is *dynamic*: ``split_shard``/``merge_shards`` reshape the
partition layout live (stable shard ids, epoch bumps, Router drain hooks
preserving read-your-writes), and the :class:`Rebalancer` control loop
drives them from windowed per-shard load with hysteresis — see
:mod:`repro.service.routing` and :mod:`repro.service.rebalance`.

Everything here speaks the unified Index protocol (:mod:`repro.api`):
any registered backend serves — leaf-sliceable trees (BF, B+) are
range-partitioned, the rest run as a single-shard degenerate case —
with no backend-specific branches in the service code.
"""

from repro.service.executor import (
    ExecutorError,
    ProcessExecutor,
    ReplayCore,
    SerialExecutor,
    ShardExecutor,
    SubOp,
    ThreadExecutor,
    make_executor,
)
from repro.service.rebalance import (
    ElasticReport,
    RebalanceDecision,
    RebalanceLog,
    Rebalancer,
    RebalancerConfig,
    run_elastic_service,
)
from repro.service.router import Router
from repro.service.routing import RouteEntry, RoutingTable
from repro.service.sharded import Shard, ShardedIndex
from repro.service.stats import (
    LatencySummary,
    LoadWindow,
    ServiceStats,
    WindowedLoad,
    queued_response_times,
)

__all__ = [
    "ElasticReport",
    "ExecutorError",
    "LatencySummary",
    "LoadWindow",
    "ProcessExecutor",
    "RebalanceDecision",
    "RebalanceLog",
    "Rebalancer",
    "RebalancerConfig",
    "ReplayCore",
    "RouteEntry",
    "Router",
    "RoutingTable",
    "SerialExecutor",
    "ServiceStats",
    "Shard",
    "ShardExecutor",
    "ShardedIndex",
    "SubOp",
    "ThreadExecutor",
    "WindowedLoad",
    "make_executor",
    "queued_response_times",
    "run_elastic_service",
]
