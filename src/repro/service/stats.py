"""Service-level statistics: merged IOStats and tail-latency summaries.

A sharded service runs N independent storage stacks; explaining its
behaviour needs two views the single-index harness never produced:

* the **merged I/O picture** — per-shard :class:`IOStats` summed into
  one counter block (identical to an unsharded stack's counters when the
  shards partition the work, which the service guarantees for point
  operations);
* **tail latency** — per-operation simulated latencies folded into
  p50/p95/p99 summaries, the metric a serving system is actually judged
  by (a mean hides the HDD seek that every 100th probe eats).

Simulated *throughput* is defined by the service's makespan: shards own
independent device stacks and progress concurrently, so the service
completes a trace when its slowest shard does, and throughput is
``n_ops / max(per-shard clock)``.  The per-shard clocks also expose the
load-balance ratio (max/mean), which quantifies how much a skewed key
popularity concentrates work on the hot shard.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.storage.iostats import IOStats
from repro.workloads.mixed import OP_NAMES


@dataclass(frozen=True)
class LatencySummary:
    """Percentile digest of one latency population (simulated seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, latencies) -> "LatencySummary":
        arr = np.asarray(latencies, dtype=np.float64)
        if arr.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        p50, p95, p99 = np.percentile(arr, (50, 95, 99))
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            max=float(arr.max()),
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ServiceStats:
    """Aggregate outcome of replaying one trace through a sharded service.

    Holds the per-shard IOStats snapshots and simulated clocks plus the
    per-operation latency array (aligned with the trace), and derives
    the merged counters, percentile summaries and throughput from them.
    """

    def __init__(
        self,
        per_shard_io: list[IOStats],
        per_shard_clock: list[float],
        op_codes: np.ndarray,
        op_latencies: np.ndarray,
        wall_secs: float,
    ) -> None:
        self.per_shard_io = per_shard_io
        self.per_shard_clock = per_shard_clock
        self.op_codes = np.asarray(op_codes)
        self.op_latencies = np.asarray(op_latencies, dtype=np.float64)
        self.wall_secs = wall_secs

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.per_shard_io)

    @property
    def n_ops(self) -> int:
        return int(self.op_codes.size)

    @property
    def io(self) -> IOStats:
        """All shards' counters summed into one block."""
        total = IOStats()
        for stats in self.per_shard_io:
            total = total + stats
        return total

    @property
    def makespan(self) -> float:
        """Simulated completion time: the slowest shard's clock."""
        return max(self.per_shard_clock) if self.per_shard_clock else 0.0

    @property
    def total_sim_seconds(self) -> float:
        """Total simulated device/CPU time across all shards."""
        return float(sum(self.per_shard_clock))

    @property
    def load_balance(self) -> float:
        """Max/mean shard clock — 1.0 is perfectly balanced."""
        if not self.per_shard_clock:
            return 1.0
        mean = self.total_sim_seconds / len(self.per_shard_clock)
        return self.makespan / mean if mean > 0 else 1.0

    # ------------------------------------------------------------------
    def latencies_for(self, op_name: str | None = None) -> np.ndarray:
        """Per-op latencies, optionally restricted to one op type."""
        if op_name is None:
            return self.op_latencies
        codes = [c for c, n in OP_NAMES.items() if n == op_name]
        if not codes:
            raise ValueError(
                f"unknown op {op_name!r}; known: {sorted(OP_NAMES.values())}"
            )
        return self.op_latencies[self.op_codes == codes[0]]

    def latency_summary(self, op_name: str | None = None) -> LatencySummary:
        return LatencySummary.from_latencies(self.latencies_for(op_name))

    # ------------------------------------------------------------------
    def throughput(self) -> float:
        """Operations per simulated second at service level (makespan)."""
        span = self.makespan
        return self.n_ops / span if span > 0 else float("inf")

    def wall_throughput(self) -> float:
        """Operations per wall-clock second of the replay itself."""
        return self.n_ops / self.wall_secs if self.wall_secs > 0 else float("inf")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able digest (used by serve-bench and the benchmarks)."""
        per_op = {
            name: self.latency_summary(name).to_dict()
            for code, name in OP_NAMES.items()
            if np.any(self.op_codes == code)
        }
        io = self.io
        return {
            "n_shards": self.n_shards,
            "n_ops": self.n_ops,
            "latency": {
                "overall": self.latency_summary().to_dict(),
                **per_op,
            },
            "throughput_ops_per_sim_sec": self.throughput(),
            "throughput_ops_per_wall_sec": self.wall_throughput(),
            "makespan_sim_secs": self.makespan,
            "total_sim_secs": self.total_sim_seconds,
            "load_balance": self.load_balance,
            "wall_secs": self.wall_secs,
            "per_shard_sim_secs": list(self.per_shard_clock),
            "io": {f.name: getattr(io, f.name) for f in fields(io)},
        }
