"""Service-level statistics: merged IOStats, tail latency, windowed load.

A sharded service runs N independent storage stacks; explaining its
behaviour needs views the single-index harness never produced:

* the **merged I/O picture** — per-shard :class:`IOStats` summed into
  one counter block (identical to an unsharded stack's counters when the
  shards partition the work, which the service guarantees for point
  operations);
* **tail latency** — per-operation simulated latencies folded into
  p50/p95/p99 summaries, the metric a serving system is actually judged
  by (a mean hides the HDD seek that every 100th probe eats);
* **windowed load** — per-shard ops and simulated-clock shares over
  fixed-size trace windows (:class:`LoadWindow`), keyed by *stable shard
  id* so the series stays meaningful across routing-table epoch bumps;
  this is what the :class:`~repro.service.rebalance.Rebalancer` watches;
* **queueing tail** — :func:`queued_response_times` turns per-op service
  times into open-loop FIFO response times.  Per-op simulated latency is
  load-independent (each shard's clock only advances while it serves),
  so a melted hot shard shows up in *queue delay*, not in service time —
  exactly the signal a p99 SLO sees in a real system.

Simulated *throughput* is defined by the service's makespan: shards own
independent device stacks and progress concurrently, so the service
completes a trace when its slowest shard does, and throughput is
``n_ops / max(per-shard clock)``.  The per-shard clocks also expose the
load-balance ratio (max/mean), which quantifies how much a skewed key
popularity concentrates work on the hot shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

import numpy as np

from repro.storage.config import StorageStack
from repro.storage.iostats import IOStats
from repro.workloads.mixed import OP_NAMES


@dataclass(frozen=True)
class ShardDelta:
    """One shard's counter movement over a worker-executed batch.

    The process executor measures this inside the worker (IOStats diff
    and clock advance across the batch replay), ships it over the pipe
    as plain builtins (:meth:`to_wire`/:meth:`from_wire` — no numpy, no
    custom classes), and the parent folds it into the owning shard's
    live stack with :meth:`apply`.  Because the fold is additive on the
    same counters the in-process executors mutate directly, everything
    downstream — :class:`ServiceStats` before/after snapshots, retired-
    counter continuity across ``split_shard``/``merge_shards``, and the
    rebalancer's load windows — sees one continuous series regardless
    of which process did the work.
    """

    io: IOStats
    clock: float

    def to_wire(self) -> dict[str, Any]:
        return {
            "io": {f.name: getattr(self.io, f.name) for f in fields(self.io)},
            "clock": self.clock,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "ShardDelta":
        return cls(
            io=IOStats(**{k: int(v) for k, v in doc["io"].items()}),
            clock=float(doc["clock"]),
        )

    def apply(self, stack: StorageStack) -> None:
        """Fold this delta into a live shard stack's counters."""
        stats = stack.stats
        for f in fields(self.io):
            setattr(stats, f.name,
                    getattr(stats, f.name) + getattr(self.io, f.name))
        stack.clock.advance(self.clock)


@dataclass(frozen=True)
class LatencySummary:
    """Percentile digest of one latency population (simulated seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencySummary":
        arr = np.asarray(latencies, dtype=np.float64)
        if arr.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        p50, p95, p99 = np.percentile(arr, (50, 95, 99))
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            max=float(arr.max()),
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ServiceStats:
    """Aggregate outcome of replaying one trace through a sharded service.

    Holds the per-shard IOStats snapshots and simulated clocks plus the
    per-operation latency array (aligned with the trace), and derives
    the merged counters, percentile summaries and throughput from them.

    ``shard_ids`` (when present) aligns the per-shard lists with stable
    routing-table shard ids; ``retired_io``/``retired_clock`` hold work
    charged during the replay by shards that were split or merged away
    mid-replay, so :attr:`io` stays a complete account.
    """

    def __init__(
        self,
        per_shard_io: list[IOStats],
        per_shard_clock: list[float],
        op_codes: np.ndarray,
        op_latencies: np.ndarray,
        wall_secs: float,
        shard_ids: list[int] | None = None,
        retired_io: IOStats | None = None,
        retired_clock: float = 0.0,
        epoch: int | None = None,
    ) -> None:
        self.per_shard_io = per_shard_io
        self.per_shard_clock = per_shard_clock
        self.op_codes = np.asarray(op_codes)
        self.op_latencies = np.asarray(op_latencies, dtype=np.float64)
        self.wall_secs = wall_secs
        self.shard_ids = shard_ids
        self.retired_io = IOStats() if retired_io is None else retired_io
        self.retired_clock = retired_clock
        self.epoch = epoch

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.per_shard_io)

    @property
    def n_ops(self) -> int:
        return int(self.op_codes.size)

    @property
    def io(self) -> IOStats:
        """All shards' counters summed into one block (retired included)."""
        total = IOStats() + self.retired_io
        for stats in self.per_shard_io:
            total = total + stats
        return total

    @property
    def makespan(self) -> float:
        """Simulated completion time: the slowest shard's clock."""
        return max(self.per_shard_clock) if self.per_shard_clock else 0.0

    @property
    def total_sim_seconds(self) -> float:
        """Total simulated device/CPU time across all shards."""
        return float(sum(self.per_shard_clock)) + self.retired_clock

    @property
    def load_balance(self) -> float:
        """Max/mean live-shard clock — 1.0 is perfectly balanced."""
        if not self.per_shard_clock:
            return 1.0
        mean = float(sum(self.per_shard_clock)) / len(self.per_shard_clock)
        return self.makespan / mean if mean > 0 else 1.0

    # ------------------------------------------------------------------
    def latencies_for(self, op_name: str | None = None) -> np.ndarray:
        """Per-op latencies, optionally restricted to one op type."""
        if op_name is None:
            return self.op_latencies
        codes = [c for c, n in OP_NAMES.items() if n == op_name]
        if not codes:
            raise ValueError(
                f"unknown op {op_name!r}; known: {sorted(OP_NAMES.values())}"
            )
        result: np.ndarray = self.op_latencies[self.op_codes == codes[0]]
        return result

    def latency_summary(self, op_name: str | None = None) -> LatencySummary:
        return LatencySummary.from_latencies(self.latencies_for(op_name))

    # ------------------------------------------------------------------
    def throughput(self) -> float:
        """Operations per simulated second at service level (makespan)."""
        span = self.makespan
        return self.n_ops / span if span > 0 else float("inf")

    def wall_throughput(self) -> float:
        """Operations per wall-clock second of the replay itself."""
        return self.n_ops / self.wall_secs if self.wall_secs > 0 else float("inf")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able digest (used by serve-bench and the benchmarks)."""
        per_op = {
            name: self.latency_summary(name).to_dict()
            for code, name in OP_NAMES.items()
            if np.any(self.op_codes == code)
        }
        io = self.io
        doc: dict[str, Any] = {
            "n_shards": self.n_shards,
            "n_ops": self.n_ops,
            "latency": {
                "overall": self.latency_summary().to_dict(),
                **per_op,
            },
            "throughput_ops_per_sim_sec": self.throughput(),
            "throughput_ops_per_wall_sec": self.wall_throughput(),
            "makespan_sim_secs": self.makespan,
            "total_sim_secs": self.total_sim_seconds,
            "load_balance": self.load_balance,
            "wall_secs": self.wall_secs,
            "per_shard_sim_secs": list(self.per_shard_clock),
            "io": {f.name: getattr(io, f.name) for f in fields(io)},
        }
        if self.shard_ids is not None:
            doc["shard_ids"] = list(self.shard_ids)
        if self.epoch is not None:
            doc["epoch"] = self.epoch
        return doc


# ---------------------------------------------------------------------------
# windowed load accounting (what the Rebalancer watches)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoadWindow:
    """Per-shard load over one fixed-size slice of a replayed trace.

    Keys are *stable shard ids* (routing-table names), so consecutive
    windows remain comparable across topology epochs: a split's children
    simply appear under fresh ids while the parent's series ends.
    """

    index: int                      # window ordinal within the replay
    epoch: int                      # routing-table epoch when replayed
    ops: Mapping[int, int]          # shard id -> ops routed to it
    clock: Mapping[int, float]      # shard id -> sim-clock advance
    #: shard id -> median key of the ops routed to it this window — the
    #: load centroid a split should cut at (half the observed traffic
    #: lands on each child), rather than the leaf-count midpoint.
    split_hints: Mapping[int, Any] = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return len(self.clock)

    @property
    def total_ops(self) -> int:
        return int(sum(self.ops.values()))

    @property
    def total_clock(self) -> float:
        return float(sum(self.clock.values()))

    def clock_share(self, shard_id: int) -> float:
        """Fraction of this window's simulated time spent on one shard."""
        total = self.total_clock
        if total <= 0.0:
            return 0.0
        return float(self.clock.get(shard_id, 0.0)) / total

    @property
    def load_balance(self) -> float:
        """Max/mean shard clock within the window (1.0 = balanced)."""
        if not self.clock:
            return 1.0
        values = [float(v) for v in self.clock.values()]
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else 1.0

    def hottest(self) -> tuple[int, float]:
        """(shard id, clock share) of the window's hottest shard."""
        if not self.clock:
            raise ValueError("empty load window has no hottest shard")
        sid = min(self.clock, key=lambda s: (-float(self.clock[s]), s))
        return sid, self.clock_share(sid)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "epoch": self.epoch,
            "ops": {str(k): int(v) for k, v in self.ops.items()},
            "clock": {str(k): float(v) for k, v in self.clock.items()},
            "load_balance": self.load_balance,
        }


class WindowedLoad:
    """Accumulates :class:`LoadWindow` records across one elastic replay."""

    def __init__(self) -> None:
        self.windows: list[LoadWindow] = []

    def record(self, window: LoadWindow) -> None:
        self.windows.append(window)

    def __len__(self) -> int:
        return len(self.windows)

    def mean_load_balance(self) -> float:
        """Mean per-window max/mean clock ratio over non-empty windows."""
        active = [w.load_balance for w in self.windows if w.total_clock > 0]
        return float(np.mean(active)) if active else 1.0

    def worst_load_balance(self) -> float:
        active = [w.load_balance for w in self.windows if w.total_clock > 0]
        return max(active) if active else 1.0

    def totals_by_shard(self) -> dict[int, float]:
        """Lifetime simulated clock per shard id across all windows."""
        totals: dict[int, float] = {}
        for w in self.windows:
            for sid, secs in w.clock.items():
                totals[sid] = totals.get(sid, 0.0) + float(secs)
        return totals

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_windows": len(self.windows),
            "mean_load_balance": self.mean_load_balance(),
            "worst_load_balance": self.worst_load_balance(),
            "windows": [w.to_dict() for w in self.windows],
        }


# ---------------------------------------------------------------------------
# open-loop queueing model
# ---------------------------------------------------------------------------


def queued_response_times(
    owners: Sequence[int],
    service_times: Sequence[float],
    arrival_rate: float,
) -> np.ndarray:
    """Open-loop FIFO response times per operation.

    Operation ``i`` arrives at ``i / arrival_rate`` (a fixed-rate open
    arrival process over the whole trace) and is served FIFO by its
    owning shard (``owners[i]``, stable shard ids) for ``service_times
    [i]`` simulated seconds; shards serve in parallel but one op at a
    time.  The returned response time is queue wait plus service time —
    the quantity a latency SLO measures.  A shard whose offered load
    exceeds its service rate builds an unbounded queue, which is exactly
    how a melted hot shard destroys p99 even though each individual op's
    service time is unchanged.
    """
    if arrival_rate <= 0.0:
        raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
    owner_arr = np.asarray(owners, dtype=np.int64)
    svc = np.asarray(service_times, dtype=np.float64)
    if owner_arr.shape != svc.shape:
        raise ValueError(
            f"owners ({owner_arr.shape}) and service_times ({svc.shape}) "
            "must align"
        )
    free: dict[int, float] = {}
    out = np.empty(svc.size, dtype=np.float64)
    for i in range(svc.size):
        arrive = i / arrival_rate
        sid = int(owner_arr[i])
        start = max(arrive, free.get(sid, 0.0))
        done = start + float(svc[i])
        free[sid] = done
        out[i] = done - arrive
    return out
