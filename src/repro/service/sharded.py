"""ShardedIndex: one key space range-partitioned across N index shards.

The serving layer's core data structure.  A :class:`ShardedIndex` holds N
independent index shards, each owning a contiguous slice of the key
space and — once bound — its *own* storage stack (device pair, simulated
clock, optional buffer pool), so shards progress concurrently the way
the partitions of a distributed index do.

**Backend-agnostic.**  Shards are built through the
:mod:`repro.api` registry (``kind`` is any registered backend name) and
driven purely through the unified Index protocol — there are no
backend-specific branches here.  Leaf-sliceable ordered trees
(``supports_sharding``: BF-Tree, B+-Tree) are partitioned via their
``shard_leaves``/``shard_from_leaves`` hooks; every other backend
(hash, FD-Tree, SILT, binsearch) serves as a single-shard degenerate
case, so the whole registry is servable under identical traffic.
Write addressing goes through ``index.write_target(tid)`` — the
protocol hook that maps a tuple id to the backend's native target
(page id for BF-Trees, rid for everything else).

**Topology is dynamic.**  The partition layout lives in a first-class
:class:`~repro.service.routing.RoutingTable`: an epoch-versioned ordered
map from key ranges to *stable shard ids*.  :meth:`split_shard` and
:meth:`merge_shards` change the layout live — children are rebuilt from
the parent's leaf run via the same ``shard_from_leaves`` hook the static
builder uses, registered drain hooks flush any Router-buffered writes
for the migrating range to the old shard first, and only then does the
table's epoch flip.  Positional shard ordinals are meaningful within a
single epoch only; resolve shards by stable id (:meth:`shard_by_id`)
when holding state across operations.

**Construction is equivalence-preserving.**  ``build`` bulk-loads one
donor index over the whole relation, then slices its leaf chain into
contiguous runs and rebuilds an independent directory over each run
(:meth:`BFTree.from_leaves`).  Because the shards reuse the donor's leaf
objects — the exact same Bloom bit patterns, key fences and page runs a
single unsharded index would have — a point operation routed to its
shard performs *bit-identical* work: the same ``SearchResult`` (global
tuple ids included, since all shards share the one relation) and the
same I/O charges, so the shards' IOStats counters **sum** to the
unsharded index's counters exactly.  Two conditions guard this:

* cuts never land on a key that spans the boundary (the slicer skips
  spill-back leaves and duplicate fences), so no probe would need a
  neighbour leaf across a shard border;
* every shard keeps at least two leaves, so each shard directory has
  the same height as the donor's (one root over the leaf level at any
  scale where the donor's leaf count fits one root) and descents charge
  the same index reads.  ``uniform_height`` records whether this held.

Live splits and merges preserve the same story: children inherit the
parent's leaf objects unchanged, and the retired parent stack's already
-charged IOStats/clock are absorbed into the service-level ``retired_io``
/``retired_clock`` accumulators, so :meth:`merged_io` still sums to the
totals a static topology would have charged for the same past work.

Range scans are routed to every overlapping shard; a cross-shard scan
pays one extra directory descent per additional shard — the real cost a
scatter-gather scan pays in a sharded system — while its match count
remains exact.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.api.protocol import Index
from repro.api.registry import make_index
from repro.analysis.sanitize import maybe_check
from repro.api.results import (
    RangeScanResult,
    SearchResult,
    as_scalar,
    normalize_scan_windows,
)
from repro.service.routing import RoutingTable
from repro.storage.config import StorageConfig, StorageStack, build_stack
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation


@dataclass
class Shard:
    """One partition: an index over a contiguous key slice + its stack.

    ``shard_id`` is the shard's *stable* name in the routing table — it
    never changes for the shard's lifetime (splits and merges mint fresh
    ids for their children).  ``-1`` asks :class:`ShardedIndex` to
    assign the next free id at construction.
    """

    index: Index
    lo_key: Any             # smallest routable key (None = open left end)
    hi_key: Any             # largest key at creation time (introspection
                            # only; scans clamp to the routing boundary,
                            # which also covers keys inserted past hi_key)
    stack: StorageStack | None = None
    shard_id: int = -1

    @property
    def bound(self) -> bool:
        return self.stack is not None


class ShardedIndex:
    """Hash-free range partitioning of one indexed column across shards."""

    #: The service is not itself leaf-sliceable (its shards are).
    supports_sharding = False

    def __init__(
        self,
        relation: Relation,
        key_column: str,
        shards: list[Shard],
        kind: str,
        unique: bool,
        donor_height: int,
        *,
        epoch: int = 0,
    ) -> None:
        self.relation = relation
        self.key_column = key_column
        self.kind = kind
        self.unique = unique
        self.donor_height = donor_height
        next_id = 1 + max(
            (s.shard_id for s in shards if s.shard_id >= 0), default=-1
        )
        for shard in shards:
            if shard.shard_id < 0:
                shard.shard_id = next_id
                next_id += 1
        self._by_id: dict[int, Shard] = {s.shard_id: s for s in shards}
        if len(self._by_id) != len(shards):
            raise ValueError(
                f"duplicate shard ids: {[s.shard_id for s in shards]!r}"
            )
        #: The source of truth for the partition layout.  Every routing
        #: decision goes through it; its epoch bumps on split/merge.
        self.table = RoutingTable(
            [(s.lo_key, s.shard_id) for s in shards], epoch=epoch
        )
        self._next_shard_id = next_id
        self._shards_cache: tuple[int, list[Shard]] | None = None
        self._bind_config: StorageConfig | str | None = None
        self._bind_warm = False
        #: IOStats/clock time charged by stacks of shards that were
        #: since split or merged away — keeps :meth:`merged_io` summing
        #: to the pre-topology-change totals for already-charged work.
        self.retired_io = IOStats()
        self.retired_clock = 0.0
        self._drain_hooks: list[Callable[[int], None]] = []

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def build(
        cls,
        relation: Relation,
        key_column: str,
        n_shards: int = 4,
        kind: str = "bf",
        config: StorageConfig | str | None = None,
        unique: bool = False,
        **cfg: Any,
    ) -> "ShardedIndex":
        """Build a donor index via the backend registry and slice it
        into up to ``n_shards``.

        ``kind`` is any registered backend name
        (:func:`repro.api.registered_backends`); extra keyword
        arguments (``fpp``, ...) are forwarded to the backend's
        builder.  Leaf-sliceable trees are partitioned with cuts moved
        off key-spanning boundaries and each shard keeping at least two
        leaves (directory-height parity with the donor), so the
        effective shard count may be lower than requested.  Backends
        without sliceable leaves come back as a single-shard service —
        the degenerate case that still rides the Router, the batch
        engines and the stats pipeline unchanged.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        donor = make_index(kind, relation, key_column, unique=unique,
                           config=config, **cfg)
        if not donor.supports_sharding:
            shards = [Shard(index=donor, lo_key=None, hi_key=None)]
            return cls(relation, key_column, shards, kind, unique,
                       donor.height)
        leaves = donor.shard_leaves()
        donor_height = donor.height
        cuts = cls._choose_cuts(leaves, n_shards, donor)
        runs = [
            leaves[start:stop]
            for start, stop in zip([0] + cuts, cuts + [len(leaves)])
        ]
        shards = []
        for i, run in enumerate(runs):
            tree = donor.shard_from_leaves(run)
            lo = donor.shard_leaf_span(run[0])[0]
            hi = donor.shard_leaf_span(run[-1])[1]
            shards.append(Shard(index=tree, lo_key=None if i == 0 else lo,
                                hi_key=hi))
        return cls(relation, key_column, shards, kind, unique, donor_height)

    @staticmethod
    def _choose_cuts(leaves: list[Any], n_shards: int,
                     donor: Index) -> list[int]:
        """Balanced leaf-chain cut positions, adjusted off spanning keys
        (the backend's ``shard_cut_spans`` hook knows its leaf layout)."""
        n_leaves = len(leaves)
        n = max(1, min(n_shards, n_leaves // 2))

        cuts: list[int] = []
        prev = 0
        for s in range(1, n):
            ideal = round(s * n_leaves / n)
            c = max(ideal, prev + 2)
            while c < n_leaves and donor.shard_cut_spans(leaves[c - 1],
                                                         leaves[c]):
                c += 1
            if c >= n_leaves or n_leaves - c < 2:
                break
            cuts.append(c)
            prev = c
        return cuts

    # ==================================================================
    # storage binding
    # ==================================================================
    def bind(self, config: StorageConfig | str, warm: bool = False) -> None:
        """Give every shard a fresh, independent storage stack.

        The config is remembered so shards created by a later
        :meth:`split_shard`/:meth:`merge_shards` bind the same way.
        """
        self._bind_config = config
        self._bind_warm = warm
        for shard in self.shards:
            shard.stack = build_stack(config)
            shard.index.bind(shard.stack, warm=warm)

    def unbind(self) -> None:
        self._bind_config = None
        self._bind_warm = False
        for shard in self.shards:
            shard.index.unbind()
            shard.stack = None

    # ==================================================================
    # topology
    # ==================================================================
    @property
    def shards(self) -> list[Shard]:
        """Shards in key-range order for the *current* epoch.

        The list is derived from the routing table (and memoized per
        epoch); positions in it are epoch-scoped ordinals — hold a
        stable ``shard_id`` instead when state outlives one call.
        """
        cached = self._shards_cache
        epoch = self.table.epoch
        if cached is not None and cached[0] == epoch:
            return cached[1]
        ordered = [self._by_id[e.shard_id] for e in self.table.entries]
        self._shards_cache = (epoch, ordered)
        return ordered

    @property
    def topology_epoch(self) -> int:
        return self.table.epoch

    def shard_by_id(self, shard_id: int) -> Shard | None:
        """Resolve a stable shard id (None once split/merged away)."""
        return self._by_id.get(shard_id)

    def register_drain_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callback invoked with a shard id immediately
        *before* that shard's range migrates (split/merge), while the
        old routing epoch is still current — the Router uses this to
        flush buffered writes to the old shard (read-your-writes)."""
        self._drain_hooks.append(hook)

    def unregister_drain_hook(self, hook: Callable[[int], None]) -> None:
        try:
            self._drain_hooks.remove(hook)
        except ValueError:
            pass

    def drain(self, shard_id: int) -> None:
        """Flush any registered buffered state targeting ``shard_id``
        (e.g. Router read/write buffers) to the shard *as currently
        routed*.  Topology operations call this before anything moves;
        external orchestration (durable split/merge) may call it to
        land buffered writes on a wrapper before unwrapping it."""
        for hook in list(self._drain_hooks):
            hook(shard_id)

    @contextmanager
    def suspended_charges(self, shard_id: int) -> Iterator[None]:
        """Run state-reconstruction work against one shard without
        leaving a trace in its counters.

        The process executor merges a worker's IOStats/clock deltas as
        batches are acknowledged; when it later replays the same batches
        in the parent to rebuild the in-memory structures (tree, buffer
        pool residency), the replay's charges would double-count.  This
        snapshots the shard's stats and clock on entry and restores both
        on exit, so the replayed work changes state but not books."""
        shard = self._by_id.get(shard_id)
        stack = shard.stack if shard is not None else None
        if stack is None:
            yield
            return
        keep_io = stack.stats.snapshot()
        keep_clock = stack.clock.now()
        try:
            yield
        finally:
            for f in dataclass_fields(keep_io):
                setattr(stack.stats, f.name, getattr(keep_io, f.name))
            stack.clock.reset()
            stack.clock.advance(keep_clock)

    def _retire_stack(self, shard: Shard) -> None:
        """Absorb a to-be-discarded shard's charged work into the
        service-level accumulators so ``merged_io`` stays continuous."""
        if shard.stack is not None:
            self.retired_io = self.retired_io + shard.stack.stats
            self.retired_clock += shard.stack.clock.now()
            shard.index.unbind()
            shard.stack = None

    def _admit(self, shard: Shard) -> None:
        """Register a freshly built shard and bind it like its peers."""
        self._by_id[shard.shard_id] = shard
        if self._bind_config is not None:
            shard.stack = build_stack(self._bind_config)
            shard.index.bind(shard.stack, warm=self._bind_warm)

    @staticmethod
    def _split_cut(index: Index, leaves: list[Any], at: Any) -> int:
        """Pick a leaf-chain cut for a split: the midpoint (or the first
        leaf at/above ``at``), nudged off key-spanning boundaries while
        keeping at least two leaves on each side."""
        n = len(leaves)
        if at is None:
            ideal = n // 2
        else:
            at = as_scalar(at)
            ideal = n - 2
            for c in range(1, n):
                span_lo = index.shard_leaf_span(leaves[c])[0]
                if span_lo is not None and span_lo >= at:
                    ideal = c
                    break
        ideal = max(2, min(n - 2, ideal))
        for delta in range(n):
            for c in (ideal + delta, ideal - delta):
                if 2 <= c <= n - 2 and not index.shard_cut_spans(
                    leaves[c - 1], leaves[c]
                ):
                    return c
        raise ValueError(
            "no valid split point: every candidate cut spans a key"
        )

    def split_shard(self, shard_id: int, *,
                    at: Any = None) -> tuple[int, int]:
        """Split one shard's key range into two live children.

        The parent's leaf run is cut (optionally near key ``at``) and
        each half rebuilt into an independent shard directory via the
        backend's ``shard_from_leaves`` hook — the children reuse the
        parent's leaf objects, so reads served after the split are
        bit-identical to reads served before it.  Drain hooks run
        before anything moves (Router-buffered writes land on the old
        shard first), the parent's charged IOStats/clock are retired
        into the service accumulators, and the routing-table epoch flips
        last, once the children are registered and bound.

        Returns the two fresh child shard ids (left, right).
        """
        shard = self._by_id.get(shard_id)
        if shard is None:
            raise KeyError(f"shard id {shard_id} is not in the service")
        index = shard.index
        if not index.supports_sharding:
            raise ValueError(
                f"shard {shard_id} ({type(index).__name__}) is not "
                "leaf-sliceable and cannot be split"
            )
        if index.n_leaves < 4:
            raise ValueError(
                f"shard {shard_id} has {index.n_leaves} leaves; a split "
                "needs at least 4 (two per child)"
            )
        # Flush Router-buffered writes for the migrating range to the
        # *old* shard while the old epoch is still current.
        self.drain(shard_id)
        leaves = index.shard_leaves()
        cut = self._split_cut(index, leaves, at)
        left_run, right_run = leaves[:cut], leaves[cut:]
        boundary = as_scalar(index.shard_leaf_span(right_run[0])[0])
        left_hi = as_scalar(index.shard_leaf_span(left_run[-1])[1])
        right_hi = as_scalar(index.shard_leaf_span(right_run[-1])[1])
        self._retire_stack(shard)
        left_id = self._next_shard_id
        right_id = left_id + 1
        self._next_shard_id += 2
        left = Shard(index=index.shard_from_leaves(left_run),
                     lo_key=shard.lo_key, hi_key=left_hi, shard_id=left_id)
        right = Shard(index=index.shard_from_leaves(right_run),
                      lo_key=boundary, hi_key=right_hi, shard_id=right_id)
        del self._by_id[shard_id]
        self._admit(left)
        self._admit(right)
        self.table.split(shard_id, boundary, left_id, right_id)
        maybe_check(self)
        return left_id, right_id

    def merge_shards(self, sid_a: int, sid_b: int) -> int:
        """Merge two *adjacent* shards into one live shard.

        The two leaf runs are concatenated in key order and rebuilt into
        one shard directory (``shard_from_leaves`` relinks the chain
        across the old seam).  Drain hooks, stack retirement and the
        epoch flip follow the same discipline as :meth:`split_shard`.

        Returns the fresh merged shard id.
        """
        for sid in (sid_a, sid_b):
            if sid not in self._by_id:
                raise KeyError(f"shard id {sid} is not in the service")
        oa = self.table.ordinal_of(sid_a)
        ob = self.table.ordinal_of(sid_b)
        if ob == oa - 1:            # caller order-insensitive
            sid_a, sid_b = sid_b, sid_a
        elif ob != oa + 1:
            raise ValueError(
                f"shards {sid_a} and {sid_b} are not adjacent in "
                "key-range order"
            )
        left, right = self._by_id[sid_a], self._by_id[sid_b]
        if not (left.index.supports_sharding
                and right.index.supports_sharding):
            raise ValueError(
                f"shards {sid_a}/{sid_b} are not leaf-sliceable and "
                "cannot be merged"
            )
        self.drain(sid_a)
        self.drain(sid_b)
        run = left.index.shard_leaves() + right.index.shard_leaves()
        merged_hi = as_scalar(left.index.shard_leaf_span(run[-1])[1])
        self._retire_stack(left)
        self._retire_stack(right)
        merged_id = self._next_shard_id
        self._next_shard_id += 1
        merged = Shard(index=left.index.shard_from_leaves(run),
                       lo_key=left.lo_key, hi_key=merged_hi,
                       shard_id=merged_id)
        del self._by_id[sid_a]
        del self._by_id[sid_b]
        self._admit(merged)
        self.table.merge(sid_a, sid_b, merged_id)
        maybe_check(self)
        return merged_id

    # ==================================================================
    # routing
    # ==================================================================
    def route(self, keys: Sequence[Any]) -> np.ndarray:
        """Shard ordinal for each key (vectorized, rightmost-biased;
        valid for the current epoch only — see :class:`RoutingTable`)."""
        return self.table.route(keys)

    def route_key(self, key: Any) -> int:
        return self.table.route_key(key)

    def scan_plan(self, lo: Any, hi: Any) -> list[tuple[int, Any, Any]]:
        """(shard, sub_lo, sub_hi) legs of a range scan over [lo, hi].

        Middle legs (every shard but the last) are clamped to the
        *routing boundary* — the next table entry's ``lo_key`` — not to
        the shard's build-time ``hi_key``: inserts route any key below
        the boundary to this shard, so clamping at the build-time
        maximum would silently drop keys inserted between ``hi_key`` and
        the boundary from cross-shard scans.  A shard can never hold a
        key ``>=`` the boundary (the router sends those to its
        neighbour), so consecutive legs sharing the boundary value
        cannot count anything twice.
        """
        return self.scan_plan_many([(lo, hi)])[0]

    def scan_plan_many(self, windows: Iterable[tuple[Any, Any]]
                       ) -> list[list[tuple[int, Any, Any]]]:
        """Vectorized :meth:`scan_plan` over a batch of scan windows.

        Both endpoints of every window are routed in one
        ``searchsorted`` pass each; entry ``j`` equals
        ``scan_plan(*windows[j])`` exactly.  The Router's trace planning
        and :meth:`range_scan_many` run on this.
        """
        wins = normalize_scan_windows(windows)
        if not wins:
            return []
        table = self.table
        s_los = table.route([lo for lo, _ in wins])
        s_his = table.route([hi for _, hi in wins])
        plans: list[list[tuple[int, Any, Any]]] = []
        for (lo, hi), s_lo, s_hi in zip(wins, s_los, s_his):
            legs: list[tuple[int, Any, Any]] = []
            for s in range(int(s_lo), int(s_hi) + 1):
                sub_lo = lo if s == s_lo else table.lo_of(s)
                sub_hi = hi if s == s_hi else table.boundary_of(s)
                if sub_lo is None:
                    sub_lo = lo
                if sub_lo <= sub_hi:
                    legs.append((s, sub_lo, sub_hi))
            plans.append(legs)
        return plans

    # ==================================================================
    # operations (single-caller convenience; the Router batches)
    # ==================================================================
    def search(self, key: Any) -> SearchResult:
        return self.shards[self.route_key(key)].index.search(key)

    def search_many(self, keys: Sequence[Any],
                    latency_sink: list[float] | None = None
                    ) -> list[SearchResult | None]:
        """Route a probe batch and dispatch each shard's slice through
        its ``search_many``; results come back in input order."""
        keys = [as_scalar(k) for k in keys]
        assign = self.route(keys)
        results: list[SearchResult | None] = [None] * len(keys)
        latencies = [0.0] * len(keys)
        for s, shard in enumerate(self.shards):
            idx = np.nonzero(assign == s)[0]
            if not len(idx):
                continue
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            shard_results = shard.index.search_many(
                [keys[i] for i in idx], latency_sink=sub_sink
            )
            for j, i in enumerate(idx):
                results[i] = shard_results[j]
                if sub_sink is not None:
                    latencies[i] = sub_sink[j]
        if latency_sink is not None:
            latency_sink.extend(latencies)
        return results

    def insert(self, key: Any, tid: int) -> None:
        """Index tuple ``tid`` under ``key`` on the owning shard."""
        key = as_scalar(key)
        self.insert_on(self.shards[self.route_key(key)], key, tid)

    def insert_on(self, shard: Shard, key: Any, tid: int) -> None:
        """Insert on an already-routed shard.  Tuple-id-to-native-target
        translation (BF-Trees index data *pages*, rid-based backends
        keep the tuple id) lives in the protocol's ``write_target``
        hook, so no backend branching happens here."""
        shard.index.insert(key, shard.index.write_target(int(tid)))

    def insert_many(self, keys: Sequence[Any], tids: Sequence[int],
                    latency_sink: list[float] | None = None) -> None:
        """Vectorized batch insert: route the whole batch in one pass,
        then drive each shard's slice through its ``insert_many``.

        Bit-identical to per-key :meth:`insert` calls in trace order —
        each shard receives its keys in input order and the shards share
        no state, so the interleaving across shards cannot matter.
        ``latency_sink`` receives per-op simulated latencies aligned
        with ``keys``.
        """
        keys = [as_scalar(k) for k in keys]
        assign = self.route(keys)
        latencies = [0.0] * len(keys)
        for s, shard in enumerate(self.shards):
            idx = np.nonzero(assign == s)[0]
            if not len(idx):
                continue
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            self.insert_many_on(
                shard,
                [keys[i] for i in idx],
                [int(tids[i]) for i in idx],
                latency_sink=sub_sink,
            )
            if sub_sink is not None:
                for j, i in enumerate(idx):
                    latencies[i] = sub_sink[j]
        if latency_sink is not None:
            latency_sink.extend(latencies)
        maybe_check(self)

    def insert_many_on(self, shard: Shard, keys: Sequence[Any],
                       tids: Sequence[int],
                       latency_sink: list[float] | None = None) -> None:
        """Batch :meth:`insert_on` for an already-routed key group —
        the Router's write-batching entry point."""
        targets = [shard.index.write_target(int(t)) for t in tids]
        shard.index.insert_many(keys, targets, latency_sink=latency_sink)
        maybe_check(self)

    def delete_many(self, keys: Sequence[Any],
                    tids: Sequence[int | None] | None = None,
                    latency_sink: list[float] | None = None) -> list[Any]:
        """Batch delete, routed like :meth:`insert_many`.

        ``tids`` (tuple ids, translated per backend via ``write_target``
        — e.g. to page ids for BF shards, enabling the counting-filter
        in-place path) come back as
        :class:`~repro.api.DeleteOutcome` objects aligned with ``keys``.
        """
        keys = [as_scalar(k) for k in keys]
        n = len(keys)
        tid_list: list[int | None] = (
            [None] * n if tids is None else list(tids)
        )
        assign = self.route(keys)
        outcomes: list[Any] = [None] * n
        latencies = [0.0] * n
        for s, shard in enumerate(self.shards):
            idx = np.nonzero(assign == s)[0]
            if not len(idx):
                continue
            sub_keys = [keys[i] for i in idx]
            targets: list[Any] = []
            for i in idx:
                t = tid_list[i]
                targets.append(
                    None if t is None else shard.index.write_target(int(t))
                )
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            shard_out = shard.index.delete_many(
                sub_keys, targets, latency_sink=sub_sink
            )
            for j, i in enumerate(idx):
                outcomes[i] = shard_out[j]
                if sub_sink is not None:
                    latencies[i] = sub_sink[j]
        if latency_sink is not None:
            latency_sink.extend(latencies)
        maybe_check(self)
        return outcomes

    def range_scan(self, lo: Any, hi: Any) -> RangeScanResult:
        """Scatter-gather scan: every overlapping shard scans its slice."""
        total = RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
        for s, sub_lo, sub_hi in self.scan_plan(lo, hi):
            part = self.shards[s].index.range_scan(sub_lo, sub_hi)
            total.matches += part.matches
            total.pages_read += part.pages_read
            total.leaves_visited += part.leaves_visited
        return total

    def range_scan_many(self, windows: Iterable[tuple[Any, Any]],
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]:
        """Vectorized batch :meth:`range_scan`: plan every window's legs
        in one pass (:meth:`scan_plan_many`), drive each shard's leg
        group through its index's ``range_scan_many``, and merge the
        legs back per scan.

        Bit-identical to per-window :meth:`range_scan` calls — legs land
        on the same shards with the same sub-windows, and each shard's
        batch scan engine is charge-identical to its scalar loop.
        ``latency_sink`` receives one simulated per-scan latency per
        window (a cross-shard scan's latency is the sum of its legs',
        matching the Router's scatter-gather accounting).
        """
        plans = self.scan_plan_many(windows)
        n = len(plans)
        results = [
            RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
            for _ in range(n)
        ]
        latencies = [0.0] * n
        per_shard: list[list[tuple[int, Any, Any]]] = [
            [] for _ in self.shards
        ]
        for j, legs in enumerate(plans):
            for s, sub_lo, sub_hi in legs:
                per_shard[s].append((j, sub_lo, sub_hi))
        for s, shard in enumerate(self.shards):
            group = per_shard[s]
            if not group:
                continue
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            shard_results = shard.index.range_scan_many(
                [(sub_lo, sub_hi) for _, sub_lo, sub_hi in group],
                latency_sink=sub_sink,
            )
            for (j, _, _), part in zip(group, shard_results):
                results[j].matches += part.matches
                results[j].pages_read += part.pages_read
                results[j].leaves_visited += part.leaves_visited
            if sub_sink is not None:
                for (j, _, _), latency in zip(group, sub_sink):
                    latencies[j] += latency
        if latency_sink is not None:
            latency_sink.extend(latencies)
        return results

    # ==================================================================
    # introspection
    # ==================================================================
    @property
    def n_shards(self) -> int:
        return len(self._by_id)

    @property
    def uniform_height(self) -> bool:
        """True when every shard directory matches the donor's height —
        the precondition for exact IOStats equivalence."""
        return all(s.index.height == self.donor_height for s in self.shards)

    @property
    def size_pages(self) -> int:
        return sum(s.index.size_pages for s in self.shards)

    @property
    def n_leaves(self) -> int:
        return sum(s.index.n_leaves for s in self.shards)

    @property
    def height(self) -> int:
        return max(s.index.height for s in self.shards)

    def merged_io(self) -> IOStats:
        """All shards' counters summed into one block — including work
        charged by since-retired shards (split/merge donors), so the sum
        stays continuous across topology changes."""
        total = IOStats() + self.retired_io
        for shard in self.shards:
            if shard.stack is not None:
                total = total + shard.stack.stats
        return total

    def shard_clocks(self) -> list[float]:
        """Per live shard simulated clocks, in key-range order
        (``retired_clock`` holds the since-retired shards' time)."""
        return [
            s.stack.clock.now() if s.stack is not None else 0.0
            for s in self.shards
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShardedIndex(kind={self.kind!r}, column={self.key_column!r}, "
            f"shards={self.n_shards}, epoch={self.topology_epoch}, "
            f"leaves={self.n_leaves}, pages={self.size_pages})"
        )
