"""ShardedIndex: one key space range-partitioned across N index shards.

The serving layer's core data structure.  A :class:`ShardedIndex` holds N
independent index shards, each owning a contiguous slice of the key
space and — once bound — its *own* storage stack (device pair, simulated
clock, optional buffer pool), so shards progress concurrently the way
the partitions of a distributed index do.

**Backend-agnostic.**  Shards are built through the
:mod:`repro.api` registry (``kind`` is any registered backend name) and
driven purely through the unified Index protocol — there are no
backend-specific branches here.  Leaf-sliceable ordered trees
(``supports_sharding``: BF-Tree, B+-Tree) are partitioned via their
``shard_leaves``/``shard_from_leaves`` hooks; every other backend
(hash, FD-Tree, SILT, binsearch) serves as a single-shard degenerate
case, so the whole registry is servable under identical traffic.
Write addressing goes through ``index.write_target(tid)`` — the
protocol hook that maps a tuple id to the backend's native target
(page id for BF-Trees, rid for everything else).

**Construction is equivalence-preserving.**  ``build`` bulk-loads one
donor index over the whole relation, then slices its leaf chain into
contiguous runs and rebuilds an independent directory over each run
(:meth:`BFTree.from_leaves`).  Because the shards reuse the donor's leaf
objects — the exact same Bloom bit patterns, key fences and page runs a
single unsharded index would have — a point operation routed to its
shard performs *bit-identical* work: the same ``SearchResult`` (global
tuple ids included, since all shards share the one relation) and the
same I/O charges, so the shards' IOStats counters **sum** to the
unsharded index's counters exactly.  Two conditions guard this:

* cuts never land on a key that spans the boundary (the slicer skips
  spill-back leaves and duplicate fences), so no probe would need a
  neighbour leaf across a shard border;
* every shard keeps at least two leaves, so each shard directory has
  the same height as the donor's (one root over the leaf level at any
  scale where the donor's leaf count fits one root) and descents charge
  the same index reads.  ``uniform_height`` records whether this held.

Range scans are routed to every overlapping shard; a cross-shard scan
pays one extra directory descent per additional shard — the real cost a
scatter-gather scan pays in a sharded system — while its match count
remains exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.protocol import Index
from repro.api.registry import make_index
from repro.analysis.sanitize import maybe_check
from repro.api.results import (
    RangeScanResult,
    SearchResult,
    as_scalar,
    normalize_scan_windows,
)
from repro.storage.config import StorageConfig, StorageStack, build_stack
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation


@dataclass
class Shard:
    """One partition: an index over a contiguous key slice + its stack."""

    index: Index
    lo_key: object          # smallest routable key (None = open left end)
    hi_key: object          # largest key at build time (introspection only;
                            # scans clamp to the routing boundary, which
                            # also covers keys inserted past hi_key)
    stack: StorageStack | None = None

    @property
    def bound(self) -> bool:
        return self.stack is not None


class ShardedIndex:
    """Hash-free range partitioning of one indexed column across shards."""

    #: The service is not itself leaf-sliceable (its shards are).
    supports_sharding = False

    def __init__(
        self,
        relation: Relation,
        key_column: str,
        shards: list[Shard],
        kind: str,
        unique: bool,
        donor_height: int,
    ) -> None:
        self.relation = relation
        self.key_column = key_column
        self.shards = shards
        self.kind = kind
        self.unique = unique
        self.donor_height = donor_height
        # Routing fences: shard s (s >= 1) serves keys >= its lo_key,
        # mirroring the donor directory's rightmost-biased descent.
        self._boundaries = np.asarray([s.lo_key for s in shards[1:]])

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def build(
        cls,
        relation: Relation,
        key_column: str,
        n_shards: int = 4,
        kind: str = "bf",
        config=None,
        unique: bool = False,
        **cfg,
    ) -> "ShardedIndex":
        """Build a donor index via the backend registry and slice it
        into up to ``n_shards``.

        ``kind`` is any registered backend name
        (:func:`repro.api.registered_backends`); extra keyword
        arguments (``fpp``, ...) are forwarded to the backend's
        builder.  Leaf-sliceable trees are partitioned with cuts moved
        off key-spanning boundaries and each shard keeping at least two
        leaves (directory-height parity with the donor), so the
        effective shard count may be lower than requested.  Backends
        without sliceable leaves come back as a single-shard service —
        the degenerate case that still rides the Router, the batch
        engines and the stats pipeline unchanged.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        donor = make_index(kind, relation, key_column, unique=unique,
                           config=config, **cfg)
        if not donor.supports_sharding:
            shards = [Shard(index=donor, lo_key=None, hi_key=None)]
            return cls(relation, key_column, shards, kind, unique,
                       donor.height)
        leaves = donor.shard_leaves()
        donor_height = donor.height
        cuts = cls._choose_cuts(leaves, n_shards, donor)
        runs = [
            leaves[start:stop]
            for start, stop in zip([0] + cuts, cuts + [len(leaves)])
        ]
        shards = []
        for i, run in enumerate(runs):
            tree = donor.shard_from_leaves(run)
            lo = donor.shard_leaf_span(run[0])[0]
            hi = donor.shard_leaf_span(run[-1])[1]
            shards.append(Shard(index=tree, lo_key=None if i == 0 else lo,
                                hi_key=hi))
        return cls(relation, key_column, shards, kind, unique, donor_height)

    @staticmethod
    def _choose_cuts(leaves: list, n_shards: int, donor: Index) -> list[int]:
        """Balanced leaf-chain cut positions, adjusted off spanning keys
        (the backend's ``shard_cut_spans`` hook knows its leaf layout)."""
        n_leaves = len(leaves)
        n = max(1, min(n_shards, n_leaves // 2))

        cuts: list[int] = []
        prev = 0
        for s in range(1, n):
            ideal = round(s * n_leaves / n)
            c = max(ideal, prev + 2)
            while c < n_leaves and donor.shard_cut_spans(leaves[c - 1],
                                                         leaves[c]):
                c += 1
            if c >= n_leaves or n_leaves - c < 2:
                break
            cuts.append(c)
            prev = c
        return cuts

    # ==================================================================
    # storage binding
    # ==================================================================
    def bind(self, config: StorageConfig | str, warm: bool = False) -> None:
        """Give every shard a fresh, independent storage stack."""
        for shard in self.shards:
            shard.stack = build_stack(config)
            shard.index.bind(shard.stack, warm=warm)

    def unbind(self) -> None:
        for shard in self.shards:
            shard.index.unbind()
            shard.stack = None

    # ==================================================================
    # routing
    # ==================================================================
    def route(self, keys) -> np.ndarray:
        """Shard index for each key (vectorized, rightmost-biased)."""
        if len(self.shards) == 1:
            return np.zeros(len(keys), dtype=np.int64)
        return np.searchsorted(self._boundaries, np.asarray(keys),
                               side="right")

    def route_key(self, key) -> int:
        return int(self.route(np.asarray([key]))[0])

    def scan_plan(self, lo, hi) -> list[tuple[int, object, object]]:
        """(shard, sub_lo, sub_hi) legs of a range scan over [lo, hi].

        Middle legs (every shard but the last) are clamped to the
        *routing boundary* — the next shard's ``lo_key`` — not to the
        shard's build-time ``hi_key``: inserts route any key below the
        boundary to this shard, so clamping at the build-time maximum
        would silently drop keys inserted between ``hi_key`` and the
        boundary from cross-shard scans.  A shard can never hold a key
        ``>=`` the boundary (the router sends those to its neighbour),
        so consecutive legs sharing the boundary value cannot count
        anything twice.
        """
        return self.scan_plan_many([(lo, hi)])[0]

    def scan_plan_many(self, windows
                       ) -> list[list[tuple[int, object, object]]]:
        """Vectorized :meth:`scan_plan` over a batch of scan windows.

        Both endpoints of every window are routed in one
        ``searchsorted`` pass each; entry ``j`` equals
        ``scan_plan(*windows[j])`` exactly.  The Router's trace planning
        and :meth:`range_scan_many` run on this.
        """
        wins = normalize_scan_windows(windows)
        if not wins:
            return []
        s_los = self.route([lo for lo, _ in wins])
        s_his = self.route([hi for _, hi in wins])
        plans: list[list[tuple[int, object, object]]] = []
        for (lo, hi), s_lo, s_hi in zip(wins, s_los, s_his):
            legs: list[tuple[int, object, object]] = []
            for s in range(int(s_lo), int(s_hi) + 1):
                shard = self.shards[s]
                sub_lo = lo if s == s_lo else shard.lo_key
                sub_hi = hi if s == s_hi else self.shards[s + 1].lo_key
                if sub_lo is None:
                    sub_lo = lo
                if sub_lo <= sub_hi:
                    legs.append((s, sub_lo, sub_hi))
            plans.append(legs)
        return plans

    # ==================================================================
    # operations (single-caller convenience; the Router batches)
    # ==================================================================
    def search(self, key) -> SearchResult:
        return self.shards[self.route_key(key)].index.search(key)

    def search_many(self, keys,
                    latency_sink: list[float] | None = None
                    ) -> list[SearchResult]:
        """Route a probe batch and dispatch each shard's slice through
        its ``search_many``; results come back in input order."""
        keys = [as_scalar(k) for k in keys]
        assign = self.route(keys)
        results: list[SearchResult | None] = [None] * len(keys)
        latencies = [0.0] * len(keys)
        for s, shard in enumerate(self.shards):
            idx = np.nonzero(assign == s)[0]
            if not len(idx):
                continue
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            shard_results = shard.index.search_many(
                [keys[i] for i in idx], latency_sink=sub_sink
            )
            for j, i in enumerate(idx):
                results[i] = shard_results[j]
                if sub_sink is not None:
                    latencies[i] = sub_sink[j]
        if latency_sink is not None:
            latency_sink.extend(latencies)
        return results

    def insert(self, key, tid: int) -> None:
        """Index tuple ``tid`` under ``key`` on the owning shard."""
        key = as_scalar(key)
        self.insert_on(self.shards[self.route_key(key)], key, tid)

    def insert_on(self, shard: Shard, key, tid: int) -> None:
        """Insert on an already-routed shard.  Tuple-id-to-native-target
        translation (BF-Trees index data *pages*, rid-based backends
        keep the tuple id) lives in the protocol's ``write_target``
        hook, so no backend branching happens here."""
        shard.index.insert(key, shard.index.write_target(int(tid)))

    def insert_many(self, keys, tids,
                    latency_sink: list[float] | None = None) -> None:
        """Vectorized batch insert: route the whole batch in one pass,
        then drive each shard's slice through its ``insert_many``.

        Bit-identical to per-key :meth:`insert` calls in trace order —
        each shard receives its keys in input order and the shards share
        no state, so the interleaving across shards cannot matter.
        ``latency_sink`` receives per-op simulated latencies aligned
        with ``keys``.
        """
        keys = [as_scalar(k) for k in keys]
        assign = self.route(keys)
        latencies = [0.0] * len(keys)
        for s, shard in enumerate(self.shards):
            idx = np.nonzero(assign == s)[0]
            if not len(idx):
                continue
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            self.insert_many_on(
                shard,
                [keys[i] for i in idx],
                [int(tids[i]) for i in idx],
                latency_sink=sub_sink,
            )
            if sub_sink is not None:
                for j, i in enumerate(idx):
                    latencies[i] = sub_sink[j]
        if latency_sink is not None:
            latency_sink.extend(latencies)
        maybe_check(self)

    def insert_many_on(self, shard: Shard, keys, tids,
                       latency_sink: list[float] | None = None) -> None:
        """Batch :meth:`insert_on` for an already-routed key group —
        the Router's write-batching entry point."""
        targets = [shard.index.write_target(int(t)) for t in tids]
        shard.index.insert_many(keys, targets, latency_sink=latency_sink)
        maybe_check(self)

    def delete_many(self, keys, tids=None,
                    latency_sink: list[float] | None = None) -> list:
        """Batch delete, routed like :meth:`insert_many`.

        ``tids`` (tuple ids, translated per backend via ``write_target``
        — e.g. to page ids for BF shards, enabling the counting-filter
        in-place path) come back as
        :class:`~repro.api.DeleteOutcome` objects aligned with ``keys``.
        """
        keys = [as_scalar(k) for k in keys]
        n = len(keys)
        tids = [None] * n if tids is None else list(tids)
        assign = self.route(keys)
        outcomes: list = [None] * n
        latencies = [0.0] * n
        for s, shard in enumerate(self.shards):
            idx = np.nonzero(assign == s)[0]
            if not len(idx):
                continue
            sub_keys = [keys[i] for i in idx]
            targets = [
                None if tids[i] is None
                else shard.index.write_target(int(tids[i]))
                for i in idx
            ]
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            shard_out = shard.index.delete_many(
                sub_keys, targets, latency_sink=sub_sink
            )
            for j, i in enumerate(idx):
                outcomes[i] = shard_out[j]
                if sub_sink is not None:
                    latencies[i] = sub_sink[j]
        if latency_sink is not None:
            latency_sink.extend(latencies)
        maybe_check(self)
        return outcomes

    def range_scan(self, lo, hi) -> RangeScanResult:
        """Scatter-gather scan: every overlapping shard scans its slice."""
        total = RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
        for s, sub_lo, sub_hi in self.scan_plan(lo, hi):
            part = self.shards[s].index.range_scan(sub_lo, sub_hi)
            total.matches += part.matches
            total.pages_read += part.pages_read
            total.leaves_visited += part.leaves_visited
        return total

    def range_scan_many(self, windows,
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]:
        """Vectorized batch :meth:`range_scan`: plan every window's legs
        in one pass (:meth:`scan_plan_many`), drive each shard's leg
        group through its index's ``range_scan_many``, and merge the
        legs back per scan.

        Bit-identical to per-window :meth:`range_scan` calls — legs land
        on the same shards with the same sub-windows, and each shard's
        batch scan engine is charge-identical to its scalar loop.
        ``latency_sink`` receives one simulated per-scan latency per
        window (a cross-shard scan's latency is the sum of its legs',
        matching the Router's scatter-gather accounting).
        """
        plans = self.scan_plan_many(windows)
        n = len(plans)
        results = [
            RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
            for _ in range(n)
        ]
        latencies = [0.0] * n
        per_shard: list[list[tuple[int, object, object]]] = [
            [] for _ in self.shards
        ]
        for j, legs in enumerate(plans):
            for s, sub_lo, sub_hi in legs:
                per_shard[s].append((j, sub_lo, sub_hi))
        for s, shard in enumerate(self.shards):
            group = per_shard[s]
            if not group:
                continue
            sub_sink: list[float] | None = (
                [] if latency_sink is not None else None
            )
            shard_results = shard.index.range_scan_many(
                [(sub_lo, sub_hi) for _, sub_lo, sub_hi in group],
                latency_sink=sub_sink,
            )
            for (j, _, _), part in zip(group, shard_results):
                results[j].matches += part.matches
                results[j].pages_read += part.pages_read
                results[j].leaves_visited += part.leaves_visited
            if sub_sink is not None:
                for (j, _, _), latency in zip(group, sub_sink):
                    latencies[j] += latency
        if latency_sink is not None:
            latency_sink.extend(latencies)
        return results

    # ==================================================================
    # introspection
    # ==================================================================
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def uniform_height(self) -> bool:
        """True when every shard directory matches the donor's height —
        the precondition for exact IOStats equivalence."""
        return all(s.index.height == self.donor_height for s in self.shards)

    @property
    def size_pages(self) -> int:
        return sum(s.index.size_pages for s in self.shards)

    @property
    def n_leaves(self) -> int:
        return sum(s.index.n_leaves for s in self.shards)

    @property
    def height(self) -> int:
        return max(s.index.height for s in self.shards)

    def merged_io(self) -> IOStats:
        """Sum of all bound shards' counters."""
        total = IOStats()
        for shard in self.shards:
            if shard.stack is not None:
                total = total + shard.stack.stats
        return total

    def shard_clocks(self) -> list[float]:
        return [
            s.stack.clock.now() if s.stack is not None else 0.0
            for s in self.shards
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShardedIndex(kind={self.kind!r}, column={self.key_column!r}, "
            f"shards={self.n_shards}, leaves={self.n_leaves}, "
            f"pages={self.size_pages})"
        )
