"""Pluggable shard-execution layer: serial, threaded and process workers.

The Router plans a trace into per-shard sub-op lists; *how* those lists
get executed is this module's job.  A :class:`ShardExecutor` receives
``(stable shard id, sub-ops)`` plans and returns per-op outcome records;
three implementations cover the useful points of the design space:

``SerialExecutor``
    Replays shards one after another on the calling thread.  The
    reference semantics — every other executor must be bit-identical
    to it (results, IOStats, per-op simulated latencies).

``ThreadExecutor``
    One thread per shard (capped at ``threads``).  **GIL-bound**: the
    pure-Python replay portions time-slice one core, so this buys
    wall-clock overlap only inside NumPy filter passes that release
    the GIL.  Kept for compatibility; prefer ``process`` for scaling.

``ProcessExecutor``
    Pins each shard to a long-lived **worker process** (forked from the
    bound parent, so every worker starts from a bit-identical image of
    the service).  Key/op batches are shipped as numpy ``int64`` arrays
    through ``multiprocessing.shared_memory``; workers replay them with
    the *same* :class:`ReplayCore` code the serial path runs and send
    back per-op outcome records plus serialized IOStats/clock deltas,
    which the parent folds into the owning shard's live counters.  The
    merged numbers are therefore continuous with the serial path —
    ``ServiceStats``, ``merged_io()`` and the rebalancer's load windows
    all keep working unchanged.

**Parent/worker state discipline (ProcessExecutor).**  The parent does
not mutate shard state while a worker owns the shard; it only merges
counter deltas.  Acknowledged batches are journalled per shard.  At a
*sync point* — topology-epoch change, a drain hook firing, ``close()``,
or a worker death — the parent replays the journal through the same
ReplayCore with **charges suspended** (stats and clock snapshotted and
restored around the replay, WAL appends suppressed for durable shards:
the worker already wrote the authoritative frames through the inherited
file description), which reconstructs the exact in-memory state the
worker reached, including buffer-pool residency.  Workers are then
respawned from the fresh image under the new epoch — this is how live
``split_shard``/``merge_shards`` keep working: the affected workers are
torn down at the drain, the split happens in the parent, and the next
replay forks new workers.

**Graceful degradation.**  A worker that dies mid-batch produces a
precise :class:`ExecutorError` naming the shard id and the trace op
offset of the first orphaned sub-op (collected in
:attr:`ProcessExecutor.failures`).  The parent rebuilds the dead
worker's shards from the journal, then replays the orphaned batches
serially **for real** (charges and WAL included) so no submitted op is
lost; runs that survived a crash are correct but not guaranteed
bit-identical to an undisturbed run.

reprolint rule X1 (``executor-confinement``) confines
``concurrent.futures``/``multiprocessing`` imports to this module so
parallel execution stays behind this equivalence-tested seam.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

from repro.analysis import sanitize
from repro.api.protocol import Index
from repro.service.sharded import ShardedIndex
from repro.service.stats import ShardDelta
from repro.workloads.mixed import OP_INSERT, OP_READ, OP_SCAN

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.context import ForkContext
    from multiprocessing.process import BaseProcess


@dataclass(frozen=True)
class SubOp:
    """One shard-local unit of work derived from a trace operation."""

    op_index: int
    code: int
    key: Any
    tid: int = -1
    sub_lo: Any = None
    sub_hi: Any = None


#: One per-op outcome record: (op_index, code, simulated latency, result).
OutRecord = tuple[int, int, float, Any]
#: One planned shard batch: (stable shard id, sub-ops in trace order).
ShardPlan = tuple[int, "list[SubOp]"]


@dataclass
class _ShardSession:
    """Replay state for one shard, keyed by its stable id.

    Holding the *id* (not the Shard object) is what lets the drain hook
    and the flush paths resolve the current owner through the routing
    table at dispatch time.
    """

    sid: int
    out: list[OutRecord] = field(default_factory=list)
    read_buffer: list[SubOp] = field(default_factory=list)
    write_buffer: list[SubOp] = field(default_factory=list)


class ReplayCore:
    """The per-shard batch replay engine shared by every executor.

    Turns one shard's sub-op list into batched engine calls via the
    phase-buffer state machine: reads and scans share the read phase,
    writes fence it (and vice versa), so per-shard trace order — and
    read-your-writes — is preserved.  The *same* instance runs in the
    parent for the serial/thread executors and (via fork) inside each
    worker process, which is what makes the executors bit-identical.
    """

    def __init__(
        self,
        service: ShardedIndex,
        *,
        batch: bool = True,
        batch_size: int = 512,
        write_batch: bool = True,
        scan_batch: bool = True,
    ) -> None:
        self.service = service
        self.batch = batch
        self.batch_size = batch_size
        self.write_batch = write_batch
        self.scan_batch = scan_batch
        #: Live replay sessions by stable shard id (drain-hook target).
        self._sessions: dict[int, _ShardSession] = {}

    # ------------------------------------------------------------------
    def replay_shard(self, sid: int, subops: list[SubOp]) -> list[OutRecord]:
        """Run one shard's sub-ops in order; return (op_index, code,
        latency, result) records (executor-confined, merged by the
        Router's replay)."""
        session = _ShardSession(sid=sid)
        self._sessions[sid] = session
        try:
            # At most one buffer is ever non-empty: an op of the other
            # phase flushes it first, which keeps per-shard trace order
            # (a read or scan issued after an insert observes it, and
            # vice versa).  Reads and scans share the read phase — only
            # writes fence it.
            for op in subops:
                if op.code == OP_READ:
                    self._flush_writes(session)
                    session.read_buffer.append(op)
                elif op.code == OP_INSERT:
                    self._flush_reads(session)
                    session.write_buffer.append(op)
                elif op.code == OP_SCAN and self.scan_batch:
                    self._flush_writes(session)
                    session.read_buffer.append(op)
                elif op.code == OP_SCAN:
                    self._flush_reads(session)
                    self._flush_writes(session)
                    self._scalar_scan(session, op)
                else:
                    # Fail loudly: a new op code buffered as if it were
                    # a scan would be silently dropped by _flush_reads.
                    raise ValueError(f"unknown op code {op.code}")
            self._flush_reads(session)
            self._flush_writes(session)
        finally:
            self._sessions.pop(sid, None)
        return session.out

    def flush_session(self, sid: int) -> None:
        """Flush any live buffers for shard ``sid`` (drain-hook path)."""
        session = self._sessions.get(sid)
        if session is None:
            return
        self._flush_reads(session)
        self._flush_writes(session)

    # ------------------------------------------------------------------
    def _flush_reads(self, session: _ShardSession) -> None:
        # The read-phase buffer holds point reads and (with scan
        # batching) scan legs: both are read-only, so each chunk can
        # dispatch its reads and its scans as two sub-batches — every
        # charge on the read path declares its access pattern
        # explicitly, so the relative order cannot change any simulated
        # number.
        buffer = session.read_buffer
        if not buffer:
            return
        service = self.service
        shard = service.shard_by_id(session.sid)
        out = session.out
        for start in range(0, len(buffer), self.batch_size):
            chunk = buffer[start : start + self.batch_size]
            reads = [op for op in chunk if op.code == OP_READ]
            scans = [op for op in chunk if op.code == OP_SCAN]
            if reads and (shard is None or self.batch):
                sink: list[float] = []
                if shard is None:
                    # Shard retired mid-replay: re-route by key under
                    # the current epoch.
                    chunk_results: list[Any] = list(service.search_many(
                        [op.key for op in reads], latency_sink=sink
                    ))
                else:
                    chunk_results = list(shard.index.search_many(
                        [op.key for op in reads], latency_sink=sink
                    ))
                for op, latency, result in zip(reads, sink, chunk_results):
                    out.append((op.op_index, op.code, latency, result))
            elif reads:
                assert shard is not None and shard.stack is not None
                clock = shard.stack.clock
                for op in reads:
                    begin = clock.now()
                    result = shard.index.search(op.key)
                    out.append(
                        (op.op_index, op.code, clock.now() - begin, result)
                    )
            if scans:
                scan_sink: list[float] = []
                if shard is None:
                    # Re-plan each leg's sub-window across the new
                    # topology; the legs still partition the original
                    # scan window, so merged counts stay exact.
                    scan_results = service.range_scan_many(
                        [(op.sub_lo, op.sub_hi) for op in scans],
                        latency_sink=scan_sink,
                    )
                else:
                    scan_results = shard.index.range_scan_many(
                        [(op.sub_lo, op.sub_hi) for op in scans],
                        latency_sink=scan_sink,
                    )
                for op, latency, result in zip(scans, scan_sink,
                                               scan_results):
                    out.append((op.op_index, op.code, latency, result))
        buffer.clear()

    def _flush_writes(self, session: _ShardSession) -> None:
        buffer = session.write_buffer
        if not buffer:
            return
        service = self.service
        shard = service.shard_by_id(session.sid)
        out = session.out
        for start in range(0, len(buffer), self.batch_size):
            chunk = buffer[start : start + self.batch_size]
            if shard is None:
                # Shard retired mid-replay: re-route by key under the
                # current epoch.
                sink: list[float] = []
                service.insert_many(
                    [op.key for op in chunk],
                    [op.tid for op in chunk],
                    latency_sink=sink,
                )
                for op, latency in zip(chunk, sink):
                    out.append((op.op_index, op.code, latency, None))
            elif self.write_batch:
                sink = []
                service.insert_many_on(
                    shard,
                    [op.key for op in chunk],
                    [op.tid for op in chunk],
                    latency_sink=sink,
                )
                for op, latency in zip(chunk, sink):
                    out.append((op.op_index, op.code, latency, None))
            else:
                assert shard.stack is not None
                clock = shard.stack.clock
                for op in chunk:
                    begin = clock.now()
                    service.insert_on(shard, op.key, op.tid)
                    out.append(
                        (op.op_index, op.code, clock.now() - begin, None)
                    )
        buffer.clear()

    def _scalar_scan(self, session: _ShardSession, op: SubOp) -> None:
        service = self.service
        shard = service.shard_by_id(session.sid)
        if shard is None:
            sink: list[float] = []
            result = service.range_scan_many(
                [(op.sub_lo, op.sub_hi)], latency_sink=sink
            )[0]
            session.out.append((op.op_index, op.code, sink[0], result))
            return
        assert shard.stack is not None
        clock = shard.stack.clock
        begin = clock.now()
        result = shard.index.range_scan(op.sub_lo, op.sub_hi)
        session.out.append(
            (op.op_index, op.code, clock.now() - begin, result)
        )


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
class ExecutorError(RuntimeError):
    """A worker died before acknowledging a shard batch.

    Names the stable ``shard_id`` and the trace ``op_offset`` (the
    op_index of the first orphaned sub-op).  The ProcessExecutor
    recovers by replaying the orphaned batches serially in the parent,
    so the errors are collected in :attr:`ProcessExecutor.failures`
    rather than raised — no submitted op is lost.
    """

    def __init__(self, shard_id: int, op_offset: int, reason: str) -> None:
        super().__init__(
            f"worker for shard {shard_id} died before acknowledging the "
            f"batch starting at trace op {op_offset} ({reason}); "
            "orphaned ops replayed serially in the parent"
        )
        self.shard_id = shard_id
        self.op_offset = op_offset


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class ShardExecutor:
    """Protocol for "how a planned shard batch gets executed".

    Lifecycle: the Router builds a :class:`ReplayCore`, calls
    :meth:`attach`, then :meth:`run` once per replay with the full list
    of per-shard plans; :meth:`drain` is forwarded from the service's
    drain hooks before a topology change retires a shard; :meth:`close`
    releases executor resources.  Implementations must be bit-identical
    to :class:`SerialExecutor` in results, IOStats and per-op latencies.
    """

    name = "base"

    def __init__(self) -> None:
        self._core: ReplayCore | None = None

    def attach(self, core: ReplayCore) -> None:
        """Bind the replay engine this executor dispatches through."""
        self._core = core

    def _require_core(self) -> ReplayCore:
        if self._core is None:
            raise RuntimeError("executor is not attached to a ReplayCore")
        return self._core

    def run(self, plans: list[ShardPlan]) -> list[list[OutRecord]]:
        """Execute every plan; return outcome lists aligned with ``plans``."""
        raise NotImplementedError

    def drain(self, sid: int) -> None:
        """Flush buffered work for shard ``sid`` ahead of its retirement."""
        if self._core is not None:
            self._core.flush_session(sid)

    def close(self) -> None:
        """Release executor resources (idempotent)."""


class SerialExecutor(ShardExecutor):
    """Replay shards one after another on the calling thread."""

    name = "serial"

    def run(self, plans: list[ShardPlan]) -> list[list[OutRecord]]:
        core = self._require_core()
        return [core.replay_shard(sid, subops) for sid, subops in plans]


class ThreadExecutor(ShardExecutor):
    """One thread per shard, capped at ``threads`` (GIL-bound).

    Wall-clock overlap happens only inside NumPy filter passes that
    release the GIL; the pure-Python replay portions time-slice one
    core.  Simulated results are bit-identical to serial because every
    shard owns a private tree, stack and clock.
    """

    name = "thread"

    def __init__(self, threads: int | None = None) -> None:
        super().__init__()
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1 (or None for cpu count)")
        self.threads = threads if threads is not None else (os.cpu_count() or 1)

    def run(self, plans: list[ShardPlan]) -> list[list[OutRecord]]:
        core = self._require_core()
        if len(plans) <= 1:
            return [core.replay_shard(sid, subops) for sid, subops in plans]
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            return list(pool.map(
                core.replay_shard,
                [sid for sid, _ in plans],
                [subops for _, subops in plans],
            ))


# ----------------------------------------------------------------------
# process executor: shared-memory transport
# ----------------------------------------------------------------------
_INT64_MIN = int(np.iinfo(np.int64).min)
_SUBOP_COLS = 6


def _encode_subops(subops: list[SubOp]) -> Any:
    """Pack sub-ops into an int64 (n, 6) array, or None if any field is
    not integral (those batches fall back to the pickle pipe).  The
    sentinel for absent scan bounds is int64 min — routable keys are
    leaf keys and never reach it."""
    rows: list[tuple[int, int, int, int, int, int]] = []
    try:
        for op in subops:
            if not isinstance(op.key, (int, np.integer)):
                return None
            if not (op.sub_lo is None or isinstance(op.sub_lo, (int, np.integer))):
                return None
            if not (op.sub_hi is None or isinstance(op.sub_hi, (int, np.integer))):
                return None
            rows.append((
                op.op_index,
                op.code,
                int(op.key),
                int(op.tid),
                _INT64_MIN if op.sub_lo is None else int(op.sub_lo),
                _INT64_MIN if op.sub_hi is None else int(op.sub_hi),
            ))
        return np.asarray(rows, dtype=np.int64).reshape(len(rows), _SUBOP_COLS)
    except OverflowError:
        return None


def _decode_subops(arr: Any) -> list[SubOp]:
    out: list[SubOp] = []
    for row in arr.tolist():
        op_index, code, key, tid, sub_lo, sub_hi = row
        out.append(SubOp(
            op_index=op_index,
            code=code,
            key=key,
            tid=tid,
            sub_lo=None if sub_lo == _INT64_MIN else sub_lo,
            sub_hi=None if sub_hi == _INT64_MIN else sub_hi,
        ))
    return out


def _attach_and_read_shm(name: str, nrows: int) -> list[SubOp]:
    """Worker side: copy the batch out of the parent's shared segment.

    Python 3.11's SharedMemory has no ``track=`` parameter, so the
    attach here registers the segment with the resource tracker again.
    That is harmless *because* :meth:`ProcessExecutor._spawn` starts
    the parent's tracker before forking: every worker inherits it, the
    tracker's registry is a set (the re-register is a no-op), and the
    parent's ``unlink()`` retires the single entry.  Workers must not
    unregister — they would strip the parent's registration.
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        arr = np.ndarray((nrows, _SUBOP_COLS), dtype=np.int64,
                         buffer=shm.buf).copy()
    finally:
        shm.close()
    return _decode_subops(arr)


def _sync_durable(service: ShardedIndex) -> None:
    """Flush every durable shard's WAL buffer to the OS.

    Called in the parent immediately before each fork (so workers do
    not inherit buffered, unwritten frames and write them twice) and in
    each worker before it exits (so the frames it appended through the
    inherited file description are on disk before the parent resumes
    ownership)."""
    from repro.persist.durable import DurableIndex

    for shard in service.shards:
        if isinstance(shard.index, DurableIndex):
            shard.index.sync()


def _sync_index(index: Index) -> None:
    """Flush one shard's WAL if it is durable (no-op otherwise)."""
    from repro.persist.durable import DurableIndex

    if isinstance(index, DurableIndex):
        index.sync()


@contextmanager
def _quiet_wal(index: Index) -> Iterator[None]:
    """Suppress WAL appends around a state-reconstruction replay: the
    owning worker already wrote the authoritative frames."""
    from repro.persist.durable import DurableIndex

    if isinstance(index, DurableIndex):
        with index.suspended_logging():
            yield
    else:
        yield


# ----------------------------------------------------------------------
# process executor: worker loop
# ----------------------------------------------------------------------
def _worker_main(core: ReplayCore, conn: "Connection[Any, Any]",
                 forced: bool | None) -> None:
    """Long-lived worker loop: replay shard batches until told to stop.

    Runs against the forked (bit-identical) image of the bound service.
    The sanitizer setting is re-applied explicitly so ``REPRO_SANITIZE``
    / ``sanitize.force`` propagate even under start methods that do not
    inherit module state."""
    sanitize.force(forced)
    service = core.service
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            try:
                _sync_durable(service)
                conn.send(("bye",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
            return
        _, sid, shm_name, nrows, payload = msg
        try:
            if shm_name is not None:
                subops = _attach_and_read_shm(shm_name, nrows)
            else:
                subops = payload
            shard = service.shard_by_id(sid)
            if shard is None or shard.stack is None:
                raise RuntimeError(f"worker holds no bound shard {sid}")
            io0 = shard.stack.stats.snapshot()
            clock0 = shard.stack.clock.now()
            out = core.replay_shard(sid, subops)
            delta = ShardDelta(
                io=shard.stack.stats.diff(io0),
                clock=shard.stack.clock.now() - clock0,
            )
            # Acknowledging a batch promises its WAL frames are durable:
            # the parent's state-reconstruction replay deliberately does
            # not rewrite them, so they must survive even a later kill.
            _sync_index(shard.index)
        except BaseException as exc:  # noqa: BLE001 — forwarded verbatim
            # The worker's shard copies may be partially mutated; stop
            # consuming batches so no further state (or WAL frames) can
            # diverge from what the parent will reconstruct.
            try:
                conn.send(("err", exc))
            except Exception:
                try:
                    conn.send(("err", RuntimeError(repr(exc))))
                except Exception:
                    pass
            conn.close()
            return
        conn.send(("ok", out, delta.to_wire()))


@dataclass
class _WorkerHandle:
    process: "BaseProcess"
    conn: "Connection[Any, Any]"
    pinned: list[int] = field(default_factory=list)


#: One dispatched-but-unacknowledged batch:
#: (plan position, shard id, sub-ops, shared segment or None).
_Inflight = tuple[int, int, "list[SubOp]", "shared_memory.SharedMemory | None"]


class ProcessExecutor(ShardExecutor):
    """Pin shards to long-lived forked worker processes.

    ``workers=None`` forks one worker per active shard; ``workers=N``
    caps the pool and round-robins shards across it (batches for shards
    sharing a worker serialize there).  POSIX-only: workers must fork
    so they inherit the bound service image bit-identically.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__()
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for one per shard)")
        self.workers = workers
        #: ExecutorErrors from worker deaths, in occurrence order.
        self.failures: list[ExecutorError] = []
        try:
            self._ctx: "ForkContext" = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover — non-POSIX
            raise RuntimeError(
                "ProcessExecutor requires the fork start method (POSIX only)"
            ) from exc
        self._handles: list[_WorkerHandle] = []
        self._pin: dict[int, _WorkerHandle] = {}
        #: Acknowledged batches since the last sync point, per shard id.
        self._journal: dict[int, list[list[SubOp]]] = {}
        #: Shard ids whose parent-visible state lags a worker's.
        self._dirty: set[int] = set()
        self._epoch: int | None = None

    # ------------------------------------------------------------------
    def run(self, plans: list[ShardPlan]) -> list[list[OutRecord]]:
        core = self._require_core()
        service = core.service
        if self._epoch is not None and service.topology_epoch != self._epoch:
            # Topology changed between replays without a drain reaching
            # us (defensive; drains normally get here first).
            self._sync_and_stop_all()
        self._epoch = service.topology_epoch
        active = [(pos, sid, subops)
                  for pos, (sid, subops) in enumerate(plans) if subops]
        outcomes: dict[int, list[OutRecord]] = {}
        if active:
            self._ensure_pins([sid for _, sid, _ in active])
            self._dispatch(active, outcomes)
        return [outcomes.get(pos, []) for pos in range(len(plans))]

    def drain(self, sid: int) -> None:
        super().drain(sid)  # a parent-side fallback session may be live
        if self._handles or self._journal:
            self._sync_and_stop_all()

    def close(self) -> None:
        if self._handles or self._journal:
            self._sync_and_stop_all()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        active: list[tuple[int, int, list[SubOp]]],
        outcomes: dict[int, list[OutRecord]],
    ) -> None:
        core = self._require_core()
        service = core.service
        # Send every batch first (per-worker pipes are independent, so
        # sends never wait on another worker's unread results), then
        # collect per worker in send order.
        queues: dict[int, list[_Inflight]] = {}
        order: list[_WorkerHandle] = []
        for pos, sid, subops in active:
            handle = self._pin[sid]
            if id(handle) not in queues:
                queues[id(handle)] = []
                order.append(handle)
            arr = _encode_subops(subops)
            shm: shared_memory.SharedMemory | None = None
            if arr is not None:
                shm = shared_memory.SharedMemory(create=True,
                                                 size=max(1, int(arr.nbytes)))
                try:
                    view = np.ndarray(arr.shape, dtype=np.int64,
                                      buffer=shm.buf)
                    view[:] = arr
                    handle.conn.send(("exec", sid, shm.name, len(subops),
                                      None))
                except (BrokenPipeError, OSError):
                    pass  # recv below observes the death and recovers
                except BaseException:
                    # Nobody owns the segment yet: release it before the
                    # error propagates or it outlives the dispatch.
                    shm.close()
                    shm.unlink()
                    raise
            else:
                # Non-integral keys: ship the sub-ops over the pipe.
                try:
                    handle.conn.send(("exec", sid, None, 0, subops))
                except (BrokenPipeError, OSError):
                    pass  # recv below observes the death and recovers
            queues[id(handle)].append((pos, sid, subops, shm))
            self._dirty.add(sid)
        pending_error: BaseException | None = None
        for handle in order:
            entries = queues[id(handle)]
            for i, (pos, sid, subops, shm) in enumerate(entries):
                try:
                    reply = handle.conn.recv()
                except (EOFError, OSError) as exc:
                    self._recover_dead(handle, entries[i:], outcomes,
                                       repr(exc))
                    break
                if shm is not None:
                    shm.close()
                    shm.unlink()
                if reply[0] == "ok":
                    _, out, delta_wire = reply
                    shard = service.shard_by_id(sid)
                    assert shard is not None and shard.stack is not None
                    ShardDelta.from_wire(delta_wire).apply(shard.stack)
                    self._journal.setdefault(sid, []).append(subops)
                    outcomes[pos] = out
                else:
                    # Deterministic failure inside the worker replay
                    # (serial mode would raise the same exception).  The
                    # worker's copy may be partially mutated and the
                    # failed batch is not journalled: stop the worker,
                    # restore the parent to the last acknowledged state,
                    # re-raise after the other workers are collected.
                    if pending_error is None:
                        pending_error = reply[1]
                    self._release_entries(entries[i + 1:])
                    self._poison(handle)
                    break
        if pending_error is not None:
            raise pending_error

    def _ensure_pins(self, sids: Sequence[int]) -> None:
        need = [sid for sid in dict.fromkeys(sids) if sid not in self._pin]
        if not need:
            return
        if self._dirty.intersection(need):
            # A needed shard has post-fork history that no live worker
            # image contains (its worker died) — resync the parent and
            # rebuild the pool from a clean fork point.
            self._sync_and_stop_all()
            need = list(dict.fromkeys(sids))
        if not self._handles:
            n_workers = (len(need) if self.workers is None
                         else min(self.workers, len(need)))
            self._spawn(n_workers)
        for sid in need:
            handle = min(self._handles, key=lambda h: len(h.pinned))
            handle.pinned.append(sid)
            self._pin[sid] = handle

    def _spawn(self, n_workers: int) -> None:
        core = self._require_core()
        _sync_durable(core.service)
        # Start the resource tracker *before* forking so every worker
        # inherits it: shared segments then live in one registry and
        # worker-side attaches cannot spawn per-child trackers that
        # would unlink the parent's segments at worker exit.
        resource_tracker.ensure_running()
        forced = sanitize.forced()
        for _ in range(max(1, n_workers)):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(core, child_conn, forced),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._handles.append(
                _WorkerHandle(process=proc, conn=parent_conn)
            )

    # ------------------------------------------------------------------
    # sync points and recovery
    # ------------------------------------------------------------------
    def _sync_and_stop_all(self) -> None:
        """Stop every worker, then reconstruct their shards' state in
        the parent by replaying the journal with charges suspended (the
        deltas are already merged; the workers' WAL frames are already
        the authoritative durable record)."""
        for handle in self._handles:
            self._stop_handle(handle)
        self._handles.clear()
        self._pin.clear()
        for sid in list(self._journal):
            self._replay_journal_quietly(sid)
        self._journal.clear()
        self._dirty.clear()

    def _replay_journal_quietly(self, sid: int) -> None:
        core = self._require_core()
        service = core.service
        shard = service.shard_by_id(sid)
        batches = self._journal.get(sid)
        if shard is None or not batches:
            return
        with service.suspended_charges(sid):
            with _quiet_wal(shard.index):
                for batch in batches:
                    core.replay_shard(sid, batch)
        self._journal[sid] = []

    def _recover_dead(
        self,
        handle: _WorkerHandle,
        remaining: list[_Inflight],
        outcomes: dict[int, list[OutRecord]],
        reason: str,
    ) -> None:
        """A worker died mid-batch.  Record a precise ExecutorError,
        rebuild its shards from the journal, then replay the orphaned
        batches serially *for real* (these ops were submitted but never
        acknowledged, so their charges and WAL records happen now)."""
        core = self._require_core()
        self._release_entries(remaining)
        pos0, sid0, subops0, _ = remaining[0]
        self.failures.append(
            ExecutorError(sid0, subops0[0].op_index, reason)
        )
        self._poison(handle)
        for pos, sid, subops, _ in remaining:
            outcomes[pos] = core.replay_shard(sid, subops)
        # The sids stay dirty: other live workers' images of them are
        # now stale, so the next pin request forces a full resync.
        for pos, sid, subops, _ in remaining:
            self._dirty.add(sid)

    def _poison(self, handle: _WorkerHandle) -> None:
        """Tear down one worker hard and restore its shards in the
        parent (journal replay with charges suspended)."""
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        for sid in handle.pinned:
            self._replay_journal_quietly(sid)
            self._pin.pop(sid, None)
            self._journal.pop(sid, None)
        if handle in self._handles:
            self._handles.remove(handle)

    def _stop_handle(self, handle: _WorkerHandle) -> None:
        """Ask one worker to flush durable state and exit."""
        try:
            handle.conn.send(("stop",))
            handle.conn.recv()  # "bye" after the worker's WAL sync
        except (BrokenPipeError, EOFError, OSError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():  # pragma: no cover — stuck worker
            handle.process.terminate()
            handle.process.join(timeout=5.0)

    @staticmethod
    def _release_entries(entries: list[_Inflight]) -> None:
        """Free shared segments for batches a worker never consumed."""
        for _, _, _, shm in entries:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


# ----------------------------------------------------------------------
def make_executor(
    spec: "str | ShardExecutor | None" = None,
    *,
    threads: int | None = None,
    workers: int | None = None,
) -> ShardExecutor:
    """Resolve an executor spec (the ``--executor`` flag, a Router knob,
    or an already-built instance).

    ``None`` preserves the historical Router behavior: threaded when
    ``threads`` is given, serial otherwise.
    """
    if isinstance(spec, ShardExecutor):
        return spec
    if spec is None:
        return ThreadExecutor(threads) if threads is not None else SerialExecutor()
    if spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(threads)
    if spec == "process":
        return ProcessExecutor(workers)
    raise ValueError(
        f"unknown executor {spec!r}; choose serial, thread, or process"
    )
