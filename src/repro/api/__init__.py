"""repro.api — the unified Index protocol and backend registry.

The backend-agnostic contract of the serving stack: every index backend
(the BF-Tree and all baselines) conforms to :class:`Index`, returns the
canonical result types, advertises :class:`Capabilities`, and is built
through :func:`make_index` from the :func:`register`-driven registry.

Extension point::

    from repro.api import register, make_index

    register("lsm", build_my_lsm)               # one call ...
    index = make_index("lsm", relation, "pk")   # ... and every harness,
    # the sharded service and the CLI (probe/sweep/serve-bench) can use it.
"""

from repro.api.protocol import (
    BatchFallbackMixin,
    Capabilities,
    Index,
    IndexBackend,
    UnsupportedOperationError,
)
from repro.api.registry import (
    BackendSpec,
    backend_spec,
    make_index,
    register,
    registered_backends,
)
from repro.api.results import (
    DeleteOutcome,
    RangeScanResult,
    SearchResult,
    as_scalar,
    normalize_scan_windows,
)

__all__ = [
    "BatchFallbackMixin",
    "Capabilities",
    "Index",
    "IndexBackend",
    "UnsupportedOperationError",
    "BackendSpec",
    "backend_spec",
    "make_index",
    "register",
    "registered_backends",
    "DeleteOutcome",
    "RangeScanResult",
    "SearchResult",
    "as_scalar",
    "normalize_scan_windows",
]
