"""Backend registry: one source of truth for every servable index.

``register("bf", builder)`` publishes a backend;
``make_index(name, relation, column, **cfg)`` builds one.  The CLI's
``probe --index`` / ``serve-bench --index`` choices, the sharded
service's donor construction and the conformance test suite all draw
from this registry, so adding a future backend (an LSM-tree, a learned
index) is one module + one ``register()`` call — every harness picks it
up with no further edits.

The six built-in backends (``bf``, ``bplus``, ``hash``, ``fd``,
``silt``, ``binsearch``) are registered lazily on first use by
importing :mod:`repro.api.backends`, keeping this module import-cycle
free (backends import the protocol, which lives beside this registry).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: a name, a builder and a description.

    ``builder(relation, column, *, unique=False, config=None, **cfg)``
    must return an object conforming to :class:`repro.api.Index`.
    Builders accept (and may ignore) the shared CLI knobs — notably
    ``fpp``, which only filter-based backends consume — so callers can
    pass one uniform kwarg set to every backend.
    """

    name: str
    builder: Callable[..., Any]
    description: str = ""


_REGISTRY: dict[str, BackendSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Set the flag before importing: repro.api.backends calls register()
    # re-entrantly, which must not recurse back in here.  A failed
    # import clears it so the next call retries (and errors loudly)
    # instead of serving a silently partial registry forever.
    _BUILTINS_LOADED = True
    try:
        importlib.import_module("repro.api.backends")
    except BaseException:
        _BUILTINS_LOADED = False
        raise


def register(name: str, builder: Callable[..., Any], description: str = "",
             replace: bool = False) -> BackendSpec:
    """Publish an index backend under ``name``.

    Re-registering an existing name raises unless ``replace=True``.
    The built-in backends are loaded first, so a user registration that
    collides with one of them errors here, at the caller's site, not
    later inside an unrelated ``make_index`` call.
    """
    _ensure_builtins()
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    spec = BackendSpec(name=name, builder=builder, description=description)
    _REGISTRY[name] = spec
    return spec


def registered_backends() -> list[str]:
    """Sorted names of every registered backend (the single source of
    truth behind CLI choices and error messages)."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def backend_spec(name: str) -> BackendSpec:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown index backend {name!r}; registered backends: "
            f"{', '.join(registered_backends())}"
        ) from None


def make_index(name: str, relation: Any, column: str, **cfg: Any) -> Any:
    """Build a registered backend over ``relation.column``.

    ``cfg`` is forwarded to the backend's builder (``unique``,
    ``config``, ``fpp``, ...).  Raises :class:`ValueError` listing the
    registered names when ``name`` is unknown.
    """
    spec = backend_spec(name)
    index = spec.builder(relation, column, **cfg)
    if getattr(index, "backend_name", "") != name:
        # Stamp the *instance*, not the class: one class may back
        # several registered names (e.g. differently-tuned variants),
        # and each built index should report the name it was built as.
        try:
            index.backend_name = name
        except (AttributeError, TypeError):  # pragma: no cover - frozen types
            pass
    return index
