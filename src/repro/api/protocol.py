"""The unified ``Index`` protocol every backend conforms to.

The paper's headline claim is comparative — BF-Tree versus B+-Tree,
FD-Tree, SILT, hash index and sorted-file search — so the serving stack
must be able to drop *any* of them into the same harness and replay
identical traffic.  This module defines that contract:

* :class:`Index` — the structural protocol (``typing.Protocol``): build
  once, ``bind``/``unbind`` a storage stack, then ``search`` /
  ``insert`` / ``delete`` / ``range_scan`` plus their batch
  counterparts, a :meth:`~Index.capabilities` descriptor and the
  :meth:`~Index.write_target` tuple-id translation hook.
* :class:`Capabilities` — what a backend can do (``ordered``,
  ``mutable``, ``scannable``, ``unique``); harnesses gate on this
  instead of ``hasattr`` duck typing.
* :class:`UnsupportedOperationError` — raised (instead of
  ``AttributeError``) when an operation falls outside a backend's
  capabilities; the message names the missing capability.
* :class:`BatchFallbackMixin` — generic scalar-loop implementations of
  ``search_many`` / ``insert_many`` / ``delete_many`` /
  ``range_scan_many``.  They are **bit-identical** to calling the
  scalar operation per item (same results, same IOStats, clock equal
  up to float summation order) because they *are* that loop, with the
  same ``latency_sink`` accounting the vectorized engines report.
  Backends with real vectorized engines (BF-Tree, B+-Tree) override
  them; every other backend batches for free.
* :class:`IndexBackend` — the concrete base class backends inherit:
  the batch fallbacks plus capability-gated defaults for the mutating
  and scanning operations.

Write addressing: the protocol's mutating operations take the backend's
*native write target* — a tuple id for rid-based indexes, a data page id
for the BF-Tree, which indexes pages.  :meth:`Index.write_target` maps a
tuple id to that native target, so backend-agnostic callers (the sharded
service, the Router) write ``index.insert(key, index.write_target(tid))``
and never branch on the backend kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, Sequence, runtime_checkable

from repro.analysis.sanitize import maybe_check
from repro.api.results import (
    DeleteOutcome,
    RangeScanResult,
    SearchResult,
    as_scalar,
    normalize_scan_windows,
)


@dataclass(frozen=True)
class Capabilities:
    """What one index backend instance can do.

    * ``ordered`` — keys are kept in (or served from) sorted order; the
      precondition for range partitioning a backend across shards.
    * ``mutable`` — ``insert`` / ``delete`` are supported.
    * ``scannable`` — ``range_scan`` is supported.
    * ``unique`` — the instance was built with primary-key semantics
      (probes stop at the first match).
    * ``durable`` — mutations are write-ahead logged and the instance
      checkpoints/recovers through :mod:`repro.persist` (only the
      ``DurableIndex`` wrapper reports this).
    """

    ordered: bool
    mutable: bool
    scannable: bool
    unique: bool
    durable: bool = False

    def summary(self) -> str:
        """Human-readable capability list for error messages."""
        names = [
            name
            for name in ("ordered", "mutable", "scannable", "unique",
                         "durable")
            if getattr(self, name)
        ]
        return ", ".join(names) if names else "none"


class UnsupportedOperationError(NotImplementedError):
    """An operation outside the backend's capabilities was requested.

    Subclasses :class:`NotImplementedError` so legacy callers that
    guarded on it keep working, but carries a structured message naming
    the backend, the operation and the capability it lacks.
    """

    def __init__(self, backend: str, op: str, capability: str,
                 capabilities: Capabilities | None = None) -> None:
        self.backend = backend
        self.op = op
        self.capability = capability
        self.capabilities = capabilities
        message = (
            f"{backend} does not support {op}(): backend is not "
            f"{capability}"
        )
        if capabilities is not None:
            message += f" (capabilities: {capabilities.summary()})"
        super().__init__(message)


@runtime_checkable
class Index(Protocol):
    """Structural protocol of a servable index backend.

    Every registered backend satisfies this at runtime (see
    :mod:`repro.api.registry`); ``isinstance(obj, Index)`` checks method
    presence.  The semantic contract — result types, bit-identity of
    batch and scalar paths, capability-gated errors — is enforced by
    ``tests/test_api_conformance.py`` across all backends.
    """

    def bind(self, stack: Any, warm: bool = False) -> None: ...
    def unbind(self) -> None: ...
    def capabilities(self) -> Capabilities: ...
    def write_target(self, tid: int) -> int: ...
    def search(self, key: Any) -> SearchResult: ...
    def insert(self, key: Any, target: int) -> None: ...
    def delete(self, key: Any,
               target: int | None = None) -> DeleteOutcome: ...
    def range_scan(self, lo: Any, hi: Any) -> RangeScanResult: ...
    def search_many(self, keys: Sequence[Any],
                    latency_sink: list[float] | None = None
                    ) -> list[SearchResult]: ...
    def insert_many(self, keys: Sequence[Any], targets: Sequence[int],
                    latency_sink: list[float] | None = None) -> None: ...
    def delete_many(self, keys: Sequence[Any],
                    targets: Sequence[int | None] | None = None,
                    latency_sink: list[float] | None = None
                    ) -> list[DeleteOutcome]: ...
    def range_scan_many(self, windows: Sequence[tuple[Any, Any]],
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]: ...
    def snapshot_state(self) -> dict[str, Any]: ...
    def restore_state(self, state: dict[str, Any]) -> None: ...

    # Declared surface, not duck-typed: callers read these directly
    # (reprolint's protocol-discipline rule forbids getattr probes).
    supports_sharding: bool

    @property
    def height(self) -> int: ...

    @property
    def n_leaves(self) -> int: ...

    @property
    def size_pages(self) -> int: ...


class BatchFallbackMixin:
    """Generic batch operations as per-item scalar loops.

    Bit-identical to calling the scalar operation once per item on the
    same bound stack — same results, same IOStats counters, clock equal
    up to float summation order — because the loop body *is* the scalar
    call.  ``latency_sink`` receives one simulated per-op latency per
    item (zeros when unbound), matching the vectorized engines'
    accounting, so Router percentile reports work on every backend.

    Subclasses point :meth:`_sim_clock` at the simulated clock their
    scalar operations charge; without it latencies degrade to zeros
    (the unbound, charge-free mode every backend supports).
    """

    if TYPE_CHECKING:
        # Scalar ops the concrete backend supplies; typed stubs only, so
        # the scalar-loop fallbacks type-check under mypy strict (at
        # runtime IndexBackend's capability-gated defaults own these).
        def search(self, key: Any) -> SearchResult: ...
        def insert(self, key: Any, target: int) -> None: ...
        def delete(self, key: Any,
                   target: int | None = None) -> DeleteOutcome: ...
        def range_scan(self, lo: Any, hi: Any) -> RangeScanResult: ...

    def _sim_clock(self) -> Any:
        """The bound stack's simulated clock, or None when unbound."""
        return None

    def search_many(self, keys: Sequence[Any],
                    latency_sink: list[float] | None = None
                    ) -> list[SearchResult]:
        clock = self._sim_clock()
        track = latency_sink is not None and clock is not None
        results: list[SearchResult] = []
        for key in keys:
            start = clock.now() if track else 0.0
            results.append(self.search(as_scalar(key)))
            if track and latency_sink is not None:
                latency_sink.append(clock.now() - start)
        if latency_sink is not None and not track:
            latency_sink.extend(0.0 for _ in results)
        return results

    def insert_many(self, keys: Sequence[Any], targets: Sequence[int],
                    latency_sink: list[float] | None = None) -> None:
        clock = self._sim_clock()
        track = latency_sink is not None and clock is not None
        for key, target in zip(keys, targets):
            start = clock.now() if track else 0.0
            self.insert(as_scalar(key), int(target))
            if track and latency_sink is not None:
                latency_sink.append(clock.now() - start)
        if latency_sink is not None and not track:
            latency_sink.extend(0.0 for _ in keys)
        maybe_check(self)

    def delete_many(self, keys: Sequence[Any],
                    targets: Sequence[int | None] | None = None,
                    latency_sink: list[float] | None = None
                    ) -> list[DeleteOutcome]:
        n = len(keys)
        targets = [None] * n if targets is None else list(targets)
        clock = self._sim_clock()
        track = latency_sink is not None and clock is not None
        outcomes: list[DeleteOutcome] = []
        for key, target in zip(keys, targets):
            start = clock.now() if track else 0.0
            outcomes.append(
                self.delete(as_scalar(key),
                            None if target is None else int(target))
            )
            if track and latency_sink is not None:
                latency_sink.append(clock.now() - start)
        if latency_sink is not None and not track:
            latency_sink.extend(0.0 for _ in keys)
        maybe_check(self)
        return outcomes

    def range_scan_many(self, windows: Sequence[tuple[Any, Any]],
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]:
        # Validate every window before any charge lands, matching the
        # vectorized engines' up-front normalize_scan_windows pass.
        wins = normalize_scan_windows(windows)
        clock = self._sim_clock()
        track = latency_sink is not None and clock is not None
        results: list[RangeScanResult] = []
        for lo, hi in wins:
            start = clock.now() if track else 0.0
            results.append(self.range_scan(lo, hi))
            if track and latency_sink is not None:
                latency_sink.append(clock.now() - start)
        if latency_sink is not None and not track:
            latency_sink.extend(0.0 for _ in results)
        return results


class IndexBackend(BatchFallbackMixin):
    """Concrete base every backend inherits.

    Provides the batch fallbacks plus capability-gated defaults: a
    backend that never defines ``insert``/``delete`` is immutable, one
    that never defines ``range_scan`` is unscannable — callers get an
    :class:`UnsupportedOperationError` naming the missing capability
    instead of an ``AttributeError``.  ``backend_name`` is the registry
    name, filled in at registration time.
    """

    #: Registry name of this backend (set by repro.api.registry.register).
    backend_name: str = ""

    #: True when the backend can donate its leaf chain to ShardedIndex
    #: (see the shard_* hooks on BFTree / BPlusTree).  Backends without
    #: sliceable leaves serve as a single-shard degenerate case.
    supports_sharding: bool = False

    def capabilities(self) -> Capabilities:  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} must implement capabilities()"
        )

    def _backend_label(self) -> str:
        return self.backend_name or type(self).__name__

    def _unsupported(self, op: str, capability: str) -> UnsupportedOperationError:
        return UnsupportedOperationError(
            self._backend_label(), op, capability, self.capabilities()
        )

    # ------------------------------------------------------------------
    # write addressing
    # ------------------------------------------------------------------
    def write_target(self, tid: int) -> int:
        """Native write address of tuple ``tid`` (rid by default;
        page-granular backends like the BF-Tree override this)."""
        return int(tid)

    # ------------------------------------------------------------------
    # capability-gated defaults
    # ------------------------------------------------------------------
    def insert(self, key: Any, target: int) -> None:
        raise self._unsupported("insert", "mutable")

    def delete(self, key: Any, target: int | None = None) -> DeleteOutcome:
        raise self._unsupported("delete", "mutable")

    def range_scan(self, lo: Any, hi: Any) -> RangeScanResult:
        raise self._unsupported("range_scan", "scannable")

    # ------------------------------------------------------------------
    # size / shape introspection defaults (trees override)
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Probe depth; flat backends (hash, sorted store) count as 1."""
        return 1

    @property
    def n_leaves(self) -> int:
        return 0

    @property
    def size_pages(self) -> int:
        """Index pages occupied (0 for backends with no on-device index)."""
        return 0

    # ------------------------------------------------------------------
    # sharding hooks (leaf-sliceable trees override all four)
    # ------------------------------------------------------------------
    def shard_leaves(self) -> list[Any]:
        """Leaf objects in key order, ready to slice into shard runs."""
        raise self._unsupported("shard_leaves", "shardable")

    def shard_from_leaves(self, run: list[Any]) -> "IndexBackend":
        """Rebuild an independent index over a contiguous leaf run."""
        raise self._unsupported("shard_from_leaves", "shardable")

    @staticmethod
    def shard_leaf_span(leaf: Any) -> tuple[Any, Any]:
        """(smallest, largest) key a leaf covers."""
        raise NotImplementedError

    @staticmethod
    def shard_cut_spans(left: Any, right: Any) -> bool:
        """True when cutting between two adjacent leaves would split a key."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpoint hooks (repro.persist serializes through these)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, Any]:
        """Structural state for a checkpoint (see ``repro.persist``).

        Immutable backends carry no state beyond their build inputs, so
        the default emits a ``rebuild`` marker: recovery reconstructs
        them from the relation recorded in the manifest.  Mutable
        backends must override with a real structural dump — otherwise
        a checkpoint would silently drop their post-build mutations.
        """
        if not self.capabilities().mutable:
            return {"format": "rebuild", "backend": self._backend_label()}
        raise self._unsupported("snapshot_state", "checkpointable")

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore the structural state captured by ``snapshot_state``."""
        if state.get("format") != "rebuild":
            raise ValueError(
                f"{self._backend_label()} cannot restore snapshot format "
                f"{state.get('format')!r}"
            )
        maybe_check(self)
